"""In-memory representation of a Simulink-style dataflow model.

A :class:`Model` is a tree of :class:`Subsystem` scopes; each scope holds
:class:`Actor` instances (blocks) and the :class:`Connection` wires between
their ports.  This mirrors how the paper describes Simulink's storage
(§3.1): an *actors* part with per-actor fundamental information, and a
*relationships* part with the data-flow wiring.

Models can be constructed three ways:

* programmatically via :class:`ModelBuilder` (the usual route in tests and
  the benchmark generators),
* parsed from the XML model-file format (:mod:`repro.slx`),
* assembled directly from the dataclasses here.
"""

from repro.model.errors import (
    ConnectionError_,
    ModelError,
    ScheduleError,
    TypeInferenceError,
    ValidationError,
)
from repro.model.actor import Actor, Port
from repro.model.connection import Connection, EndPoint
from repro.model.subsystem import Subsystem
from repro.model.model import Model
from repro.model.builder import ModelBuilder, Ref, SubsystemHandle
from repro.model.validate import validate_model

__all__ = [
    "Actor",
    "Port",
    "Connection",
    "EndPoint",
    "Subsystem",
    "Model",
    "ModelBuilder",
    "SubsystemHandle",
    "Ref",
    "validate_model",
    "ModelError",
    "ValidationError",
    "ConnectionError_",
    "ScheduleError",
    "TypeInferenceError",
]

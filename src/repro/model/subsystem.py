"""Subsystem scopes: the hierarchical containers of a model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.model.actor import Actor
from repro.model.connection import Connection
from repro.model.errors import ValidationError

INPORT = "Inport"
OUTPORT = "Outport"
SUBSYSTEM = "SubSystem"


@dataclass
class Subsystem:
    """A named scope holding actors, child subsystems, and local wiring.

    A subsystem's external interface is defined by the ``Inport`` /
    ``Outport`` actors it contains: an ``Inport`` with ``params['port_index']
    == k`` receives the subsystem's k-th input from the parent scope, and
    symmetrically for ``Outport``.  In the parent's wiring the subsystem is
    addressed by its own name, like an actor.
    """

    name: str
    actors: dict[str, Actor] = field(default_factory=dict)
    subsystems: dict[str, "Subsystem"] = field(default_factory=dict)
    connections: list[Connection] = field(default_factory=list)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self.actors or actor.name in self.subsystems:
            raise ValidationError(
                f"duplicate name {actor.name!r} in subsystem {self.name!r}"
            )
        self.actors[actor.name] = actor
        return actor

    def add_subsystem(self, subsystem: "Subsystem") -> "Subsystem":
        if subsystem.name in self.actors or subsystem.name in self.subsystems:
            raise ValidationError(
                f"duplicate name {subsystem.name!r} in subsystem {self.name!r}"
            )
        self.subsystems[subsystem.name] = subsystem
        return subsystem

    def connect(self, connection: Connection) -> None:
        self.connections.append(connection)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def resolve(self, name: str) -> Actor | "Subsystem":
        """Look up a local actor or child subsystem by name."""
        if name in self.actors:
            return self.actors[name]
        if name in self.subsystems:
            return self.subsystems[name]
        raise KeyError(f"no actor or subsystem named {name!r} in {self.name!r}")

    def boundary_ports(self, block_type: str) -> list[Actor]:
        """The Inport (or Outport) actors of this scope, ordered by index."""
        ports = [a for a in self.actors.values() if a.block_type == block_type]
        ports.sort(key=lambda a: a.params.get("port_index", 0))
        return ports

    @property
    def n_boundary_inputs(self) -> int:
        return len(self.boundary_ports(INPORT))

    @property
    def n_boundary_outputs(self) -> int:
        return len(self.boundary_ports(OUTPORT))

    @property
    def has_enable_port(self) -> bool:
        """True when this subsystem is conditionally executed."""
        return any(a.block_type == "EnablePort" for a in self.actors.values())

    @property
    def n_parent_inputs(self) -> int:
        """Input slots seen from the parent scope: the regular inports plus,
        for an enabled subsystem, one trailing enable slot."""
        return self.n_boundary_inputs + (1 if self.has_enable_port else 0)

    @property
    def enable_slot(self) -> int:
        """Parent-side input index of the enable signal."""
        if not self.has_enable_port:
            raise ValidationError(f"subsystem {self.name!r} has no enable port")
        return self.n_boundary_inputs

    # ------------------------------------------------------------------
    # traversal / statistics
    # ------------------------------------------------------------------
    def walk(self, prefix: str = "") -> Iterator[tuple[str, "Subsystem"]]:
        """Yield ``(path, subsystem)`` for this scope and all descendants."""
        path = f"{prefix}{self.name}" if not prefix else f"{prefix}.{self.name}"
        yield path, self
        for child in self.subsystems.values():
            yield from child.walk(path)

    def iter_actors(self, prefix: str = "") -> Iterator[tuple[str, Actor]]:
        """Yield ``(path, actor)`` for every actor in this scope and below.

        The path uses the paper's index-key convention: model file name,
        subsystem names, and the actor's own name joined by underscores
        (e.g. ``MODEL_SUBSYSTEM_ADD2``).
        """
        base = f"{prefix}_{self.name}" if prefix else self.name
        for actor in self.actors.values():
            yield f"{base}_{actor.name}", actor
        for child in self.subsystems.values():
            yield from child.iter_actors(base)

    def count_actors(self, *, include_boundary: bool = True) -> int:
        total = 0
        for _, actor in self.iter_actors():
            if not include_boundary and actor.block_type in (INPORT, OUTPORT):
                continue
            total += 1
        return total

    def count_subsystems(self) -> int:
        """Number of descendant subsystems (the root scope is not counted)."""
        return sum(1 for _ in self.walk()) - 1

    def find_subsystem(self, dotted: str) -> Optional["Subsystem"]:
        """Resolve a dotted path like ``"Charger.Meter"`` below this scope."""
        scope: Subsystem = self
        for part in dotted.split("."):
            child = scope.subsystems.get(part)
            if child is None:
                return None
            scope = child
        return scope

"""The top-level model container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.model.actor import Actor
from repro.model.subsystem import INPORT, OUTPORT, Subsystem


@dataclass
class Model:
    """A complete model: a named root scope plus free-form metadata.

    The root scope's ``Inport``/``Outport`` actors are the model's external
    inputs and outputs — the ports test cases feed and results are read
    from.
    """

    name: str
    root: Subsystem = None  # type: ignore[assignment]
    description: str = ""
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("model name must be non-empty")
        if self.root is None:
            self.root = Subsystem(self.name)

    # ------------------------------------------------------------------
    # interface ports
    # ------------------------------------------------------------------
    @property
    def inports(self) -> list[Actor]:
        return self.root.boundary_ports(INPORT)

    @property
    def outports(self) -> list[Actor]:
        return self.root.boundary_ports(OUTPORT)

    # ------------------------------------------------------------------
    # statistics (Table 1 columns)
    # ------------------------------------------------------------------
    @property
    def n_actors(self) -> int:
        """Total actor count across all scopes (the paper's ``#Actor``)."""
        return self.root.count_actors()

    @property
    def n_subsystems(self) -> int:
        """Descendant subsystem count (the paper's ``#SubSystem``)."""
        return self.root.count_subsystems()

    def iter_actors(self) -> Iterator[tuple[str, Actor]]:
        """Yield ``(path, actor)`` for every actor, paths keyed as
        ``MODELNAME_SUBSYSTEM_ACTOR`` per the paper's index convention."""
        yield from self.root.iter_actors()

    def block_type_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for _, actor in self.iter_actors():
            histogram[actor.block_type] = histogram.get(actor.block_type, 0) + 1
        return dict(sorted(histogram.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, actors={self.n_actors}, "
            f"subsystems={self.n_subsystems})"
        )

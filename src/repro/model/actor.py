"""Actors (blocks) and their ports.

An actor stores only the *fundamental* information the paper attributes to
the model file's actors part: name, block type, calculation operator, I/O
port skeletons, and free-form parameters.  Data types on ports default to
``None`` ("recorded as default values", §3.1) until the schedule-conversion
step propagates concrete types along the wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.dtypes import DType


@dataclass
class Port:
    """One input or output port of an actor.

    ``dtype`` is ``None`` until type inference resolves it.  Signals are
    scalar; array-typed behaviour (lookup tables, selectors) lives in actor
    parameters, which keeps the wire protocol scalar while still exercising
    array-out-of-bounds diagnosis.
    """

    index: int
    name: str = ""
    dtype: Optional[DType] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"port index must be non-negative, got {self.index}")
        if not self.name:
            self.name = f"port{self.index}"


@dataclass
class Actor:
    """A single block in the model.

    Attributes
    ----------
    name:
        Identifier, unique within its enclosing subsystem.
    block_type:
        The actor type, e.g. ``"Sum"``, ``"Product"``, ``"Switch"``.  The
        set of known types lives in :mod:`repro.actors.registry`.
    operator:
        Type-specific calculation operator, e.g. ``"+-"`` for a Sum actor,
        ``"*/"`` for Product, ``"exp"`` for Math.  ``None`` when the type
        takes no operator.
    params:
        Free-form block parameters (gain value, switch threshold, lookup
        table data, ...), validated by the actor-type registry.
    inputs / outputs:
        Port skeletons.  Output dtypes may be pinned here (``out_dtype`` on
        construction helpers) or left to inference.
    """

    name: str
    block_type: str
    operator: Optional[str] = None
    params: dict[str, Any] = field(default_factory=dict)
    inputs: list[Port] = field(default_factory=list)
    outputs: list[Port] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("actor name must be non-empty")
        if any(ch in self.name for ch in "./ \t\n"):
            raise ValueError(
                f"actor name {self.name!r} contains reserved characters (one of './ ')"
            )
        for seq_name, seq in (("inputs", self.inputs), ("outputs", self.outputs)):
            for expected, port in enumerate(seq):
                if port.index != expected:
                    raise ValueError(
                        f"{seq_name} of actor {self.name!r} are not densely "
                        f"indexed: expected {expected}, got {port.index}"
                    )

    # ------------------------------------------------------------------
    # convenience constructors / accessors
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        block_type: str,
        *,
        n_inputs: int,
        n_outputs: int = 1,
        operator: Optional[str] = None,
        out_dtype: Optional[DType] = None,
        params: Optional[dict[str, Any]] = None,
    ) -> "Actor":
        """Build an actor with freshly numbered ports.

        ``out_dtype`` pins the dtype of every output port; ``None`` leaves
        them for type inference.
        """
        actor = cls(
            name=name,
            block_type=block_type,
            operator=operator,
            params=dict(params or {}),
            inputs=[Port(i) for i in range(n_inputs)],
            outputs=[Port(i, dtype=out_dtype) for i in range(n_outputs)],
        )
        return actor

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_outputs(self) -> int:
        return len(self.outputs)

    @property
    def out_dtype(self) -> Optional[DType]:
        """Dtype of the sole output port, for the common 1-output case."""
        if len(self.outputs) != 1:
            raise ValueError(f"actor {self.name!r} has {self.n_outputs} outputs")
        return self.outputs[0].dtype

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def copy(self) -> "Actor":
        """Deep-enough copy for flattening (ports and params duplicated)."""
        return Actor(
            name=self.name,
            block_type=self.block_type,
            operator=self.operator,
            params=dict(self.params),
            inputs=[Port(p.index, p.name, p.dtype) for p in self.inputs],
            outputs=[Port(p.index, p.name, p.dtype) for p in self.outputs],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = f", op={self.operator!r}" if self.operator else ""
        return f"Actor({self.name!r}, {self.block_type}{op})"

"""Exception hierarchy for the model layer and the preprocessing steps."""

from __future__ import annotations


class ModelError(Exception):
    """Base class for every error raised by this library's model handling."""


class ValidationError(ModelError):
    """The model is structurally invalid (bad names, unconnected ports...)."""


class ConnectionError_(ValidationError):
    """A wire references a missing actor/port or double-drives an input.

    Named with a trailing underscore to avoid shadowing the built-in
    ``ConnectionError`` (an OSError subclass with unrelated meaning).
    """


class ScheduleError(ModelError):
    """Execution order cannot be established (e.g. an algebraic loop)."""


class TypeInferenceError(ModelError):
    """Signal data types cannot be resolved consistently."""


class ParseError(ModelError):
    """A model file could not be parsed."""


class CodegenError(ModelError):
    """Simulation code could not be generated for the model."""


class CompilationError(CodegenError):
    """The external C compiler rejected the generated code."""


class SimulationError(ModelError):
    """A simulation run failed to execute or report results."""


class SimulationTimeout(SimulationError):
    """A simulation binary exceeded its wall-clock budget and was killed."""

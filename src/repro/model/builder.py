"""Fluent construction API for models.

Example
-------
The Figure-1 motivating model (two accumulators whose sum overflows)::

    from repro.model import ModelBuilder
    from repro.dtypes import I32

    b = ModelBuilder("Motivate")
    a = b.inport("A", dtype=I32)
    c = b.inport("B", dtype=I32)
    acc_a = b.accumulator("AccA", a, dtype=I32)
    acc_b = b.accumulator("AccB", c, dtype=I32)
    total = b.add("Sum", acc_a, acc_b, dtype=I32)
    b.outport("Out", total)
    model = b.build()

References returned by builder methods are ``(actor name, output port)``
pairs local to the current scope; they are accepted anywhere an input is
expected (a bare string means port 0).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Union

from repro.dtypes import BOOL, DType, F64
from repro.model.actor import Actor
from repro.model.connection import Connection, EndPoint
from repro.model.errors import ValidationError
from repro.model.model import Model
from repro.model.subsystem import INPORT, OUTPORT, Subsystem


class Ref(NamedTuple):
    """A source reference: an actor (or subsystem) output port in scope."""

    actor: str
    port: int = 0


RefLike = Union[Ref, str, tuple]


def as_ref(value: RefLike) -> Ref:
    """Normalize a user-supplied source reference."""
    if isinstance(value, Ref):
        return value
    if isinstance(value, str):
        return Ref(value, 0)
    if isinstance(value, tuple) and len(value) == 2:
        return Ref(str(value[0]), int(value[1]))
    raise TypeError(f"cannot interpret {value!r} as a source reference")


class ModelBuilder:
    """Builds a :class:`Model` (or populates one subsystem scope of it)."""

    def __init__(self, name: str, _scope: Optional[Subsystem] = None):
        if _scope is None:
            self._model: Optional[Model] = Model(name)
            self._scope = self._model.root
        else:
            self._model = None
            self._scope = _scope
        self._fresh_counter = 0

    @property
    def scope(self) -> Subsystem:
        return self._scope

    # ------------------------------------------------------------------
    # core primitives
    # ------------------------------------------------------------------
    def block(
        self,
        block_type: str,
        name: str,
        inputs: Sequence[RefLike] = (),
        *,
        operator: Optional[str] = None,
        n_outputs: int = 1,
        out_dtype: Optional[DType] = None,
        params: Optional[dict] = None,
    ) -> Ref:
        """Add a generic actor and wire its inputs; returns its output 0."""
        actor = Actor.create(
            name,
            block_type,
            n_inputs=len(inputs),
            n_outputs=n_outputs,
            operator=operator,
            out_dtype=out_dtype,
            params=params,
        )
        self._scope.add_actor(actor)
        for port, src in enumerate(inputs):
            self.connect(src, Ref(name, port))
        return Ref(name, 0)

    def connect(self, src: RefLike, dst: RefLike) -> None:
        """Wire a source output port to a destination input port."""
        s, d = as_ref(src), as_ref(dst)
        self._scope.connect(Connection(EndPoint(s.actor, s.port), EndPoint(d.actor, d.port)))

    def fresh_name(self, prefix: str) -> str:
        """A name not yet used in this scope, for generated filler actors."""
        while True:
            self._fresh_counter += 1
            candidate = f"{prefix}{self._fresh_counter}"
            if candidate not in self._scope.actors and candidate not in self._scope.subsystems:
                return candidate

    def build(self) -> Model:
        """Validate and return the finished model (root builders only)."""
        if self._model is None:
            raise ValidationError("build() may only be called on the root builder")
        from repro.model.validate import validate_model

        validate_model(self._model)
        return self._model

    # ------------------------------------------------------------------
    # sources and sinks
    # ------------------------------------------------------------------
    def inport(self, name: str, *, dtype: DType = F64) -> Ref:
        index = self._scope.n_boundary_inputs
        self.block(INPORT, name, out_dtype=dtype, params={"port_index": index})
        return Ref(name, 0)

    def outport(self, name: str, src: RefLike) -> None:
        index = self._scope.n_boundary_outputs
        self.block(OUTPORT, name, [src], n_outputs=0, params={"port_index": index})

    def constant(self, name: str, value, *, dtype: Optional[DType] = None) -> Ref:
        if dtype is None:
            dtype = F64 if isinstance(value, float) else DType.I32
        return self.block("Constant", name, out_dtype=dtype, params={"value": value})

    def terminator(self, name: str, src: RefLike) -> None:
        self.block("Terminator", name, [src], n_outputs=0)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def sum_(
        self,
        name: str,
        inputs: Sequence[RefLike],
        *,
        signs: Optional[str] = None,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """N-ary Sum actor; ``signs`` like ``"+-+"`` (default all ``+``)."""
        signs = signs or "+" * len(inputs)
        if len(signs) != len(inputs):
            raise ValidationError(
                f"Sum {name!r}: {len(inputs)} inputs but signs {signs!r}"
            )
        return self.block("Sum", name, inputs, operator=signs, out_dtype=dtype)

    def add(self, name: str, a: RefLike, b: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.sum_(name, [a, b], signs="++", dtype=dtype)

    def sub(self, name: str, a: RefLike, b: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.sum_(name, [a, b], signs="+-", dtype=dtype)

    def product(
        self,
        name: str,
        inputs: Sequence[RefLike],
        *,
        ops: Optional[str] = None,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """N-ary Product actor; ``ops`` like ``"**/"`` (default all ``*``)."""
        ops = ops or "*" * len(inputs)
        if len(ops) != len(inputs):
            raise ValidationError(
                f"Product {name!r}: {len(inputs)} inputs but ops {ops!r}"
            )
        return self.block("Product", name, inputs, operator=ops, out_dtype=dtype)

    def mul(self, name: str, a: RefLike, b: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.product(name, [a, b], ops="**", dtype=dtype)

    def div(self, name: str, a: RefLike, b: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.product(name, [a, b], ops="*/", dtype=dtype)

    def gain(self, name: str, src: RefLike, k, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Gain", name, [src], out_dtype=dtype, params={"gain": k})

    def bias(self, name: str, src: RefLike, b, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Bias", name, [src], out_dtype=dtype, params={"bias": b})

    def math(self, name: str, op: str, src: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        """Unary Math actor: exp, log, log10, sin, cos, tan, sqrt, square,
        reciprocal, tanh, sinh, cosh, asin, acos, atan, floor, ceil, round."""
        return self.block("Math", name, [src], operator=op, out_dtype=dtype)

    def abs_(self, name: str, src: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Abs", name, [src], out_dtype=dtype)

    def neg(self, name: str, src: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("UnaryMinus", name, [src], out_dtype=dtype)

    def sign(self, name: str, src: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Signum", name, [src], out_dtype=dtype)

    def sqrt(self, name: str, src: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Sqrt", name, [src], out_dtype=dtype)

    def min_max(
        self,
        name: str,
        op: str,
        inputs: Sequence[RefLike],
        *,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """``op`` is ``"min"`` or ``"max"``."""
        return self.block("MinMax", name, inputs, operator=op, out_dtype=dtype)

    def mod(self, name: str, a: RefLike, b: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Mod", name, [a, b], out_dtype=dtype)

    def saturation(
        self, name: str, src: RefLike, lower, upper, *, dtype: Optional[DType] = None
    ) -> Ref:
        return self.block(
            "Saturation", name, [src], out_dtype=dtype, params={"lower": lower, "upper": upper}
        )

    def dead_zone(
        self, name: str, src: RefLike, start, end, *, dtype: Optional[DType] = None
    ) -> Ref:
        return self.block(
            "DeadZone", name, [src], out_dtype=dtype, params={"start": start, "end": end}
        )

    def dtc(self, name: str, src: RefLike, dtype: DType) -> Ref:
        """DataTypeConversion to ``dtype``."""
        return self.block("DataTypeConversion", name, [src], out_dtype=dtype)

    def rounding(self, name: str, op: str, src: RefLike, *, dtype: Optional[DType] = None) -> Ref:
        """``op`` in floor/ceil/round/fix."""
        return self.block("Rounding", name, [src], operator=op, out_dtype=dtype)

    # ------------------------------------------------------------------
    # bitwise / shifts
    # ------------------------------------------------------------------
    def bitwise(
        self,
        name: str,
        op: str,
        inputs: Sequence[RefLike],
        *,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """``op`` in AND/OR/XOR/NOT (NOT takes one input)."""
        return self.block("Bitwise", name, inputs, operator=op, out_dtype=dtype)

    def shift(
        self, name: str, op: str, src: RefLike, amount: int, *, dtype: Optional[DType] = None
    ) -> Ref:
        """Arithmetic shift by a constant; ``op`` in ``<<``/``>>``."""
        return self.block(
            "Shift", name, [src], operator=op, out_dtype=dtype, params={"amount": amount}
        )

    # ------------------------------------------------------------------
    # logic / relational / control
    # ------------------------------------------------------------------
    def relational(self, name: str, op: str, a: RefLike, b: RefLike) -> Ref:
        """``op`` in ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``."""
        return self.block("RelationalOperator", name, [a, b], operator=op, out_dtype=BOOL)

    def logic(self, name: str, op: str, inputs: Sequence[RefLike]) -> Ref:
        """N-ary Logic actor; ``op`` in AND/OR/NAND/NOR/XOR/NOT."""
        return self.block("Logic", name, inputs, operator=op, out_dtype=BOOL)

    def not_(self, name: str, src: RefLike) -> Ref:
        return self.logic(name, "NOT", [src])

    def switch(
        self,
        name: str,
        on_true: RefLike,
        control: RefLike,
        on_false: RefLike,
        *,
        threshold=0,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """Switch actor: output is ``on_true`` when ``control >= threshold``
        (Simulink's default criterion), else ``on_false``."""
        return self.block(
            "Switch",
            name,
            [on_true, control, on_false],
            out_dtype=dtype,
            params={"threshold": threshold},
        )

    def multiport_switch(
        self,
        name: str,
        control: RefLike,
        cases: Sequence[RefLike],
        *,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """Output selects ``cases[control]``; out-of-range clamps (flagged)."""
        return self.block("MultiportSwitch", name, [control, *cases], out_dtype=dtype)

    def merge(self, name: str, inputs: Sequence[RefLike], *, dtype: Optional[DType] = None) -> Ref:
        return self.block("Merge", name, inputs, out_dtype=dtype)

    def relay(
        self,
        name: str,
        src: RefLike,
        *,
        on_threshold,
        off_threshold,
        on_value=1,
        off_value=0,
        initial_on: bool = False,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """Hysteresis switch: latches on at ``on_threshold``, off at
        ``off_threshold``, holds in between."""
        return self.block(
            "Relay",
            name,
            [src],
            out_dtype=dtype,
            params={
                "on_threshold": on_threshold,
                "off_threshold": off_threshold,
                "on_value": on_value,
                "off_value": off_value,
                "initial_on": initial_on,
            },
        )

    # ------------------------------------------------------------------
    # stateful actors
    # ------------------------------------------------------------------
    def unit_delay(
        self, name: str, src: RefLike, *, initial=0, dtype: Optional[DType] = None
    ) -> Ref:
        return self.block(
            "UnitDelay", name, [src], out_dtype=dtype, params={"initial": initial}
        )

    def delay(
        self, name: str, src: RefLike, length: int, *, initial=0, dtype: Optional[DType] = None
    ) -> Ref:
        return self.block(
            "Delay", name, [src], out_dtype=dtype, params={"length": length, "initial": initial}
        )

    def memory(self, name: str, src: RefLike, *, initial=0, dtype: Optional[DType] = None) -> Ref:
        return self.block("Memory", name, [src], out_dtype=dtype, params={"initial": initial})

    def accumulator(
        self, name: str, src: RefLike, *, initial=0, dtype: Optional[DType] = None
    ) -> Ref:
        """Discrete accumulator: state += input each step, outputs new state."""
        return self.block(
            "Accumulator", name, [src], out_dtype=dtype, params={"initial": initial}
        )

    def discrete_integrator(
        self,
        name: str,
        src: RefLike,
        *,
        gain=1.0,
        initial=0.0,
        dtype: Optional[DType] = None,
    ) -> Ref:
        return self.block(
            "DiscreteIntegrator",
            name,
            [src],
            out_dtype=dtype,
            params={"gain": gain, "initial": initial},
        )

    def continuous_integrator(
        self,
        name: str,
        src: RefLike,
        *,
        solver: str = "ab2",
        initial: float = 0.0,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """Fixed-step Adams-Bashforth integrator over the input derivative
        (``solver`` in euler/ab2/ab3) — continuous-model support."""
        return self.block(
            "ContinuousIntegrator",
            name,
            [src],
            out_dtype=dtype,
            params={"solver": solver, "initial": initial},
        )

    def counter(
        self, name: str, *, limit: int, dtype: Optional[DType] = None
    ) -> Ref:
        """Free-running counter 0..limit-1, wrapping."""
        return self.block("Counter", name, out_dtype=dtype, params={"limit": limit})

    # ------------------------------------------------------------------
    # data stores
    # ------------------------------------------------------------------
    def data_store(self, name: str, *, dtype: DType, initial=0) -> str:
        """Declare a DataStoreMemory; returns the store name for read/write."""
        self.block(
            "DataStoreMemory",
            name,
            n_outputs=0,
            params={"initial": initial, "dtype": dtype.short_name},
        )
        return name

    def ds_read(self, name: str, store: str, *, dtype: Optional[DType] = None) -> Ref:
        return self.block("DataStoreRead", name, out_dtype=dtype, params={"store": store})

    def ds_write(self, name: str, store: str, src: RefLike) -> None:
        self.block("DataStoreWrite", name, [src], n_outputs=0, params={"store": store})

    # ------------------------------------------------------------------
    # lookup / indexing
    # ------------------------------------------------------------------
    def lookup1d(
        self,
        name: str,
        src: RefLike,
        breakpoints: Sequence[float],
        table: Sequence[float],
        *,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """1-D lookup with linear interpolation and end clipping."""
        return self.block(
            "Lookup1D",
            name,
            [src],
            out_dtype=dtype,
            params={"breakpoints": list(breakpoints), "table": list(table)},
        )

    def direct_lookup(
        self,
        name: str,
        index: RefLike,
        table: Sequence,
        *,
        dtype: Optional[DType] = None,
    ) -> Ref:
        """Direct table indexing — the array-out-of-bounds diagnosis target."""
        return self.block(
            "DirectLookup", name, [index], out_dtype=dtype, params={"table": list(table)}
        )

    def quantizer(
        self, name: str, src: RefLike, interval, *, dtype: Optional[DType] = None
    ) -> Ref:
        return self.block(
            "Quantizer", name, [src], out_dtype=dtype, params={"interval": interval}
        )

    # ------------------------------------------------------------------
    # subsystems
    # ------------------------------------------------------------------
    def subsystem(self, name: str, inputs: Sequence[RefLike] = ()) -> "SubsystemHandle":
        child = Subsystem(name)
        self._scope.add_subsystem(child)
        handle = SubsystemHandle(self, child)
        for src in inputs:
            handle.add_input(src)
        return handle


class SubsystemHandle:
    """Handle for populating a child subsystem and wiring its boundary."""

    def __init__(self, parent: ModelBuilder, scope: Subsystem):
        self._parent = parent
        self._scope = scope
        self.inner = ModelBuilder(scope.name, _scope=scope)

    @property
    def name(self) -> str:
        return self._scope.name

    def add_input(self, src: RefLike, *, name: Optional[str] = None) -> Ref:
        """Create the next boundary Inport fed from ``src`` in the parent;
        returns the inner reference to read it from."""
        if self._scope.has_enable_port:
            raise ValidationError(
                f"subsystem {self._scope.name!r}: add all inputs before set_enable() "
                f"(the enable slot must stay the last parent-side input)"
            )
        index = self._scope.n_boundary_inputs
        port_name = name or f"In{index + 1}"
        self.inner.block(INPORT, port_name, params={"port_index": index})
        self._parent.connect(src, Ref(self._scope.name, index))
        return Ref(port_name, 0)

    def input_ref(self, index: int) -> Ref:
        ports = self._scope.boundary_ports(INPORT)
        return Ref(ports[index].name, 0)

    def set_enable(self, src: RefLike, *, name: str = "Enable") -> None:
        """Make this subsystem conditionally executed: it runs only on steps
        where the parent-scope signal ``src`` is positive; its signals hold
        their previous values otherwise."""
        if self._scope.has_enable_port:
            raise ValidationError(
                f"subsystem {self._scope.name!r} already has an enable port"
            )
        self.inner.block("EnablePort", name, n_outputs=0)
        self._parent.connect(src, Ref(self._scope.name, self._scope.enable_slot))

    def set_output(self, src: RefLike, *, name: Optional[str] = None) -> Ref:
        """Create the next boundary Outport fed from the inner ``src``;
        returns the parent-scope reference to the subsystem's new output."""
        index = self._scope.n_boundary_outputs
        port_name = name or f"Out{index + 1}"
        self.inner.block(OUTPORT, port_name, [src], n_outputs=0, params={"port_index": index})
        return Ref(self._scope.name, index)

    def out(self, index: int = 0) -> Ref:
        return Ref(self._scope.name, index)

"""Structural validation of models.

Run automatically by :meth:`ModelBuilder.build` and by the model-file
parser; engines also validate before scheduling, so a hand-assembled model
cannot reach simulation in a broken state.
"""

from __future__ import annotations

from repro.model.actor import Actor
from repro.model.errors import ConnectionError_, ValidationError
from repro.model.model import Model
from repro.model.subsystem import INPORT, OUTPORT, Subsystem


def validate_model(model: Model) -> None:
    """Raise :class:`ValidationError` on the first structural problem."""
    _validate_scope(model.root, path=model.name, store_scopes=[])
    _check_registry_arities(model)


def _validate_scope(scope: Subsystem, path: str, store_scopes: list[set[str]]) -> None:
    local_stores = {
        a.name for a in scope.actors.values() if a.block_type == "DataStoreMemory"
    }
    visible_stores = store_scopes + [local_stores]

    _check_boundary_indices(scope, path, INPORT)
    _check_boundary_indices(scope, path, OUTPORT)
    _check_connections(scope, path)
    _check_data_store_refs(scope, path, visible_stores)

    for child in scope.subsystems.values():
        _validate_scope(child, f"{path}.{child.name}", visible_stores)


def _check_boundary_indices(scope: Subsystem, path: str, block_type: str) -> None:
    ports = scope.boundary_ports(block_type)
    indices = sorted(a.params.get("port_index", 0) for a in ports)
    if indices != list(range(len(ports))):
        raise ValidationError(
            f"{path}: {block_type} port indices are not dense 0..{len(ports) - 1}: "
            f"{indices}"
        )


def _endpoint_arity(scope: Subsystem, name: str) -> tuple[int, int]:
    """(n_input_ports, n_output_ports) of an actor or child subsystem.

    An enabled subsystem exposes one extra input slot (the enable signal)
    after its regular inports.
    """
    target = scope.resolve(name)
    if isinstance(target, Actor):
        return target.n_inputs, target.n_outputs
    return target.n_parent_inputs, target.n_boundary_outputs


def _check_connections(scope: Subsystem, path: str) -> None:
    driven: dict[tuple[str, int], int] = {}
    for conn in scope.connections:
        for end, kind in ((conn.src, "source"), (conn.dst, "destination")):
            try:
                n_in, n_out = _endpoint_arity(scope, end.actor)
            except KeyError as exc:
                raise ConnectionError_(f"{path}: {conn}: {exc}") from None
            limit = n_out if kind == "source" else n_in
            if end.port >= limit:
                raise ConnectionError_(
                    f"{path}: {conn}: {kind} port {end.port} out of range "
                    f"(target has {limit} {kind} port(s))"
                )
        key = (conn.dst.actor, conn.dst.port)
        driven[key] = driven.get(key, 0) + 1

    for (actor, port), count in driven.items():
        if count > 1:
            raise ConnectionError_(
                f"{path}: input {actor}:{port} is driven by {count} sources"
            )

    # Every input port of every actor / child subsystem must be driven.
    for name, target in list(scope.actors.items()) + list(scope.subsystems.items()):
        n_in, _ = _endpoint_arity(scope, name)
        for port in range(n_in):
            if (name, port) not in driven:
                raise ConnectionError_(
                    f"{path}: input {name}:{port} is not connected"
                )


def _check_data_store_refs(
    scope: Subsystem, path: str, visible_stores: list[set[str]]
) -> None:
    for actor in scope.actors.values():
        if actor.block_type not in ("DataStoreRead", "DataStoreWrite"):
            continue
        store = actor.params.get("store")
        if not store:
            raise ValidationError(
                f"{path}: {actor.name} ({actor.block_type}) has no 'store' parameter"
            )
        if not any(store in layer for layer in visible_stores):
            raise ValidationError(
                f"{path}: {actor.name} references undeclared data store {store!r}"
            )


def _check_registry_arities(model: Model) -> None:
    """Check block types and arities against the actor-type registry.

    Imported lazily: the registry depends on the model layer.
    """
    from repro.actors.registry import get_spec, is_known_type

    for actor_path, actor in model.iter_actors():
        if not is_known_type(actor.block_type):
            raise ValidationError(
                f"{actor_path}: unknown block type {actor.block_type!r}"
            )
        spec = get_spec(actor.block_type)
        spec.check_actor(actor, actor_path)

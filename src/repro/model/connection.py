"""Wires between actor ports — the model file's *relationships* part."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EndPoint:
    """One end of a wire: an actor (or child subsystem) name plus a port
    index, both local to the enclosing subsystem scope."""

    actor: str
    port: int = 0

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port index must be non-negative, got {self.port}")

    def __str__(self) -> str:
        return f"{self.actor}:{self.port}"


@dataclass(frozen=True)
class Connection:
    """A directed wire from a source output port to a destination input port.

    One source may fan out to many destinations; each destination input port
    must be driven by exactly one source (validated in
    :mod:`repro.model.validate`).
    """

    src: EndPoint
    dst: EndPoint

    @classmethod
    def of(cls, src_actor: str, src_port: int, dst_actor: str, dst_port: int) -> "Connection":
        return cls(EndPoint(src_actor, src_port), EndPoint(dst_actor, dst_port))

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst}"

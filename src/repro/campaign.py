"""Test campaigns: many test cases, one adequacy verdict.

The paper motivates coverage collection as the way to "validate that test
cases are comprehensive enough".  A :func:`run_campaign` does that loop at
AccMoS speed: generate differently-seeded random test cases, simulate each
(compiled), merge coverage, and stop when new cases stop uncovering new
points — the classic saturation criterion.  All diagnostics found by any
case are pooled, with the seed that first exposed each.

::

    from repro.campaign import run_campaign

    outcome = run_campaign(prog, steps=100_000, max_cases=20)
    print(outcome.summary())
    for event, seed in outcome.diagnostics:
        print(f"seed {seed}: {event}")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coverage.metrics import ALL_METRICS, Metric
from repro.coverage.report import CoverageReport
from repro.diagnosis.events import DiagnosticEvent
from repro.engines import simulate
from repro.engines.base import SimulationOptions
from repro.schedule.program import FlatProgram
from repro.stimuli.generators import default_stimuli


@dataclass
class CaseOutcome:
    """One test case's contribution."""

    seed: int
    steps_run: int
    wall_time: float
    new_points: int  # coverage points this case uncovered first
    n_diagnostics: int


@dataclass
class CampaignOutcome:
    """The campaign's aggregate verdict."""

    merged: CoverageReport
    cases: list[CaseOutcome] = field(default_factory=list)
    # (event, seed of the case that first exposed it)
    diagnostics: list[tuple[DiagnosticEvent, int]] = field(default_factory=list)
    saturated: bool = False

    @property
    def n_cases(self) -> int:
        return len(self.cases)

    def coverage_curve(self, metric: Metric) -> list[int]:
        """Cumulative covered points after each case (recomputed from the
        per-case new-point counts of that metric's share of the total)."""
        curve, total = [], 0
        for case in self.cases:
            total += case.new_points
            curve.append(total)
        return curve

    def summary(self) -> str:
        status = "saturated" if self.saturated else "budget exhausted"
        lines = [
            f"campaign: {self.n_cases} case(s), {status}",
            self.merged.summary(),
        ]
        if self.diagnostics:
            lines.append(f"diagnostics found: {len(self.diagnostics)}")
        return "\n".join(lines)


def _total_covered(report: CoverageReport) -> int:
    return sum(report.bitmaps[m].count() for m in ALL_METRICS)


def run_campaign(
    prog: FlatProgram,
    *,
    engine: str = "accmos",
    steps: int = 50_000,
    max_cases: int = 16,
    plateau_patience: int = 3,
    base_seed: int = 1,
    options: Optional[SimulationOptions] = None,
) -> CampaignOutcome:
    """Run up to ``max_cases`` differently-seeded random test cases.

    Stops early once ``plateau_patience`` consecutive cases uncover no new
    coverage point (saturation).  ``options`` overrides everything except
    ``steps`` handling; by default coverage and diagnostics are on.
    """
    if max_cases < 1:
        raise ValueError("max_cases must be at least 1")
    if plateau_patience < 1:
        raise ValueError("plateau_patience must be at least 1")

    merged: Optional[CoverageReport] = None
    outcome = CampaignOutcome(merged=None)  # type: ignore[arg-type]
    seen_diagnostics: set[tuple[str, str]] = set()
    dry_streak = 0

    for index in range(max_cases):
        seed = base_seed + index
        stimuli = default_stimuli(prog, seed=seed)
        opts = options or SimulationOptions(steps=steps)
        result = simulate(prog, stimuli, engine=engine, options=opts)
        if result.coverage is None:
            raise ValueError(f"engine {engine!r} collects no coverage")

        before = _total_covered(merged) if merged is not None else 0
        if merged is None:
            merged = CoverageReport.empty(result.coverage.points)
        merged.merge(result.coverage)
        new_points = _total_covered(merged) - before

        fresh = 0
        for event in result.diagnostics:
            key = (event.path, event.kind.value)
            if key not in seen_diagnostics:
                seen_diagnostics.add(key)
                outcome.diagnostics.append((event, seed))
                fresh += 1

        outcome.cases.append(
            CaseOutcome(
                seed=seed,
                steps_run=result.steps_run,
                wall_time=result.wall_time,
                new_points=new_points,
                n_diagnostics=fresh,
            )
        )

        dry_streak = dry_streak + 1 if new_points == 0 else 0
        if dry_streak >= plateau_patience:
            outcome.saturated = True
            break

    outcome.merged = merged
    return outcome

"""Test campaigns: many test cases, one adequacy verdict.

The paper motivates coverage collection as the way to "validate that test
cases are comprehensive enough".  A :func:`run_campaign` does that loop at
AccMoS speed: generate differently-seeded random test cases, simulate each
(compiled), merge coverage, and stop when new cases stop uncovering new
points — the classic saturation criterion.  All diagnostics found by any
case are pooled, with the seed that first exposed each.

With ``workers > 1`` the seed sweep fans out across the
:mod:`repro.runner` pool — compiles served by the artifact cache, cases
executed concurrently — while the coverage merge stays in seed order, so
parallel and serial campaigns produce byte-identical outcomes.

::

    from repro.campaign import run_campaign

    outcome = run_campaign(prog, steps=100_000, max_cases=20, workers=4)
    print(outcome.summary())
    for event, seed in outcome.diagnostics:
        print(f"seed {seed}: {event}")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.coverage.metrics import Metric
from repro.coverage.report import CoverageReport
from repro.diagnosis.events import DiagnosticEvent
from repro.engines.base import SimulationOptions
from repro.schedule.program import FlatProgram

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache

DEFAULT_STEPS = 50_000


@dataclass
class CaseOutcome:
    """One test case's contribution."""

    seed: int
    steps_run: int
    wall_time: float
    new_points: int  # coverage points this case uncovered first (all metrics)
    n_diagnostics: int
    # Per-metric share of new_points; sums to new_points.
    new_points_by_metric: dict[Metric, int] = field(default_factory=dict)
    # Per-phase wall timings from the job (codegen/compile/execute/parse
    # for AccMoS; just execute for interpreted engines) and whether the
    # compile was served from the artifact cache.
    timings: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False


@dataclass
class CampaignOutcome:
    """The campaign's aggregate verdict."""

    merged: CoverageReport
    cases: list[CaseOutcome] = field(default_factory=list)
    # (event, seed of the case that first exposed it)
    diagnostics: list[tuple[DiagnosticEvent, int]] = field(default_factory=list)
    saturated: bool = False
    # Warm-server pool counters (spawns/reuses/restarts/retired_*) for
    # server-mode campaigns; None when the campaign didn't serve.
    server_stats: Optional[dict] = None
    # Cases that ran (or were already in flight) past the saturation
    # point and were discarded by the ordered merge — speculation waste.
    # The streaming scheduler keeps this strictly below the wave loop's.
    speculated_cases: int = 0
    # The streaming scheduler's run report (window / batch trajectory,
    # utilization, reorder depth, speculation); None for the wave loop.
    scheduler_stats: Optional[dict] = None

    @property
    def n_cases(self) -> int:
        return len(self.cases)

    def coverage_curve(self, metric: Metric) -> list[int]:
        """Cumulative covered points *of that metric* after each case."""
        curve, total = [], 0
        for case in self.cases:
            total += case.new_points_by_metric.get(metric, 0)
            curve.append(total)
        return curve

    def summary(self) -> str:
        status = "saturated" if self.saturated else "budget exhausted"
        lines = [
            f"campaign: {self.n_cases} case(s), {status}",
            self.merged.summary(),
        ]
        if self.diagnostics:
            lines.append(f"diagnostics found: {len(self.diagnostics)}")
        return "\n".join(lines)


def _validate_campaign_args(
    *,
    engine: str,
    max_cases: int,
    plateau_patience: int,
    workers: int,
    batch_size: Optional[int],
    window: Optional[int],
    scheduler: str,
    threads: Optional[int],
    options: Optional[SimulationOptions],
    steps: Optional[int],
) -> None:
    """Shared validation for :func:`run_campaign` / :func:`iter_campaign`."""
    from repro.engines.api import ENGINES

    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; valid engines: "
            f"{', '.join(sorted(ENGINES))}"
        )
    if max_cases < 1:
        raise ValueError("max_cases must be at least 1")
    if plateau_patience < 1:
        raise ValueError("plateau_patience must be at least 1")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be at least 1 (None = auto)")
    if window is not None and window < 1:
        raise ValueError("window must be at least 1 (None = auto)")
    if scheduler not in ("stream", "wave"):
        raise ValueError(
            f"scheduler must be 'stream' or 'wave', not {scheduler!r}"
        )
    if threads is not None and threads < 0:
        raise ValueError("threads must be non-negative (0/None = auto)")
    if options is not None and steps is not None:
        raise ValueError(
            "pass either steps= or options= (which carries its own step "
            "count), not both"
        )


def iter_campaign(
    prog: FlatProgram,
    *,
    engine: str = "accmos",
    steps: Optional[int] = None,
    max_cases: int = 16,
    plateau_patience: int = 3,
    base_seed: int = 1,
    options: Optional[SimulationOptions] = None,
    workers: int = 1,
    mode: str = "thread",
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    batch_size: Optional[int] = None,
    serve: bool = True,
    inproc: bool = False,
    threads: Optional[int] = 1,
    window: Optional[int] = None,
    adaptive: bool = True,
    scheduler: str = "stream",
    server_pool=None,
    cost_store=None,
):
    """The embeddable form of :func:`run_campaign`: a validated,
    cancellable iteration over the campaign's fold loop.

    Returns a :class:`~repro.runner.campaign.CampaignRun` — iterate it
    to receive each folded :class:`CaseOutcome` in seed order; read
    ``.outcome`` for the merged :class:`CampaignOutcome` once iteration
    ends; call ``.cancel()`` (thread-safe) to stop submission and drain
    in-flight work into ``outcome.speculated_cases``.  All knobs mean
    exactly what they mean on :func:`run_campaign`; the fold is the same
    code, so the drained iteration is byte-identical to the one-shot
    call.

    Long-lived embedders (e.g. the campaign service) may pass a shared
    ``server_pool`` and ``cost_store``; the campaign borrows them
    without closing or saving — the owner controls those lifetimes.
    """
    _validate_campaign_args(
        engine=engine, max_cases=max_cases,
        plateau_patience=plateau_patience, workers=workers,
        batch_size=batch_size, window=window, scheduler=scheduler,
        threads=threads, options=options, steps=steps,
    )
    from repro.runner.campaign import CampaignRun

    return CampaignRun(
        prog,
        engine=engine,
        steps=DEFAULT_STEPS if steps is None else steps,
        max_cases=max_cases,
        plateau_patience=plateau_patience,
        base_seed=base_seed,
        options=options,
        workers=workers,
        mode=mode,
        cache=cache,
        timeout_seconds=timeout_seconds,
        batch_size=batch_size,
        serve=serve,
        inproc=inproc,
        threads=threads,
        window=window,
        adaptive=adaptive,
        scheduler=scheduler,
        server_pool=server_pool,
        cost_store=cost_store,
    )


def run_campaign(
    prog: FlatProgram,
    *,
    engine: str = "accmos",
    steps: Optional[int] = None,
    max_cases: int = 16,
    plateau_patience: int = 3,
    base_seed: int = 1,
    options: Optional[SimulationOptions] = None,
    workers: int = 1,
    mode: str = "thread",
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    batch_size: Optional[int] = None,
    serve: bool = True,
    inproc: bool = False,
    threads: Optional[int] = 1,
    window: Optional[int] = None,
    adaptive: bool = True,
    scheduler: str = "stream",
) -> CampaignOutcome:
    """Run up to ``max_cases`` differently-seeded random test cases.

    Stops early once ``plateau_patience`` consecutive cases uncover no new
    coverage point (saturation).  Pass *either* ``steps`` (a default
    :class:`SimulationOptions` with that step count; 50 000 when omitted)
    *or* a full ``options`` — both together raise ``ValueError``, since
    ``options`` carries its own step count.

    ``workers > 1`` streams cases across the :mod:`repro.runner` pool
    (``mode`` picks threads or processes) through a bounded in-flight
    window — a completion is immediately followed by a submission, no
    barrier — while the coverage merge stays in seed order (a reorder
    buffer restores it), so the outcome is byte-identical to a serial
    run.  ``window`` bounds how many cases may be in flight at once
    (default: ``workers × batch_size``); ``scheduler="wave"`` selects
    the legacy barrier loop instead (waves of ``workers × batch_size``
    seeds, folded at a barrier — kept as the reference discipline).
    ``cache`` routes compiles through an artifact cache (default: the
    process-wide one); ``timeout_seconds`` bounds each case's binary
    run.

    ``batch_size > 1`` runs that many cases back-to-back per process
    spawn on one reused binary (the compile-once / run-many path) — the
    big throughput lever for many-case campaigns.  ``None`` (the
    default) sizes it automatically — the per-worker share of
    ``max_cases``, capped at 8 — and lets the adaptive controller tune
    it from there.  Outcomes stay byte-identical to ``batch_size=1``;
    only the speculation bound at saturation grows with the in-flight
    window.

    ``adaptive`` (default on) lets a throughput feedback controller
    hill-climb ``batch_size`` and ``window`` from observed cases/sec
    and worker utilization over the campaign's lifetime (hysteresis
    guards against oscillation; short campaigns finish before the first
    adjustment).  Values you pass explicitly are never touched.  The
    run report lands in ``CampaignOutcome.scheduler_stats``; discarded
    speculation is counted in ``CampaignOutcome.speculated_cases``.

    ``serve`` (default on) streams batched cases through warm
    ``--serve`` processes kept alive across waves — steady-state zero
    process spawns, with automatic fallback to spawn-per-batch on any
    server trouble, so results are byte-identical either way.  It only
    applies where descriptors (and batches) are available, i.e. the
    AccMoS engine with ``batch_size > 1``.

    ``inproc`` (default off) loads the compiled program as a shared
    library and runs batched cases in-process through the packed binary
    ABI — zero process spawns and zero text parsing.  It sits above the
    warm-server rung in the fallback ladder (inproc → server stream →
    spawn-per-batch → per-job) and shares its gate: AccMoS engine with
    ``batch_size > 1``.  A library fault quarantines the shared object
    and falls back to the server/spawn paths, so results stay
    byte-identical either way.

    ``threads`` engages thread-parallel in-process execution: waves are
    grouped onto one shared compiled model and run by that many threads
    holding private library instances — N C simulation loops on N cores
    with *zero* process spawns (``ctypes`` releases the GIL).  Cases are
    packed into per-thread shards by the cost model, and the merge stays
    in seed order, so ``threads=N`` is byte-identical to ``threads=1``.
    ``threads=None`` (or 0) picks automatically: the core count (capped
    at 4) when the toolchain supports shared objects and the engine is
    AccMoS, else 1.  Only applies to the AccMoS engine; a library fault
    mid-campaign falls down the usual ladder.
    """
    _validate_campaign_args(
        engine=engine, max_cases=max_cases,
        plateau_patience=plateau_patience, workers=workers,
        batch_size=batch_size, window=window, scheduler=scheduler,
        threads=threads, options=options, steps=steps,
    )

    from repro.runner.campaign import execute_campaign

    return execute_campaign(
        prog,
        engine=engine,
        steps=DEFAULT_STEPS if steps is None else steps,
        max_cases=max_cases,
        plateau_patience=plateau_patience,
        base_seed=base_seed,
        options=options,
        workers=workers,
        mode=mode,
        cache=cache,
        timeout_seconds=timeout_seconds,
        batch_size=batch_size,
        serve=serve,
        inproc=inproc,
        threads=threads,
        window=window,
        adaptive=adaptive,
        scheduler=scheduler,
    )

"""The ranked seed corpus of a guided campaign, persisted across sessions.

Layout on disk::

    <corpus_dir>/
      corpus.json            # manifest: version, stats, ranked seed ids
      coverage.json          # the accumulated CoverageMap (hex words)
      seeds/seed-<sig>.json  # one CaseSpec + its ranking bookkeeping

Seed files are ordinary fuzz-case JSON plus the bookkeeping the energy
scheduler reads (novelty, cost, fuzz counts), so any entry can be
replayed standalone.  ``corpus.json`` records the save-time ranking;
loading rebuilds the live corpus and re-ranks as the campaign evolves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import ALL_METRICS, Metric
from repro.fuzz.corpus import case_signature
from repro.fuzz.generate import CaseSpec
from repro.guided.covmap import CoverageMap


def coverage_key(
    case: CaseSpec, bitmaps: Optional[Mapping[Metric, Bitmap]] = None
) -> str:
    """The compile-key-granular identity the coverage map is keyed by.

    Hashes the structural spec — wiring, block types, operators, output
    dtypes — and deliberately *excludes* parameter literals, stimuli,
    and step counts: those change the compiled constants but not the
    coverage point layout, so all mutants of one structure accumulate
    into one map entry.  When ``bitmaps`` is given, the per-metric sizes
    are appended, making a size mismatch under one key impossible by
    construction.
    """
    payload = json.dumps(
        [
            {
                "name": n.name,
                "block_type": n.block_type,
                "inputs": list(n.inputs),
                "dtype": n.dtype,
                "operator": n.operator,
            }
            for n in case.nodes
        ],
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    if bitmaps is None:
        return digest
    sizes = "x".join(str(len(bitmaps[m])) for m in ALL_METRICS)
    return f"{digest}:{sizes}"


@dataclass
class SeedEntry:
    """One corpus seed: a case plus the scheduler's bookkeeping."""

    case: CaseSpec
    key: str  # coverage/compile key
    novel_points: int  # points this seed itself contributed on admission
    cost_seconds: float  # wall cost of its differential evaluation
    round_added: int = 0
    times_fuzzed: int = 0  # rounds in which this seed was mutated
    child_novel_points: int = 0  # novelty its mutants contributed since
    sig: str = ""

    def __post_init__(self) -> None:
        if not self.sig:
            self.sig = case_signature(self.case)

    def to_dict(self) -> dict:
        return {
            "sig": self.sig,
            "key": self.key,
            "novel_points": self.novel_points,
            "cost_seconds": round(self.cost_seconds, 6),
            "round_added": self.round_added,
            "times_fuzzed": self.times_fuzzed,
            "child_novel_points": self.child_novel_points,
            "case": self.case.to_dict(),
        }

    @staticmethod
    def from_dict(d: dict) -> "SeedEntry":
        return SeedEntry(
            case=CaseSpec.from_dict(d["case"]),
            key=d["key"],
            novel_points=int(d["novel_points"]),
            cost_seconds=float(d.get("cost_seconds", 0.0)),
            round_added=int(d.get("round_added", 0)),
            times_fuzzed=int(d.get("times_fuzzed", 0)),
            child_novel_points=int(d.get("child_novel_points", 0)),
            sig=d.get("sig", ""),
        )


@dataclass
class SeedCorpus:
    """The live corpus: ranked seeds + the accumulated coverage map."""

    seeds: list[SeedEntry] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)

    def __post_init__(self) -> None:
        self._by_sig = {entry.sig: entry for entry in self.seeds}

    def __len__(self) -> int:
        return len(self.seeds)

    def add(self, entry: SeedEntry) -> bool:
        """Admit a seed; False when an identical case is already in."""
        if entry.sig in self._by_sig:
            return False
        self.seeds.append(entry)
        self._by_sig[entry.sig] = entry
        return True

    def ranked(self) -> list[SeedEntry]:
        """Seeds by descending scheduler score (stable on ties)."""
        from repro.guided.energy import seed_score

        return sorted(
            self.seeds, key=lambda e: (-seed_score(e), e.sig)
        )

    def stats(self) -> dict:
        ranked = self.ranked()
        return {
            "seeds": len(self.seeds),
            "coverage_keys": self.coverage.n_keys,
            "coverage_points": self.coverage.points(),
            "points_possible": self.coverage.points_possible(),
            "by_metric": {
                m.value: {"covered": c, "possible": p}
                for m, (c, p) in self.coverage.points_by_metric().items()
            },
            "top": [
                {
                    "sig": e.sig,
                    "actors": e.case.n_actors,
                    "novel_points": e.novel_points,
                    "child_novel_points": e.child_novel_points,
                    "times_fuzzed": e.times_fuzzed,
                }
                for e in ranked[:10]
            ],
        }

    # -- persistence ---------------------------------------------------
    def save(self, corpus_dir: Path) -> Path:
        """Write the ranked corpus; returns the manifest path."""
        corpus_dir = Path(corpus_dir)
        seed_dir = corpus_dir / "seeds"
        seed_dir.mkdir(parents=True, exist_ok=True)
        ranked = self.ranked()
        for entry in ranked:
            path = seed_dir / f"seed-{entry.sig}.json"
            path.write_text(
                json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n"
            )
        (corpus_dir / "coverage.json").write_text(
            json.dumps(self.coverage.to_dict(), sort_keys=True) + "\n"
        )
        manifest = corpus_dir / "corpus.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "ranked": [entry.sig for entry in ranked],
                    "stats": self.stats(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return manifest

    @classmethod
    def load(cls, corpus_dir: Path) -> "SeedCorpus":
        """Rebuild a saved corpus; raises ``FileNotFoundError`` when the
        directory holds no manifest."""
        corpus_dir = Path(corpus_dir)
        manifest_path = corpus_dir / "corpus.json"
        manifest = json.loads(manifest_path.read_text())
        seeds = []
        for sig in manifest.get("ranked", []):
            path = corpus_dir / "seeds" / f"seed-{sig}.json"
            seeds.append(SeedEntry.from_dict(json.loads(path.read_text())))
        coverage_path = corpus_dir / "coverage.json"
        coverage = (
            CoverageMap.from_dict(json.loads(coverage_path.read_text()))
            if coverage_path.exists()
            else CoverageMap()
        )
        return cls(seeds=seeds, coverage=coverage)

    @classmethod
    def load_or_empty(cls, corpus_dir: Optional[Path]) -> "SeedCorpus":
        if corpus_dir is None:
            return cls()
        try:
            return cls.load(corpus_dir)
        except FileNotFoundError:
            return cls()

"""The coverage-guided campaign loop: corpus -> mutate -> oracle -> rank.

Where the blind fuzzer draws every case independently, the guided loop
keeps what worked: cases whose coverage bitmaps set points the
accumulated :class:`~repro.guided.covmap.CoverageMap` had not seen are
admitted to the ranked :class:`~repro.guided.corpus.SeedCorpus`, and
each round spends most of its budget mutating the best-scoring seeds
(see :mod:`repro.guided.energy`), topped up with a trickle of fresh
blind cases so the search never inbreeds.

The differential oracle stays in the loop — every case (fresh or
mutant) runs through :func:`repro.fuzz.oracle.run_case`, so divergences
are still shrunk and persisted exactly as in the blind campaign, via the
shared :func:`repro.fuzz.driver.process_finding`.  Coverage comes for
free from the oracle's SSE reference run (identical bitmaps to every C
rung by the oracle's own invariant), so guidance works even on machines
without a C compiler.

Saturation ends campaigns early: after ``saturation_rounds`` consecutive
rounds contributing zero novel points, the structure space reachable
from the corpus is considered exhausted and the remaining case budget is
returned unspent.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.fuzz.driver import FuzzFinding, case_seed, process_finding
from repro.fuzz.generate import generate_case
from repro.fuzz.oracle import (
    ALL_RUNGS,
    available_rungs,
    run_case,
)
from repro.guided.corpus import SeedCorpus, SeedEntry, coverage_key
from repro.guided.covmap import CoverageMap
from repro.guided.energy import schedule_round
from repro.guided.mutate import MUTATIONS, mutants


def default_guided_rungs() -> tuple[str, ...]:
    """The cheapest meaningful comparison rung available.

    Guidance wants throughput, not breadth: one fast rung keeps the
    oracle in the loop (divergences still surface) while the full
    six-rung sweep stays the blind campaign's job.  Preference order is
    the speed ladder top down: in-process shared library, then the
    spawn-per-batch C path, then the Accelerator-analog Python rung.
    """
    usable = available_rungs()
    for rung in ("accmos_inproc", "accmos", "sse_ac"):
        if rung in usable:
            return (rung,)
    return (usable[0],) if usable else ("sse_ac",)


@dataclass
class GuidedConfig:
    """Knobs for one guided campaign."""

    cases: int = 300  # total evaluation budget (fresh + mutants)
    seed: int = 0
    steps: Optional[int] = None  # None = random per fresh case
    max_actors: int = 14  # fresh-case size ceiling (same as blind)
    max_corpus_actors: int = 28  # insert mutations may grow seeds to this
    rungs: Optional[Sequence[str]] = None  # None = default_guided_rungs()
    round_size: int = 25  # evaluations per round
    fresh_per_round: int = 3  # blind top-up once the corpus is seeded
    saturation_rounds: int = 3  # consecutive 0-novelty rounds before stop
    energy_base: int = 4
    energy_cap: int = 16
    mutation_ops: Sequence[str] = MUTATIONS
    time_budget: Optional[float] = None  # wall seconds for the campaign
    shrink: bool = True
    max_shrink_attempts: int = 250
    corpus_dir: Optional[Path] = None  # seed corpus (ranked, replayable)
    findings_dir: Optional[Path] = None  # divergence reproducers
    timeout_seconds: Optional[float] = 120.0
    cache: object = None  # None = default artifact cache (mutants share binaries)


@dataclass
class GuidedOutcome:
    """What a guided campaign did."""

    rungs: tuple[str, ...]
    rounds: int = 0
    cases_run: int = 0
    invalid_mutants: int = 0  # mutants the reference itself rejected
    novel_points: int = 0  # coverage points added this campaign
    elapsed: float = 0.0
    saturated: bool = False
    budget_exhausted: bool = False
    corpus_size: int = 0
    coverage_keys: int = 0
    coverage_points: int = 0
    duplicates: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def divergent(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        verdict = (
            "all rungs agree" if not self.findings
            else f"{self.divergent} divergent case(s)"
        )
        stop = ""
        if self.saturated:
            stop = " (saturated)"
        elif self.budget_exhausted:
            stop = " (time budget hit)"
        return (
            f"guided: {self.cases_run} case(s) in {self.rounds} round(s), "
            f"{self.elapsed:.1f}s: +{self.novel_points} coverage point(s) "
            f"-> {self.coverage_points} across {self.coverage_keys} "
            f"structure(s), corpus {self.corpus_size} seed(s); "
            f"{verdict}{stop}"
        )


def _mutant_seed(base_seed: int, round_no: int, sig: str) -> int:
    """Deterministic per-(round, seed-entry) mutation stream."""
    payload = f"{base_seed}:{round_no}:{sig}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def run_guided(
    config: GuidedConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> GuidedOutcome:
    """Run one guided campaign; see :class:`GuidedConfig`.

    Raises ``ValueError`` on unknown rung names (matching
    :func:`repro.fuzz.driver.run_fuzz`).  When ``config.corpus_dir``
    holds a previously saved corpus it is loaded and extended — the
    campaign resumes where the last one left off — and the (possibly
    grown) corpus is persisted back on exit, saturation or not.
    """
    if config.rungs:
        unknown = [r for r in config.rungs if r not in ALL_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown rung(s): {', '.join(sorted(unknown))}; "
                f"valid rungs: {', '.join(ALL_RUNGS)}"
            )
    rungs = (
        tuple(config.rungs) if config.rungs else default_guided_rungs()
    )
    outcome = GuidedOutcome(rungs=rungs)
    say = progress or (lambda _msg: None)
    started = time.perf_counter()
    deadline = (
        started + config.time_budget
        if config.time_budget is not None else None
    )

    corpus = SeedCorpus.load_or_empty(config.corpus_dir)
    if len(corpus):
        say(
            f"resuming corpus: {len(corpus)} seed(s), "
            f"{corpus.coverage.points()} point(s)"
        )
    round_no = max((e.round_added for e in corpus.seeds), default=-1) + 1
    fresh_index = 0
    stale_rounds = 0

    def out_of_budget() -> bool:
        if deadline is not None and time.perf_counter() >= deadline:
            outcome.budget_exhausted = True
            return True
        return False

    def evaluate(case, *, parent: Optional[SeedEntry], label: str) -> int:
        """Oracle one case, fold its coverage in, admit/attribute/report."""
        case_started = time.perf_counter()
        try:
            with telemetry.span(
                "guided.case", actors=case.n_actors, kind=label
            ):
                report = run_case(
                    case, rungs=rungs,
                    timeout_seconds=config.timeout_seconds,
                    cache=config.cache,
                )
        except Exception:  # noqa: BLE001 — reference rejected the case
            # A mutant the *reference* cannot run is simply invalid
            # (e.g. a parameter perturbation the builder rejects); it
            # consumed no real budget and is not a finding.
            outcome.invalid_mutants += 1
            telemetry.counter_inc("guided.invalid_mutants")
            return 0
        cost = time.perf_counter() - case_started
        outcome.cases_run += 1
        telemetry.counter_inc("guided.cases")

        novelty = 0
        if report.coverage is not None:
            bitmaps = report.coverage.bitmaps
            key = coverage_key(case, bitmaps)
            novelty = corpus.coverage.observe(key, bitmaps)
            if novelty > 0:
                # Every novelty-carrying case is admitted — including
                # divergent ones — so the accumulated map stays exactly
                # the union of the seeds' bitmaps (the replay invariant).
                corpus.add(SeedEntry(
                    case=case,
                    key=key,
                    novel_points=novelty,
                    cost_seconds=cost,
                    round_added=round_no,
                ))
                if parent is not None:
                    parent.child_novel_points += novelty
                outcome.novel_points += novelty
                telemetry.counter_inc("guided.novel_points", novelty)

        if not report.agreed:
            telemetry.counter_inc("fuzz.divergences")
            say(
                f"{label}: {len(report.divergences)} divergence(s), "
                f"first: {report.divergences[0].rung} "
                f"{report.divergences[0].kind}"
            )
            finding, duplicate = process_finding(
                case, report,
                seed=getattr(case, "seed", 0) or 0,
                rungs=rungs,
                shrink=config.shrink,
                max_shrink_attempts=config.max_shrink_attempts,
                timeout_seconds=config.timeout_seconds,
                corpus_dir=config.findings_dir,
                deadline=deadline,
                say=say,
            )
            outcome.findings.append(finding)
            if duplicate:
                outcome.duplicates += 1
        return novelty

    while outcome.cases_run < config.cases and not out_of_budget():
        budget = min(config.round_size, config.cases - outcome.cases_run)
        round_novelty_before = outcome.novel_points
        round_cases_before = outcome.cases_run

        # Fresh blind cases: the whole round while the corpus is empty,
        # a trickle afterwards.
        n_fresh = budget if not len(corpus) else min(
            config.fresh_per_round, budget
        )
        with telemetry.span(
            "guided.round", round=round_no, budget=budget, fresh=n_fresh
        ):
            for _ in range(n_fresh):
                if out_of_budget():
                    break
                seed = case_seed(config.seed, fresh_index)
                fresh_index += 1
                case = generate_case(
                    seed, max_actors=config.max_actors, steps=config.steps
                )
                evaluate(case, parent=None, label=f"fresh {seed}")

            # Mutants of the ranked seeds, best first.
            schedule = schedule_round(
                corpus.seeds,
                budget - n_fresh,
                base=config.energy_base,
                cap=config.energy_cap,
            )
            for entry, energy in schedule:
                if out_of_budget():
                    break
                entry.times_fuzzed += 1
                batch = mutants(
                    entry.case,
                    _mutant_seed(config.seed, round_no, entry.sig),
                    energy,
                    max_actors=config.max_corpus_actors,
                    ops=config.mutation_ops,
                )
                for mutant in batch:
                    if out_of_budget():
                        break
                    evaluate(
                        mutant, parent=entry,
                        label=f"mutant of {entry.sig}",
                    )

        outcome.rounds += 1
        telemetry.counter_inc("guided.rounds")
        round_novelty = outcome.novel_points - round_novelty_before
        say(
            f"round {round_no}: +{round_novelty} point(s), "
            f"corpus {len(corpus)}, total {corpus.coverage.points()}"
        )
        round_no += 1
        if outcome.budget_exhausted:
            break

        # Saturation: rounds that add nothing (or could not evaluate
        # anything at all) in a row mean the reachable structure space
        # is exhausted — stop and hand the unspent budget back.
        if round_novelty == 0 or outcome.cases_run == round_cases_before:
            stale_rounds += 1
            if stale_rounds >= config.saturation_rounds:
                outcome.saturated = True
                telemetry.counter_inc("guided.saturation")
                say(
                    f"saturated: {stale_rounds} round(s) without novel "
                    "coverage"
                )
                break
        else:
            stale_rounds = 0

    if config.corpus_dir is not None:
        corpus.save(config.corpus_dir)
        say(f"corpus -> {config.corpus_dir}")

    outcome.corpus_size = len(corpus)
    outcome.coverage_keys = corpus.coverage.n_keys
    outcome.coverage_points = corpus.coverage.points()
    outcome.elapsed = time.perf_counter() - started
    return outcome


# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of re-deriving a saved corpus's coverage from scratch."""

    seeds: int = 0
    replayed: int = 0
    matched: bool = False
    points_expected: int = 0
    points_rebuilt: int = 0
    errors: list[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "bit-for-bit match" if self.matched else "MISMATCH"
        errs = f", {len(self.errors)} error(s)" if self.errors else ""
        return (
            f"replay: {self.replayed}/{self.seeds} seed(s), "
            f"{self.points_rebuilt}/{self.points_expected} point(s): "
            f"{verdict}{errs}"
        )


def replay_corpus(
    corpus_dir: Path,
    *,
    timeout_seconds: Optional[float] = 120.0,
) -> ReplayReport:
    """Re-run every saved seed and check the stored coverage map.

    Each seed is simulated afresh — through the in-process coverage
    probe (:meth:`CompiledModel.probe_coverage`) when the toolchain
    supports shared objects, through the SSE reference otherwise (the
    bitmaps are identical by the oracle invariant) — and folded into a
    fresh :class:`CoverageMap`.  ``matched`` is True iff the rebuilt map
    equals the persisted one bit for bit: the corpus is exactly its
    seeds, nothing more, nothing less.
    """
    from repro.codegen.descriptor import descriptors_for
    from repro.codegen.driver import find_c_compiler, supports_shared_objects
    from repro.engines import SimulationOptions, simulate
    from repro.engines.accmos import compile_model
    from repro.fuzz.generate import build_model, build_stimuli
    from repro.schedule import preprocess

    corpus = SeedCorpus.load(corpus_dir)
    report = ReplayReport(
        seeds=len(corpus), points_expected=corpus.coverage.points()
    )
    use_probe = (
        find_c_compiler() is not None
        and supports_shared_objects() is True
    )
    rebuilt = CoverageMap()

    with telemetry.span("guided.replay", seeds=len(corpus)):
        for entry in corpus.seeds:
            try:
                prog = preprocess(build_model(entry.case))
                stimuli = build_stimuli(entry.case)
                options = SimulationOptions(steps=entry.case.steps)
                bitmaps = None
                if use_probe and descriptors_for(prog, stimuli) is not None:
                    compiled = compile_model(prog, options, cache=None)
                    (bitmaps,) = compiled.probe_coverage(
                        [(stimuli, options)],
                        timeout_seconds=timeout_seconds,
                    )
                if bitmaps is None:
                    result = simulate(
                        prog, stimuli, engine="sse", options=options
                    )
                    if result.coverage is not None:
                        bitmaps = result.coverage.bitmaps
                if bitmaps is None:
                    report.errors.append(f"{entry.sig}: no coverage")
                    continue
                rebuilt.observe(entry.key, bitmaps)
                report.replayed += 1
            except Exception as exc:  # noqa: BLE001 — report, don't die
                report.errors.append(
                    f"{entry.sig}: {type(exc).__name__}: {exc}"
                )

    report.points_rebuilt = rebuilt.points()
    report.matched = (
        not report.errors and rebuilt == corpus.coverage
    )
    return report

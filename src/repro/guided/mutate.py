"""Seeded, deterministic mutation of fuzz cases.

Five passes, all operating on the serializable :class:`CaseSpec` recipe
(never the built model), so every mutant is itself shrinkable,
persistable, and replayable:

* ``stimulus`` — swap one inport's stimulus for a freshly drawn spec
  (same structure: probes new value trajectories through the same
  binary);
* ``steps``    — redraw the step count (same structure: longer runs
  reach later-firing decision/MCDC sides);
* ``param``    — perturb one node parameter within the generator's
  validity envelope (same point layout, different compiled constants);
* ``insert``   — append recipe-generated nodes consuming the existing
  frontier (new, usually *larger* structure — how the corpus grows
  past the blind generator's size ceiling);
* ``delete``   — drop one node plus its consumer cascade (new, smaller
  structure).

Determinism contract: mutants are a pure function of (case, seed) —
:func:`mutants` with the same arguments always returns the same list.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Sequence

from repro.fuzz.generate import (
    CaseSpec,
    NodeSpec,
    extend_case,
    random_stimulus_spec,
)
from repro.fuzz.shrink import drop_node

#: Every pass, in the default weighting order.
MUTATIONS = ("stimulus", "steps", "param", "insert", "delete")
#: Draw weights.  Insert dominates deliberately: the coverage map is
#: keyed per *structure*, so same-structure mutations (stimulus, steps,
#: param) can only fill the few condition/decision holes their parent
#: left, while an insertion creates a new, larger structure whose whole
#: point set counts as novel.  Measured on the bench_guided workload,
#: insert-heavy weighting is what puts guided ahead of blind at equal
#: case count (~1.2-1.4x accumulated points across seeds).
_WEIGHTS = {"stimulus": 1, "steps": 1, "param": 1, "insert": 12, "delete": 1}


def _mut_stimulus(case: CaseSpec, rng: random.Random, _max) -> Optional[CaseSpec]:
    inports = [n for n in case.nodes if n.block_type == "Inport"]
    inports = [n for n in inports if n.name in case.stimuli]
    if not inports:
        return None
    node = rng.choice(inports)
    dtype = node.out_dtype
    if dtype is None:
        return None
    stimuli = dict(case.stimuli)
    stimuli[node.name] = random_stimulus_spec(rng, dtype, case.steps)
    return replace(case, stimuli=stimuli)


def _mut_steps(case: CaseSpec, rng: random.Random, _max) -> Optional[CaseSpec]:
    steps = rng.randint(1, 64)
    if steps == case.steps:
        steps = rng.randint(1, 64)
    return replace(case, steps=steps)


def _perturb_number(rng: random.Random, value):
    """A nearby (same-family) value; ints stay ints, floats floats."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        delta = rng.choice([-3, -2, -1, 1, 2, 3])
        return value + delta
    return round(value + rng.uniform(-2.0, 2.0), 3)


def _perturbed_params(node: NodeSpec, rng: random.Random) -> Optional[dict]:
    """A perturbed copy of the node's params, respecting the generator's
    validity envelope for the constrained ones; None when nothing to do."""
    p = dict(node.params)
    if not p:
        return None
    # Constrained pairs are redrawn jointly so order/range invariants hold.
    if "period" in p and "duty" in p:
        period = rng.randint(2, 9)
        p["period"], p["duty"] = period, rng.randint(1, period - 1)
        return p
    if "lower" in p and "upper" in p:
        width = abs(p["upper"] - p["lower"]) or 1
        lo = _perturb_number(rng, p["lower"])
        p["lower"], p["upper"] = lo, lo + width
        return p
    if "start" in p and "end" in p:
        width = abs(p["end"] - p["start"]) or 1
        start = _perturb_number(rng, p["start"])
        p["start"], p["end"] = start, start + width
        return p
    if "on_threshold" in p and "off_threshold" in p:
        gap = abs(p["on_threshold"] - p["off_threshold"]) or 1
        off = _perturb_number(rng, p["off_threshold"])
        p["off_threshold"], p["on_threshold"] = off, off + gap
        return p
    if "breakpoints" in p:
        # Breakpoints must stay increasing; perturb the table only.
        table = list(p.get("table", ()))
        if not table:
            return None
        i = rng.randrange(len(table))
        table[i] = _perturb_number(rng, table[i])
        p["table"] = table
        return p
    key = rng.choice(sorted(p))
    value = p[key]
    if isinstance(value, list):
        if not value or not all(isinstance(v, (int, float)) for v in value):
            return None
        value = list(value)
        i = rng.randrange(len(value))
        value[i] = _perturb_number(rng, value[i])
        p[key] = value
        return p
    if key == "length":
        p[key] = rng.randint(1, 4)
        return p
    if key == "limit":
        p[key] = rng.randint(2, 9)
        return p
    if isinstance(value, (bool, int, float)):
        p[key] = _perturb_number(rng, value)
        return p
    return None  # non-numeric (operator-like strings): leave alone


def _mut_param(case: CaseSpec, rng: random.Random, _max) -> Optional[CaseSpec]:
    candidates = [
        i for i, n in enumerate(case.nodes)
        if n.params and n.block_type != "Inport"
    ]
    if not candidates:
        return None
    i = rng.choice(candidates)
    params = _perturbed_params(case.nodes[i], rng)
    if params is None:
        return None
    nodes = list(case.nodes)
    nodes[i] = replace(nodes[i], params=params)
    return replace(case, nodes=nodes)


def _mut_insert(
    case: CaseSpec, rng: random.Random, max_actors: int
) -> Optional[CaseSpec]:
    if case.n_actors >= max_actors:
        return None
    return extend_case(case, rng)


def _mut_delete(case: CaseSpec, rng: random.Random, _max) -> Optional[CaseSpec]:
    names = [n.name for n in case.nodes if n.block_type != "Inport"]
    if len(names) <= 1:
        return None
    rng.shuffle(names)
    for name in names:
        smaller = drop_node(case, name)
        if smaller is not None and smaller.n_actors >= 1:
            return smaller
    return None


_OPS = {
    "stimulus": _mut_stimulus,
    "steps": _mut_steps,
    "param": _mut_param,
    "insert": _mut_insert,
    "delete": _mut_delete,
}


def mutate_case(
    case: CaseSpec,
    rng: random.Random,
    *,
    max_actors: int = 28,
    ops: Sequence[str] = MUTATIONS,
) -> Optional[CaseSpec]:
    """One mutant of ``case``, or None when every drawn pass came up
    empty.  ``ops`` restricts the pass set (tests use a single pass to
    pin behavior); unknown names raise ``ValueError``."""
    unknown = [op for op in ops if op not in _OPS]
    if unknown:
        raise ValueError(
            f"unknown mutation op(s): {', '.join(sorted(unknown))}; "
            f"valid ops: {', '.join(MUTATIONS)}"
        )
    weights = [_WEIGHTS[op] for op in ops]
    for _ in range(6):
        op = rng.choices(list(ops), weights=weights, k=1)[0]
        mutant = _OPS[op](case, rng, max_actors)
        if mutant is None:
            continue
        label = rng.getrandbits(32)
        return replace(mutant, name=f"Mut{label:x}", seed=label)
    return None


def mutants(
    case: CaseSpec,
    seed: int,
    count: int,
    *,
    max_actors: int = 28,
    ops: Sequence[str] = MUTATIONS,
) -> list[CaseSpec]:
    """Up to ``count`` deterministic mutants of ``case`` from ``seed``.

    Same (case, seed, count, ops) always yields the same list — the
    guided campaign's replayability hinges on this.
    """
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        mutant = mutate_case(case, rng, max_actors=max_actors, ops=ops)
        if mutant is not None:
            out.append(mutant)
    return out

"""repro.guided — coverage-guided corpus fuzzing.

The blind differential fuzzer (:mod:`repro.fuzz`) draws every case
independently; this package closes the loop: coverage bitmaps from each
run feed a global accumulated :class:`CoverageMap`, novelty-carrying
cases join a ranked, persisted :class:`SeedCorpus`, an energy scheduler
spends the case budget on the seeds most likely to yield, and
saturation detection stops campaigns whose reachable coverage is
exhausted.  Entry points: :func:`run_guided` (the campaign) and
:func:`replay_corpus` (bit-for-bit verification of a saved corpus).
"""

from repro.guided.corpus import SeedCorpus, SeedEntry, coverage_key
from repro.guided.covmap import CoverageMap
from repro.guided.driver import (
    GuidedConfig,
    GuidedOutcome,
    ReplayReport,
    default_guided_rungs,
    replay_corpus,
    run_guided,
)
from repro.guided.energy import assign_energy, schedule_round, seed_score
from repro.guided.mutate import MUTATIONS, mutants, mutate_case

__all__ = [
    "CoverageMap",
    "GuidedConfig",
    "GuidedOutcome",
    "MUTATIONS",
    "ReplayReport",
    "SeedCorpus",
    "SeedEntry",
    "assign_energy",
    "coverage_key",
    "default_guided_rungs",
    "mutants",
    "mutate_case",
    "replay_corpus",
    "run_guided",
    "schedule_round",
    "seed_score",
]

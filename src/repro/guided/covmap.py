"""The global accumulated coverage map of a guided campaign.

Every fuzz case is its own generated program with its own coverage point
layout, so a single flat AFL bitmap cannot describe a whole corpus.
Instead the map keeps one accumulated :class:`Bitmap` per metric *per
compile key* — the structural identity of the generated binary (wiring,
block types, operators, dtypes; parameter literals and stimuli vary the
compiled constants but never the point layout, so all mutants of one
structure share one entry).  A case's *novelty* is the number of points
it sets that its key's accumulated bitmaps did not already have; a
brand-new structure contributes every point it hits.

The map serializes to the same 64-bit hex-word format the generated
programs emit on the ``cov`` wire, so a persisted corpus replayed in a
fresh process can be checked bit-for-bit against the stored map.
"""

from __future__ import annotations

from typing import Mapping

from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import ALL_METRICS, Metric

_BY_VALUE = {m.value: m for m in Metric}


class CoverageMap:
    """Accumulated per-compile-key coverage bitmaps."""

    def __init__(self) -> None:
        self._maps: dict[str, dict[Metric, Bitmap]] = {}

    # ------------------------------------------------------------------
    def observe(self, key: str, bitmaps: Mapping[Metric, Bitmap]) -> int:
        """Fold one case's bitmaps into the map; returns its novelty
        (the number of points newly set under ``key``)."""
        accumulated = self._maps.get(key)
        if accumulated is None:
            accumulated = {
                metric: Bitmap(len(bitmaps[metric])) for metric in ALL_METRICS
            }
            self._maps[key] = accumulated
        novel = 0
        for metric in ALL_METRICS:
            novel += bitmaps[metric].or_into(accumulated[metric])
        return novel

    def novelty(self, key: str, bitmaps: Mapping[Metric, Bitmap]) -> int:
        """What :meth:`observe` would return, without mutating the map."""
        accumulated = self._maps.get(key)
        if accumulated is None:
            return sum(bitmaps[metric].count() for metric in ALL_METRICS)
        return sum(
            bitmaps[metric].new_bits(accumulated[metric])
            for metric in ALL_METRICS
        )

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        return len(self._maps)

    def points(self) -> int:
        """Total accumulated coverage points across all keys/metrics."""
        return sum(
            bm.count() for maps in self._maps.values() for bm in maps.values()
        )

    def points_possible(self) -> int:
        return sum(
            len(bm) for maps in self._maps.values() for bm in maps.values()
        )

    def points_by_metric(self) -> dict[Metric, tuple[int, int]]:
        """metric -> (covered, possible) summed over every key."""
        out = {metric: (0, 0) for metric in ALL_METRICS}
        for maps in self._maps.values():
            for metric in ALL_METRICS:
                covered, possible = out[metric]
                bm = maps[metric]
                out[metric] = (covered + bm.count(), possible + len(bm))
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": 1,
            "keys": {
                key: {
                    metric.value: {
                        "size": len(bm),
                        "words": [f"{w:#x}" for w in bm.to_words()],
                    }
                    for metric, bm in maps.items()
                }
                for key, maps in self._maps.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CoverageMap":
        cm = cls()
        for key, maps in d.get("keys", {}).items():
            cm._maps[key] = {
                _BY_VALUE[name]: Bitmap.from_words(
                    entry["size"], (int(w, 16) for w in entry["words"])
                )
                for name, entry in maps.items()
            }
        return cm

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self._maps == other._maps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoverageMap({self.points()}/{self.points_possible()} points, "
            f"{self.n_keys} key(s))"
        )

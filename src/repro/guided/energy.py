"""Energy scheduling: how many mutants each seed earns per round.

AFL's insight, transplanted: budget is finite, so spend it where the
coverage yield is.  A seed's *score* is its novelty yield per time it
has been fuzzed, discounted by its evaluation cost (expensive seeds must
pay rent); its *energy* is the mutant count it gets when scheduled —
never-fuzzed seeds get a double first shot, seeds whose mutants have
stopped producing wind down to a maintenance trickle.
"""

from __future__ import annotations

from typing import Iterable

from repro.guided.corpus import SeedEntry


def seed_score(entry: SeedEntry) -> float:
    """Descending-sort key for the round schedule."""
    yield_per_fuzz = (entry.novel_points + entry.child_novel_points) / (
        1.0 + entry.times_fuzzed
    )
    # sqrt keeps big (costly) models competitive: their per-case yield is
    # higher, and a linear cost penalty would cancel exactly that edge.
    cost = max(entry.cost_seconds, 1e-3) ** 0.5
    return yield_per_fuzz / cost


def assign_energy(entry: SeedEntry, *, base: int = 4, cap: int = 16) -> int:
    """Mutants this seed gets when scheduled this round."""
    energy = base
    if entry.times_fuzzed == 0:
        energy *= 2  # first full shot for fresh blood
    elif entry.child_novel_points == 0:
        energy = max(1, energy // 2)  # proven dry: maintenance only
    return max(1, min(cap, energy))


def schedule_round(
    seeds: Iterable[SeedEntry],
    budget: int,
    *,
    base: int = 4,
    cap: int = 16,
) -> list[tuple[SeedEntry, int]]:
    """(seed, energy) assignments for one round, best seeds first, total
    energy never exceeding ``budget``."""
    schedule: list[tuple[SeedEntry, int]] = []
    for entry in sorted(seeds, key=lambda e: (-seed_score(e), e.sig)):
        if budget <= 0:
            break
        energy = min(assign_energy(entry, base=base, cap=cap), budget)
        schedule.append((entry, energy))
        budget -= energy
    return schedule

"""Simulation-oriented instrumentation (paper §3.2, Algorithm 1).

:func:`build_plan` walks the flattened actors in execution order and
decides, per actor, exactly what the simulation must observe there:

* its coverage points (actor always; condition for branch actors; decision
  for boolean logic; MC/DC for combination conditions),
* whether its signals are collected (the signal monitor / ``collectList``),
* which runtime diagnoses apply (``diagnoseList`` × the per-type rule
  table), plus static downcast findings,
* any user-supplied custom diagnoses.

The resulting :class:`InstrumentationPlan` is engine-neutral: the
interpreted SSE engine executes it directly, and the code generator turns
each entry into inlined C instrumentation.
"""

from repro.instrument.plan import ActorInstrumentation, InstrumentationPlan, build_plan

__all__ = ["InstrumentationPlan", "ActorInstrumentation", "build_plan"]

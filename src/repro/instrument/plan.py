"""Algorithm 1: per-actor instrumentation planning."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.actors.registry import get_spec
from repro.coverage.points import CoveragePoints, enumerate_points
from repro.diagnosis.custom import CustomDiagnosis
from repro.diagnosis.events import DiagnosticEvent, DiagnosticKind
from repro.diagnosis.rules import applicable_kinds, static_downcast_warnings
from repro.model.errors import ValidationError
from repro.schedule.program import FlatProgram


@dataclass
class ActorInstrumentation:
    """Everything to observe at one flat actor."""

    actor_index: int
    path: str
    # Coverage instrumentation (ids into the shared CoveragePoints layout).
    actor_point: int = -1
    condition_base: Optional[tuple[int, int]] = None  # (base, n branches)
    decision_base: Optional[int] = None
    mcdc_base: Optional[tuple[int, int]] = None  # (base, n conditions)
    logic_op: Optional[str] = None  # operator for MC/DC side computation
    # Data collection (signal monitor).
    collect: bool = False
    # Runtime diagnosis kinds wired in at this actor.
    diagnose_kinds: frozenset[DiagnosticKind] = frozenset()
    # User callbacks.
    custom: tuple[CustomDiagnosis, ...] = ()

    @property
    def needs_diagnosis(self) -> bool:
        return bool(self.diagnose_kinds) or bool(self.custom)


@dataclass
class InstrumentationPlan:
    """The program-wide instrumentation decisions."""

    points: CoveragePoints
    actors: list[ActorInstrumentation] = field(default_factory=list)
    static_warnings: list[DiagnosticEvent] = field(default_factory=list)
    coverage_enabled: bool = True
    diagnostics_enabled: bool = True

    def by_index(self, actor_index: int) -> ActorInstrumentation:
        return self.actors[actor_index]


def build_plan(
    prog: FlatProgram,
    *,
    coverage: bool = True,
    diagnostics: bool = True,
    collect: Sequence[str] | str = "outports",
    diagnose: Sequence[str] | str = "all",
    custom: Iterable[CustomDiagnosis] = (),
) -> InstrumentationPlan:
    """Plan instrumentation for a preprocessed program.

    ``collect`` selects the signal-monitor targets: ``"outports"`` (root
    output ports plus anything feeding a Scope/Display), ``"all"`` (every
    actor), or an explicit list of actor paths.  ``diagnose`` selects the
    diagnosis targets: ``"all"`` (every actor with applicable kinds) or an
    explicit path list.
    """
    points = enumerate_points(prog)
    plan = InstrumentationPlan(
        points=points, coverage_enabled=coverage, diagnostics_enabled=diagnostics
    )

    collect_paths = _resolve_collect(prog, collect)
    diagnose_paths = _resolve_paths(prog, diagnose)
    custom_by_path: dict[str, list[CustomDiagnosis]] = {}
    known_paths = {fa.path for fa in prog.actors}
    for diag in custom:
        if diag.actor_path not in known_paths:
            raise ValidationError(
                f"custom diagnosis targets unknown actor {diag.actor_path!r}"
            )
        custom_by_path.setdefault(diag.actor_path, []).append(diag)

    # Algorithm 1's traversal: actors in execution order (flat order is
    # already deterministic and the ids come from the shared layout).
    for fa in prog.actors:
        spec = get_spec(fa.block_type)
        inst = ActorInstrumentation(actor_index=fa.index, path=fa.path)
        if coverage:
            inst.actor_point = points.actor_point[fa.index]
            if spec.is_branch:
                inst.condition_base = points.condition_base[fa.index]
            if spec.boolean_logic:
                inst.decision_base = points.decision_base[fa.index]
            if fa.index in points.mcdc_base:
                inst.mcdc_base = points.mcdc_base[fa.index]
                inst.logic_op = fa.actor.operator
        inst.collect = fa.path in collect_paths
        if diagnostics and (diagnose_paths is None or fa.path in diagnose_paths):
            inst.diagnose_kinds = applicable_kinds(fa)
        inst.custom = tuple(custom_by_path.get(fa.path, ()))
        plan.actors.append(inst)

    if diagnostics:
        plan.static_warnings = static_downcast_warnings(prog)
    return plan


def _resolve_collect(prog: FlatProgram, collect: Sequence[str] | str) -> set[str]:
    if collect == "all":
        return {fa.path for fa in prog.actors}
    if collect == "outports":
        paths = {binding.path for binding in prog.outports}
        # Anything feeding a Scope/Display is also monitored.
        for fa in prog.actors:
            if fa.block_type in ("Scope", "Display"):
                for sid in fa.input_sids:
                    producer = prog.signals[sid].producer
                    if producer is not None:
                        paths.add(prog.actors[producer].path)
        return paths
    if isinstance(collect, str):
        raise ValidationError(f"unknown collect selector {collect!r}")
    return _check_paths(prog, collect)


def _resolve_paths(
    prog: FlatProgram, selector: Sequence[str] | str
) -> Optional[set[str]]:
    """None means "no restriction" (every actor with applicable kinds)."""
    if selector == "all":
        return None
    if isinstance(selector, str):
        raise ValidationError(f"unknown diagnose selector {selector!r}")
    return _check_paths(prog, selector)


def _check_paths(prog: FlatProgram, paths: Sequence[str]) -> set[str]:
    known = {fa.path for fa in prog.actors}
    unknown = [p for p in paths if p not in known]
    if unknown:
        raise ValidationError(f"unknown actor paths: {unknown}")
    return set(paths)

"""Simulation jobs: one seeded run, executed with timeout and retry.

A :class:`SimulationJob` is the unit of work the parallel runner fans
out: a preprocessed program, a stimuli seed, and the simulation options.
:func:`run_job` executes one job and always returns a structured
:class:`JobResult` — outcome (``ok``/``timeout``/``failed``), the number
of attempts it took, and per-phase wall timings (codegen / compile /
execute / parse for the AccMoS engine) — instead of letting exceptions
tear down a whole campaign wave.

Retry policy: transient failures (a compiler race on a shared tmpfs, an
OOM-killed child — anything raising ``CompilationError`` or
``SimulationError``) are retried up to ``retries`` times with
exponential backoff.  A wall-clock timeout is *not* transient — the next
attempt would burn the same budget — so it is reported immediately as
``timeout``.

Batching: AccMoS jobs that share a program and structural options can
run *many cases per process* on one reused binary (the compile-once /
run-many path).  :func:`plan_batches` partitions a job list into such
groups (capped at ``batch_size``) and :func:`run_job_batch` executes one
group — one ``compile_model`` + one ``run_batch`` — still returning one
:class:`JobResult` per job.  Anything that breaks mid-batch falls back
to the per-job path, so batching can only change speed, not outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro import telemetry
from repro.engines.base import SimulationOptions, SimulationResult
from repro.model.errors import (
    CompilationError,
    SimulationError,
    SimulationTimeout,
)
from repro.schedule.program import FlatProgram
from repro.stimuli.base import Stimulus

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache

OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_FAILED = "failed"

# Phase keys every JobResult.timings may carry.
PHASES = ("codegen", "compile", "execute", "parse")


@dataclass(frozen=True)
class SimulationJob:
    """One seeded simulation to run."""

    prog: FlatProgram
    seed: int = 1
    engine: str = "accmos"
    options: Optional[SimulationOptions] = None
    # Explicit stimuli override the seed-derived default streams.
    stimuli: Optional[Mapping[str, Stimulus]] = None
    label: str = ""

    def resolved_stimuli(self) -> Mapping[str, Stimulus]:
        if self.stimuli is not None:
            return self.stimuli
        from repro.stimuli.generators import default_stimuli

        return default_stimuli(self.prog, seed=self.seed)

    def resolved_options(self) -> SimulationOptions:
        return self.options if self.options is not None else SimulationOptions()


@dataclass
class JobResult:
    """What one job's execution produced, success or not."""

    seed: int
    label: str = ""
    outcome: str = OUTCOME_FAILED
    attempts: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False)
    cache_hit: bool = False
    # Process-pool workers ship their per-job artifact-cache counter
    # deltas ({hits, misses, evictions}) and telemetry payload (spans +
    # metrics snapshot) back here; ``run_jobs`` folds both into the
    # parent.  None in thread/inline mode, where state is already shared.
    cache_stats: Optional[dict] = None
    telemetry: Optional[dict] = field(default=None, repr=False)
    # Warm-server pool counter deltas (spawns/reuses/restarts/retired_*)
    # shipped the same way from process-mode workers; folded into the
    # campaign's server stats.  None in thread/inline mode.
    server_stats: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


def _transient(exc: BaseException) -> bool:
    """Worth another attempt?  Timeouts are not — same budget, same end."""
    if isinstance(exc, SimulationTimeout):
        return False
    return isinstance(exc, (CompilationError, SimulationError, OSError))


def run_job(
    job: SimulationJob,
    *,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
    _sleep=time.sleep,
) -> JobResult:
    """Execute one job; never raises for run failures.

    ``retries`` bounds the *extra* attempts after the first; backoff
    doubles per retry starting at ``backoff_seconds``.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    out = JobResult(seed=job.seed, label=job.label or f"seed-{job.seed}")
    options = job.resolved_options()
    stimuli = job.resolved_stimuli()

    with telemetry.span(
        "runner.job", seed=job.seed, engine=job.engine, label=out.label,
        timeout_seconds=timeout_seconds,
    ) as job_span:
        _attempt_loop(
            job, stimuli, options, out,
            cache=cache, timeout_seconds=timeout_seconds,
            retries=retries, backoff_seconds=backoff_seconds, _sleep=_sleep,
        )
        job_span.set(
            outcome=out.outcome, attempts=out.attempts,
            cache_hit=out.cache_hit,
        )
    telemetry.counter_inc(f"runner.jobs.{out.outcome}")
    if out.attempts > 1:
        telemetry.counter_inc("runner.retries", out.attempts - 1)
    if out.outcome == OUTCOME_TIMEOUT:
        telemetry.counter_inc("runner.timeouts")
    return out


def _attempt_loop(
    job: SimulationJob,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    out: JobResult,
    *,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    _sleep,
) -> None:
    """Mutate ``out`` through up to ``retries + 1`` attempts."""
    for attempt in range(retries + 1):
        out.attempts = attempt + 1
        try:
            out.result = _run_once(
                job, stimuli, options, out.timings,
                cache=cache, timeout_seconds=timeout_seconds,
            )
            out.outcome = OUTCOME_OK
            out.error = None
            out.exception = None
            out.cache_hit = bool(out.result.extra.get("cache_hit", False))
            return
        except Exception as exc:  # recorded, classified below
            out.error = f"{type(exc).__name__}: {exc}"
            out.exception = exc
            if isinstance(exc, SimulationTimeout):
                out.outcome = OUTCOME_TIMEOUT
                return
            if not _transient(exc) or attempt == retries:
                out.outcome = OUTCOME_FAILED
                return
            _sleep(backoff_seconds * (2**attempt))


def _run_once(
    job: SimulationJob,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    timings: dict[str, float],
    *,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
) -> SimulationResult:
    if job.engine == "accmos":
        from repro.engines.accmos import run_accmos

        result = run_accmos(
            job.prog, stimuli, options,
            cache=cache,
            timeout_seconds=timeout_seconds,
        )
        timings.update(
            codegen=result.extra.get("generate_seconds", 0.0),
            compile=result.extra.get("compile_seconds", 0.0),
            execute=result.extra.get("execute_seconds", 0.0),
            parse=result.extra.get("parse_seconds", 0.0),
        )
        return result

    # Interpreted engines run in-process: one "execute" phase, and the
    # wall-clock timeout cannot be enforced from outside the GIL.
    from repro.engines.api import simulate

    start = time.perf_counter()
    result = simulate(job.prog, stimuli, engine=job.engine, options=options)
    timings["execute"] = time.perf_counter() - start
    return result


# ----------------------------------------------------------------------
# batched execution (compile-once / run-many)
# ----------------------------------------------------------------------
def batch_key(job: SimulationJob) -> Optional[tuple]:
    """The grouping key under which jobs may share one compiled binary,
    or None when the job must run on the per-job path (non-AccMoS
    engine, or a custom stimulus without a runtime descriptor).

    Jobs with equal keys have the same program and the same *structural*
    options — the two inputs the reusable binary is specialized on; the
    per-case inputs (stimuli, steps, time budget) are free to differ.
    """
    if job.engine != "accmos":
        return None
    from repro.codegen.descriptor import descriptors_for
    from repro.engines.accmos import _structural_fingerprint

    if descriptors_for(job.prog, job.resolved_stimuli()) is None:
        return None
    return (id(job.prog), _structural_fingerprint(job.resolved_options()))


def plan_batches(
    jobs: "list[SimulationJob]", batch_size: int
) -> "list[list[int]]":
    """Partition job indices into dispatch chunks of at most
    ``batch_size`` same-key jobs; unbatchable jobs become singleton
    chunks.  Chunks are ordered by their first job so a sequential
    dispatch still roughly follows submission order.
    """
    chunks: list[list[int]] = []
    open_chunk: dict[tuple, list[int]] = {}
    for index, job in enumerate(jobs):
        key = batch_key(job) if batch_size > 1 else None
        if key is None:
            chunks.append([index])
            continue
        chunk = open_chunk.get(key)
        if chunk is None:
            chunk = []
            chunks.append(chunk)
            open_chunk[key] = chunk
        chunk.append(index)
        if len(chunk) >= batch_size:
            del open_chunk[key]
    return chunks


def run_job_batch(
    jobs: "list[SimulationJob]",
    *,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
    server_pool=None,
    inproc: bool = False,
    _sleep=time.sleep,
) -> "list[JobResult]":
    """Execute one same-key group of jobs on a single compiled binary.

    One ``compile_model`` (retried on transient compiler failures) and
    one multi-case process invocation serve the whole group.  Per-case
    deadline trips become ``timeout`` outcomes without disturbing the
    other cases.  If anything else goes wrong mid-batch, the whole group
    falls back to the per-job :func:`run_job` path — batching can change
    throughput, never results.

    With ``server_pool`` (a :class:`~repro.runner.servers.ServerPool`)
    the group is streamed through a warm ``--serve`` process instead of
    spawning a fresh one.  With ``inproc`` the group runs inside a
    loaded shared library first — the top rung of the fallback ladder
    (inproc → server stream → spawn-per-batch → per-job); the model is
    then compiled ``-shared`` eagerly so an all-inproc campaign costs
    one compiler invocation and zero process spawns.
    """
    if len(jobs) == 1 and not inproc:
        return [
            run_job(
                jobs[0], cache=cache, timeout_seconds=timeout_seconds,
                retries=retries, backoff_seconds=backoff_seconds,
                _sleep=_sleep,
            )
        ]
    if inproc and batch_key(jobs[0]) is None:
        # Not an inproc-capable group (wrong engine / baked stimuli).
        return [
            run_job(
                job, cache=cache, timeout_seconds=timeout_seconds,
                retries=retries, backoff_seconds=backoff_seconds,
                _sleep=_sleep,
            )
            for job in jobs
        ]
    from repro.engines.accmos import compile_model

    def _fallback() -> "list[JobResult]":
        return [
            run_job(
                job, cache=cache, timeout_seconds=timeout_seconds,
                retries=retries, backoff_seconds=backoff_seconds,
                _sleep=_sleep,
            )
            for job in jobs
        ]

    with telemetry.span(
        "runner.job_batch", jobs=len(jobs),
        seeds=[job.seed for job in jobs],
    ) as batch_span:
        model = None
        for attempt in range(retries + 1):
            try:
                model = compile_model(
                    jobs[0].prog, jobs[0].resolved_options(), cache=cache,
                    artifact="shared" if inproc else "binary",
                )
                break
            except Exception as exc:
                if not _transient(exc) or attempt == retries:
                    batch_span.set(outcome="compile_failed")
                    return _fallback()
                _sleep(backoff_seconds * (2**attempt))

        case_list = [
            (job.resolved_stimuli(), job.resolved_options())
            for job in jobs
        ]
        outcomes = None
        if inproc and model.inproc_available:
            try:
                # run_inproc quarantines and finishes on the --serve
                # rung by itself on a library fault; an exception here
                # (e.g. stimuli rejected by _normalize) drops a rung.
                outcomes = model.run_inproc(
                    case_list, timeout_seconds=timeout_seconds
                )
                batch_span.set(inproc=True)
            except Exception:
                telemetry.counter_inc("engine.inproc.fallbacks")
                outcomes = None
        if outcomes is None and server_pool is not None:
            try:
                outcomes = server_pool.run_batch(
                    model, case_list, timeout_seconds=timeout_seconds
                )
                batch_span.set(served=True)
            except Exception:
                # run_stream already degrades to spawn-per-batch on
                # crashes; getting here means even acquiring/spawning a
                # server failed — drop a rung on the ladder.
                telemetry.counter_inc("runner.server_fallbacks")
                outcomes = None
        if outcomes is None:
            try:
                outcomes = model.run_batch(
                    case_list, timeout_seconds=timeout_seconds
                )
            except Exception:
                # Frame mismatch, a wedged binary hitting the process-
                # level backstop, a crash — re-run the group case by
                # case.
                batch_span.set(outcome="fallback")
                telemetry.counter_inc("runner.batch_fallbacks")
                return _fallback()
        batch_span.set(outcome="ok", cache_hit=model.cache_hit)

    return results_from_outcomes(jobs, outcomes, model)


def results_from_outcomes(
    jobs: "list[SimulationJob]", outcomes, model
) -> "list[JobResult]":
    """Convert one group's batch outcomes into per-job
    :class:`JobResult`\\ s, preserving the timing convention shared by
    every batched dispatcher: the group compiled (or cache-resolved)
    exactly once, so the first successful case carries the codegen /
    compile cost and the rest reuse the binary — a cache hit by
    construction."""
    results: list[JobResult] = []
    first_ok = True
    for job, outcome in zip(jobs, outcomes):
        out = JobResult(seed=job.seed, label=job.label or f"seed-{job.seed}")
        out.attempts = 1
        if isinstance(outcome, SimulationTimeout):
            out.outcome = OUTCOME_TIMEOUT
            out.error = f"{type(outcome).__name__}: {outcome}"
            out.exception = outcome
            telemetry.counter_inc("runner.timeouts")
        else:
            out.outcome = OUTCOME_OK
            out.result = outcome
            if first_ok:
                out.timings.update(
                    codegen=model.generate_seconds,
                    compile=model.compile_seconds,
                )
                out.cache_hit = model.cache_hit
                first_ok = False
            else:
                out.timings.update(codegen=0.0, compile=0.0)
                out.cache_hit = True
            out.timings.update(
                execute=outcome.extra.get("execute_seconds", 0.0),
                parse=outcome.extra.get("parse_seconds", 0.0),
            )
        telemetry.counter_inc(f"runner.jobs.{out.outcome}")
        results.append(out)
    return results

"""Simulation jobs: one seeded run, executed with timeout and retry.

A :class:`SimulationJob` is the unit of work the parallel runner fans
out: a preprocessed program, a stimuli seed, and the simulation options.
:func:`run_job` executes one job and always returns a structured
:class:`JobResult` — outcome (``ok``/``timeout``/``failed``), the number
of attempts it took, and per-phase wall timings (codegen / compile /
execute / parse for the AccMoS engine) — instead of letting exceptions
tear down a whole campaign wave.

Retry policy: transient failures (a compiler race on a shared tmpfs, an
OOM-killed child — anything raising ``CompilationError`` or
``SimulationError``) are retried up to ``retries`` times with
exponential backoff.  A wall-clock timeout is *not* transient — the next
attempt would burn the same budget — so it is reported immediately as
``timeout``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro import telemetry
from repro.engines.base import SimulationOptions, SimulationResult
from repro.model.errors import (
    CompilationError,
    SimulationError,
    SimulationTimeout,
)
from repro.schedule.program import FlatProgram
from repro.stimuli.base import Stimulus

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache

OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_FAILED = "failed"

# Phase keys every JobResult.timings may carry.
PHASES = ("codegen", "compile", "execute", "parse")


@dataclass(frozen=True)
class SimulationJob:
    """One seeded simulation to run."""

    prog: FlatProgram
    seed: int = 1
    engine: str = "accmos"
    options: Optional[SimulationOptions] = None
    # Explicit stimuli override the seed-derived default streams.
    stimuli: Optional[Mapping[str, Stimulus]] = None
    label: str = ""

    def resolved_stimuli(self) -> Mapping[str, Stimulus]:
        if self.stimuli is not None:
            return self.stimuli
        from repro.stimuli.generators import default_stimuli

        return default_stimuli(self.prog, seed=self.seed)

    def resolved_options(self) -> SimulationOptions:
        return self.options if self.options is not None else SimulationOptions()


@dataclass
class JobResult:
    """What one job's execution produced, success or not."""

    seed: int
    label: str = ""
    outcome: str = OUTCOME_FAILED
    attempts: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False)
    cache_hit: bool = False
    # Process-pool workers ship their per-job artifact-cache counter
    # deltas ({hits, misses, evictions}) and telemetry payload (spans +
    # metrics snapshot) back here; ``run_jobs`` folds both into the
    # parent.  None in thread/inline mode, where state is already shared.
    cache_stats: Optional[dict] = None
    telemetry: Optional[dict] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


def _transient(exc: BaseException) -> bool:
    """Worth another attempt?  Timeouts are not — same budget, same end."""
    if isinstance(exc, SimulationTimeout):
        return False
    return isinstance(exc, (CompilationError, SimulationError, OSError))


def run_job(
    job: SimulationJob,
    *,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
    _sleep=time.sleep,
) -> JobResult:
    """Execute one job; never raises for run failures.

    ``retries`` bounds the *extra* attempts after the first; backoff
    doubles per retry starting at ``backoff_seconds``.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    out = JobResult(seed=job.seed, label=job.label or f"seed-{job.seed}")
    options = job.resolved_options()
    stimuli = job.resolved_stimuli()

    with telemetry.span(
        "runner.job", seed=job.seed, engine=job.engine, label=out.label,
        timeout_seconds=timeout_seconds,
    ) as job_span:
        _attempt_loop(
            job, stimuli, options, out,
            cache=cache, timeout_seconds=timeout_seconds,
            retries=retries, backoff_seconds=backoff_seconds, _sleep=_sleep,
        )
        job_span.set(
            outcome=out.outcome, attempts=out.attempts,
            cache_hit=out.cache_hit,
        )
    telemetry.counter_inc(f"runner.jobs.{out.outcome}")
    if out.attempts > 1:
        telemetry.counter_inc("runner.retries", out.attempts - 1)
    if out.outcome == OUTCOME_TIMEOUT:
        telemetry.counter_inc("runner.timeouts")
    return out


def _attempt_loop(
    job: SimulationJob,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    out: JobResult,
    *,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    _sleep,
) -> None:
    """Mutate ``out`` through up to ``retries + 1`` attempts."""
    for attempt in range(retries + 1):
        out.attempts = attempt + 1
        try:
            out.result = _run_once(
                job, stimuli, options, out.timings,
                cache=cache, timeout_seconds=timeout_seconds,
            )
            out.outcome = OUTCOME_OK
            out.error = None
            out.exception = None
            out.cache_hit = bool(out.result.extra.get("cache_hit", False))
            return
        except Exception as exc:  # recorded, classified below
            out.error = f"{type(exc).__name__}: {exc}"
            out.exception = exc
            if isinstance(exc, SimulationTimeout):
                out.outcome = OUTCOME_TIMEOUT
                return
            if not _transient(exc) or attempt == retries:
                out.outcome = OUTCOME_FAILED
                return
            _sleep(backoff_seconds * (2**attempt))


def _run_once(
    job: SimulationJob,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    timings: dict[str, float],
    *,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
) -> SimulationResult:
    if job.engine == "accmos":
        from repro.engines.accmos import run_accmos

        result = run_accmos(
            job.prog, stimuli, options,
            cache=cache,
            timeout_seconds=timeout_seconds,
        )
        timings.update(
            codegen=result.extra.get("generate_seconds", 0.0),
            compile=result.extra.get("compile_seconds", 0.0),
            execute=result.extra.get("execute_seconds", 0.0),
            parse=result.extra.get("parse_seconds", 0.0),
        )
        return result

    # Interpreted engines run in-process: one "execute" phase, and the
    # wall-clock timeout cannot be enforced from outside the GIL.
    from repro.engines.api import simulate

    start = time.perf_counter()
    result = simulate(job.prog, stimuli, engine=job.engine, options=options)
    timings["execute"] = time.perf_counter() - start
    return result

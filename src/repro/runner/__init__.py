"""Parallel simulation-job runner with a compiled-artifact cache.

Three cooperating pieces:

* :mod:`repro.runner.cache` — persistent, content-addressed cache of
  compiled AccMoS binaries (key: SHA-256 of source + compiler + flags);
  repeated simulations of an unchanged model skip gcc entirely;
* :mod:`repro.runner.jobs` / :mod:`repro.runner.pool` — seeded
  :class:`SimulationJob` specs executed across a thread/process pool
  with per-job timeout, bounded retry with backoff, and structured
  :class:`JobResult` records (outcome, attempts, per-phase timings);
* :mod:`repro.runner.servers` — warm-process pool of persistent
  ``--serve`` simulation servers, keyed by compiled artifact, reused
  across batches and waves (idle-TTL / LRU retirement);
* :mod:`repro.runner.costmodel` / :mod:`repro.runner.inproc_threads` —
  cost-aware case scheduling (predicted ``steps × actors`` cost, LPT
  packing) feeding the thread-parallel in-process dispatcher behind
  ``run_jobs(mode="inproc-threads")``;
* :mod:`repro.runner.campaign` — the wave-dispatched campaign core
  whose parallel merges are byte-identical to serial runs.
"""

from repro.runner.cache import (
    ArtifactCache,
    CacheEntry,
    CacheStats,
    cache_key,
    default_cache,
    default_cache_dir,
    set_default_cache,
)
from repro.runner.jobs import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    JobResult,
    SimulationJob,
    run_job,
)
from repro.runner.costmodel import CaseCostModel, default_cost_model, pack_shards
from repro.runner.pool import default_workers, run_jobs
from repro.runner.servers import ServerPool

__all__ = [
    "ServerPool",
    "CaseCostModel",
    "default_cost_model",
    "pack_shards",
    "ArtifactCache",
    "CacheEntry",
    "CacheStats",
    "cache_key",
    "default_cache",
    "default_cache_dir",
    "set_default_cache",
    "SimulationJob",
    "JobResult",
    "run_job",
    "run_jobs",
    "default_workers",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "OUTCOME_FAILED",
]

"""Parallel simulation-job runner with a compiled-artifact cache.

Three cooperating pieces:

* :mod:`repro.runner.cache` — persistent, content-addressed cache of
  compiled AccMoS binaries (key: SHA-256 of source + compiler + flags);
  repeated simulations of an unchanged model skip gcc entirely;
* :mod:`repro.runner.jobs` / :mod:`repro.runner.pool` — seeded
  :class:`SimulationJob` specs executed across a thread/process pool
  with per-job timeout, bounded retry with backoff, and structured
  :class:`JobResult` records (outcome, attempts, per-phase timings);
* :mod:`repro.runner.servers` — warm-process pool of persistent
  ``--serve`` simulation servers, keyed by compiled artifact, reused
  across batches and waves (idle-TTL / LRU retirement);
* :mod:`repro.runner.costmodel` / :mod:`repro.runner.inproc_threads` —
  cost-aware case scheduling (predicted ``steps × actors`` cost, LPT
  packing, coefficients persisted per (engine, compile key) and
  warm-started across campaigns) feeding the thread-parallel in-process
  dispatcher behind ``run_jobs(mode="inproc-threads")``;
* :mod:`repro.runner.scheduler` — the streaming, work-conserving
  dispatcher (bounded in-flight window, seed-ordered reorder buffer,
  cost-aware admission, auto-tuned batching) behind
  ``run_jobs(streaming=True)`` and the default campaign path;
* :mod:`repro.runner.campaign` — the campaign core whose parallel
  merges are byte-identical to serial runs.
"""

from repro.runner.cache import (
    ArtifactCache,
    CacheEntry,
    CacheStats,
    cache_key,
    default_cache,
    default_cache_dir,
    set_default_cache,
)
from repro.runner.jobs import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    JobResult,
    SimulationJob,
    run_job,
)
from repro.runner.costmodel import (
    CaseCostModel,
    CostModelStore,
    cost_key,
    default_cost_model,
    default_cost_store,
    pack_shards,
    set_default_cost_store,
)
from repro.runner.pool import default_workers, run_jobs
from repro.runner.scheduler import (
    ReorderBuffer,
    StreamScheduler,
    ThroughputController,
    run_jobs_streaming,
)
from repro.runner.servers import ServerPool

__all__ = [
    "ServerPool",
    "CaseCostModel",
    "CostModelStore",
    "cost_key",
    "default_cost_model",
    "default_cost_store",
    "set_default_cost_store",
    "pack_shards",
    "ReorderBuffer",
    "StreamScheduler",
    "ThroughputController",
    "run_jobs_streaming",
    "ArtifactCache",
    "CacheEntry",
    "CacheStats",
    "cache_key",
    "default_cache",
    "default_cache_dir",
    "set_default_cache",
    "SimulationJob",
    "JobResult",
    "run_job",
    "run_jobs",
    "default_workers",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "OUTCOME_FAILED",
]

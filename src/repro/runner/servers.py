"""Warm-server pool: persistent ``--serve`` processes reused across
batches and jobs.

A campaign repeatedly executes cases of the same compiled artifact; the
spawn-per-batch path pays one process startup per dispatch.  The
:class:`ServerPool` keeps the ``--serve`` processes
(:class:`~repro.engines.accmos.ModelServer`) warm between dispatches,
keyed by the artifact — the binary's content-addressed cache path — so
the steady state is **zero** respawns: one spawn per (worker × artifact)
for the whole campaign.

Lifecycle: a server is *checked out* for the duration of one streamed
batch (two threads never share a process), returned to the idle set
afterwards, and retired when it errors, when it sits idle past
``idle_ttl_seconds``, or when the idle set exceeds ``max_servers``
(least-recently-used first).  All transitions are counted; the counters
surface in ``campaign --timings`` and ship across process-pool
boundaries via :attr:`JobResult.server_stats`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro import telemetry

if TYPE_CHECKING:
    from repro.engines.accmos import BatchCase, CompiledModel, ModelServer

_COUNTERS = (
    "spawns",
    "reuses",
    "restarts",
    "retired_idle",
    "retired_lru",
    "retired_error",
    "flapped_artifacts",
)

# An artifact whose warm servers restarted this many times is *flapping*:
# every stream it serves is paying restart + resubmission freight that
# the observed execute seconds never show, so the pool demotes its
# predicted cost (see ServerPool.note_restarts).
FLAP_RESTART_THRESHOLD = 3


class ServerPool:
    """A bounded pool of warm simulation servers, keyed by artifact.

    Thread-safe: worker threads check servers out under a lock and run
    their streams outside it.  ``_clock`` is injectable for TTL tests.
    """

    def __init__(
        self,
        *,
        max_servers: int = 8,
        idle_ttl_seconds: float = 300.0,
        cost_store=None,
        flap_restart_threshold: int = FLAP_RESTART_THRESHOLD,
        flap_penalty: Optional[float] = None,
        _clock=time.monotonic,
    ) -> None:
        if max_servers < 1:
            raise ValueError("max_servers must be at least 1")
        if flap_restart_threshold < 1:
            raise ValueError("flap_restart_threshold must be at least 1")
        self.max_servers = max_servers
        self.idle_ttl_seconds = idle_ttl_seconds
        self._clock = _clock
        self._lock = threading.RLock()
        # Insertion order is LRU order: entries re-inserted on release.
        # Keyed by (artifact, id(server)) so one artifact can have
        # several idle servers (one per worker thread at peak).
        self._idle: "OrderedDict[tuple[str, int], tuple[ModelServer, float]]" = (
            OrderedDict()
        )
        self._closed = False
        self.counters: dict[str, int] = {name: 0 for name in _COUNTERS}
        # Flap detection: reuse/restart counters *per artifact*, feeding
        # cost admission.  When an artifact's restarts cross the
        # threshold, its CaseCostModel in ``cost_store`` is penalized so
        # the scheduler routes its cases to the capped long slots
        # instead of letting optimistic predictions head-of-line block
        # short cases of healthy artifacts.
        self._cost_store = cost_store
        self.flap_restart_threshold = flap_restart_threshold
        self._flap_penalty = flap_penalty
        self._artifact_counters: "dict[str, dict[str, int]]" = {}
        self._flapped: "set[str]" = set()

    # -- bookkeeping -----------------------------------------------------
    @staticmethod
    def artifact_key(model: "CompiledModel") -> str:
        """The pooling key: the source's (content-addressed) path — the
        executable may not be materialized yet on inproc-first handles."""
        source = getattr(model.compiled, "source", None)
        return str(source if source is not None else model.compiled.binary)

    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] += value

    def _count_artifact(self, key: str, name: str, value: int = 1) -> None:
        with self._lock:
            counters = self._artifact_counters.setdefault(
                key, {"spawns": 0, "reuses": 0, "restarts": 0}
            )
            counters[name] += value

    # -- flap detection --------------------------------------------------
    def restart_count(self, artifact_key: str) -> int:
        """Total restarts this pool has seen for one artifact."""
        with self._lock:
            counters = self._artifact_counters.get(artifact_key)
            return counters["restarts"] if counters else 0

    def artifact_stats(self) -> "dict[str, dict[str, int]]":
        """Per-artifact spawn/reuse/restart counters (copy)."""
        with self._lock:
            return {
                key: dict(counters)
                for key, counters in self._artifact_counters.items()
            }

    def note_restarts(
        self, artifact_key: str, restarts: int, cost_key: Optional[str] = None
    ) -> bool:
        """Record stream-level restarts for an artifact; returns True the
        moment the artifact crosses the flap threshold.

        Crossing the threshold penalizes the artifact's cost model (when
        the pool holds a ``cost_store`` and the caller knows the cost
        key), demoting its predicted cost so admission routes its cases
        to the capped long slots.  The penalty fires once per artifact —
        it ratchets, so repeated flapping doesn't multiply forever.
        """
        if restarts <= 0:
            return False
        self._count_artifact(artifact_key, "restarts", restarts)
        with self._lock:
            if artifact_key in self._flapped:
                return False
            total = self._artifact_counters[artifact_key]["restarts"]
            if total < self.flap_restart_threshold:
                return False
            self._flapped.add(artifact_key)
            self.counters["flapped_artifacts"] += 1
        telemetry.counter_inc("runner.server.flapped_artifacts")
        if self._cost_store is not None and cost_key is not None:
            if self._flap_penalty is None:
                self._cost_store.penalize(cost_key)
            else:
                self._cost_store.penalize(cost_key, self._flap_penalty)
        return True

    @staticmethod
    def _cost_key_for(model: "CompiledModel") -> Optional[str]:
        from repro.runner.costmodel import cost_key

        try:
            return cost_key("accmos", model.prog, model.options)
        except Exception:
            return None  # prediction demotion is best-effort

    def _sweep_idle_locked(self, now: float) -> None:
        if self.idle_ttl_seconds is None:
            return
        stale = [
            entry_key
            for entry_key, (_, last_used) in self._idle.items()
            if now - last_used > self.idle_ttl_seconds
        ]
        for entry_key in stale:
            server, _ = self._idle.pop(entry_key)
            self._count("retired_idle")
            telemetry.counter_inc("runner.server.retired_idle")
            server.close()

    # -- checkout / checkin ----------------------------------------------
    def acquire(self, model: "CompiledModel") -> "ModelServer":
        """Check out a warm server for ``model``, spawning on a miss.

        The caller owns the server until :meth:`release` (or
        :meth:`retire` on error); it is never handed to two callers at
        once.
        """
        key = self.artifact_key(model)
        with self._lock:
            if self._closed:
                raise RuntimeError("acquire on a closed ServerPool")
            now = self._clock()
            self._sweep_idle_locked(now)
            for entry_key, (server, _) in self._idle.items():
                if entry_key[0] == key:
                    del self._idle[entry_key]
                    if server.alive:
                        self._count("reuses")
                        self._count_artifact(key, "reuses")
                        telemetry.counter_inc("runner.server.reuses")
                        return server
                    # Died while idle — retire and fall through to spawn.
                    self._count("retired_error")
                    telemetry.counter_inc("runner.server.retired_error")
                    server.kill()
                    break
        # Spawn outside the lock: process startup must not serialize the
        # other workers.  ModelServer books runner.server.spawns itself.
        server = model.serve()
        self._count("spawns")
        self._count_artifact(key, "spawns")
        return server

    def release(self, model: "CompiledModel", server: "ModelServer") -> None:
        """Return a healthy server to the idle set (it becomes the
        most-recently-used entry); over-bound entries are retired LRU-
        first, dead ones unconditionally."""
        if not server.alive:
            self.retire(server)
            return
        evicted: "list[ModelServer]" = []
        with self._lock:
            if self._closed:
                evicted.append(server)
            else:
                key = (self.artifact_key(model), id(server))
                self._idle[key] = (server, self._clock())
                self._idle.move_to_end(key)
                while len(self._idle) > self.max_servers:
                    _, (old, _) = self._idle.popitem(last=False)
                    self._count("retired_lru")
                    telemetry.counter_inc("runner.server.retired_lru")
                    evicted.append(old)
        for old in evicted:
            old.close()

    def retire(self, server: "ModelServer") -> None:
        """Drop a server that errored (or died) without reinsertion."""
        with self._lock:
            self._count("retired_error")
        telemetry.counter_inc("runner.server.retired_error")
        server.kill()

    # -- execution helper ------------------------------------------------
    def run_batch(
        self,
        model: "CompiledModel",
        cases: "Sequence[BatchCase]",
        *,
        timeout_seconds: Optional[float] = None,
    ):
        """Stream ``cases`` through a pooled warm server of ``model``.

        Same contract as :meth:`CompiledModel.run_batch` — one outcome
        per case in order, per-case deadline trips as
        :class:`SimulationTimeout` entries — but with zero spawns in the
        steady state.  Restarts performed by the stream's crash recovery
        are folded into the pool counters; a server that ends the stream
        dead (the stream fell back to spawn-per-batch) is retired.
        """
        server = self.acquire(model)
        restarts_before = server.restarts
        try:
            outcomes = list(
                model.run_stream(
                    cases, timeout_seconds=timeout_seconds, server=server
                )
            )
        except BaseException:
            self.retire(server)
            raise
        restarts = server.restarts - restarts_before
        with self._lock:
            self._count("restarts", restarts)
        if restarts:
            # Feed the flap detector: an artifact whose streams keep
            # restarting gets its predicted cost demoted for admission.
            self.note_restarts(
                self.artifact_key(model),
                restarts,
                cost_key=self._cost_key_for(model),
            )
        self.release(model, server)
        return outcomes

    # -- shutdown / stats ------------------------------------------------
    def close(self) -> None:
        """Retire every idle server.  Checked-out servers are retired by
        their holders on release (the pool is marked closed)."""
        with self._lock:
            self._closed = True
            servers = [server for server, _ in self._idle.values()]
            self._idle.clear()
        for server in servers:
            server.close()

    def __enter__(self) -> "ServerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def active(self) -> int:
        with self._lock:
            return len(self._idle)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def pop_stats(self) -> dict[str, int]:
        """Counters since the last pop (delta semantics, for shipping
        across a process boundary)."""
        with self._lock:
            out = dict(self.counters)
            for name in self.counters:
                self.counters[name] = 0
        return out


def merge_server_stats(
    into: "Optional[dict[str, int]]", stats: "Optional[dict[str, int]]"
) -> "Optional[dict[str, int]]":
    """Fold one counters dict into an accumulator (either may be None)."""
    if not stats:
        return into
    if into is None:
        into = {name: 0 for name in _COUNTERS}
    for name, value in stats.items():
        into[name] = into.get(name, 0) + value
    return into


# ----------------------------------------------------------------------
# per-worker-process pool (process-mode run_jobs)
# ----------------------------------------------------------------------
_worker_pool: Optional[ServerPool] = None
_worker_pool_lock = threading.Lock()


def worker_pool() -> ServerPool:
    """The process-local pool used by process-mode workers.

    Created on first use and closed at interpreter exit; chunks executed
    by the same worker process share it, so warm servers survive from
    one chunk to the next within a wave.
    """
    global _worker_pool
    with _worker_pool_lock:
        if _worker_pool is None:
            import atexit

            _worker_pool = ServerPool()
            atexit.register(_worker_pool.close)
        return _worker_pool

"""Fan simulation jobs out across a worker pool.

The heavy phases of an AccMoS job — the gcc invocation and the compiled
binary's run — happen in child processes, during which CPython releases
the GIL, so a *thread* pool already uses every core and can share one
in-process :class:`~repro.runner.cache.ArtifactCache` (hit/miss counters
included).  That makes ``mode="thread"`` the default.  ``mode="process"``
trades shared state for full interpreter isolation (useful when the
per-job Python work — codegen, result parsing — dominates); jobs and
results cross the process boundary by pickling, and each worker resolves
the cache from its root path.  What the workers can't share, they ship
back: every process-mode :class:`JobResult` carries the worker's
artifact-cache counter deltas (folded into the parent's handle here, so
``cache.stats()`` counts the whole pool's traffic) and — when telemetry
is enabled — the worker's spans and metrics snapshot, absorbed into the
parent session with job spans re-parented under this dispatch's
``runner.run_jobs`` span.

Results come back in submission order regardless of completion order —
the property the deterministic campaign merge builds on.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro import telemetry
from repro.runner.jobs import (
    JobResult,
    SimulationJob,
    batch_key,
    plan_batches,
    run_job,
    run_job_batch,
)

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache


def default_workers() -> int:
    return min(32, os.cpu_count() or 1)


def _run_job_in_process(
    job: SimulationJob,
    cache_root: Optional[str],
    max_bytes: Optional[int],
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    telemetry_on: bool = False,
) -> JobResult:
    """Process-pool entry point: rebuild the cache handle from its root.

    The handle is fresh per job, so its counters are exactly this job's
    hit/miss deltas — attached to the result for the parent to fold.
    With ``telemetry_on``, a fresh worker-local session records the
    job's spans/metrics and ships them back the same way.
    """
    session = telemetry.enable() if telemetry_on else None
    cache: "Union[ArtifactCache, None, bool]" = False
    if cache_root is not None:
        from repro.runner.cache import ArtifactCache

        cache = ArtifactCache(cache_root, max_bytes=max_bytes)
    try:
        result = run_job(
            job,
            cache=cache,
            timeout_seconds=timeout_seconds,
            retries=retries,
            backoff_seconds=backoff_seconds,
        )
    finally:
        if session is not None:
            telemetry.disable()
    if cache_root is not None:
        result.cache_stats = cache.counters()
    if session is not None:
        result.telemetry = session.export()
    return result


def _run_chunk_in_process(
    chunk: "list[SimulationJob]",
    cache_root: Optional[str],
    max_bytes: Optional[int],
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    telemetry_on: bool = False,
    serve: bool = False,
    inproc: bool = False,
) -> "list[JobResult]":
    """Process-pool entry point for a batched chunk of same-key jobs.

    The chunk's cache-counter deltas and telemetry payload ride back on
    its first result (the chunk is folded as one unit by the parent).
    With ``serve``, the chunk streams through the worker process's
    module-global warm-server pool — servers survive between chunks of
    the same worker — and the pool's counter deltas ride back the same
    way (``JobResult.server_stats``).
    """
    session = telemetry.enable() if telemetry_on else None
    cache: "Union[ArtifactCache, None, bool]" = False
    if cache_root is not None:
        from repro.runner.cache import ArtifactCache

        cache = ArtifactCache(cache_root, max_bytes=max_bytes)
    server_pool = None
    if serve:
        from repro.runner.servers import worker_pool

        server_pool = worker_pool()
    try:
        results = run_job_batch(
            chunk,
            cache=cache,
            timeout_seconds=timeout_seconds,
            retries=retries,
            backoff_seconds=backoff_seconds,
            server_pool=server_pool,
            inproc=inproc,
        )
    finally:
        if session is not None:
            telemetry.disable()
    if cache_root is not None and results:
        results[0].cache_stats = cache.counters()
    if session is not None and results:
        results[0].telemetry = session.export()
    if server_pool is not None and results:
        results[0].server_stats = server_pool.pop_stats()
    return results


def run_jobs(
    jobs: Sequence[SimulationJob],
    *,
    workers: Optional[int] = None,
    mode: str = "thread",
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
    batch_size: int = 1,
    serve: bool = False,
    server_pool=None,
    inproc: bool = False,
    streaming: bool = False,
    window: Optional[int] = None,
    adaptive: bool = False,
) -> list[JobResult]:
    """Execute every job; returns one :class:`JobResult` per job, in order.

    ``workers=None`` picks ``min(32, cpu_count)``; ``workers=1`` (or a
    single job) runs inline with no pool at all.  Individual job
    failures are *reported*, not raised — check ``JobResult.outcome``.

    ``batch_size > 1`` groups AccMoS jobs that share a program and
    structural options into multi-case batches of up to that many jobs,
    each batch served by one compiled binary and one process invocation
    (see :func:`repro.runner.jobs.run_job_batch`); results are still one
    per job, in submission order.

    ``serve`` streams batched chunks through warm ``--serve`` processes
    instead of spawning one per chunk (only meaningful with
    ``batch_size > 1``).  ``server_pool`` supplies a caller-owned
    :class:`~repro.runner.servers.ServerPool` that outlives this call —
    a campaign passes one so servers stay warm across waves; without it
    (and with ``serve``) a dispatch-local pool is created and closed on
    return.  In process mode each worker process keeps its own pool.

    ``inproc`` runs batched chunks inside the loaded shared library —
    the rung above ``serve`` on the ladder; the server pool still backs
    it up for quarantined models (only meaningful with
    ``batch_size > 1``).

    ``mode="inproc-threads"`` skips worker pools entirely: same-key jobs
    are grouped onto one shared :class:`CompiledModel` and run by
    ``workers`` threads holding private library instances inside *this*
    process (cost-model-packed shards, zero spawns, zero pickling); see
    :mod:`repro.runner.inproc_threads`.  ``batch_size``/``serve``/
    ``server_pool``/``inproc`` are ignored in this mode — grouping is
    unbounded and the fallback ladder engages on fault.

    ``streaming`` dispatches through the work-conserving
    :class:`~repro.runner.scheduler.StreamScheduler` instead of barrier
    fan-out: a bounded in-flight ``window`` of cases (default
    ``workers × batch_size``) refilled the moment capacity frees, with
    cost-aware admission and — with ``adaptive`` — auto-tuned batching.
    Results are identical either way; only wall-clock changes.
    """
    if mode not in ("thread", "process", "inproc-threads"):
        raise ValueError(
            "mode must be 'thread', 'process', or 'inproc-threads', "
            f"not {mode!r}"
        )
    workers = default_workers() if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    jobs = list(jobs)

    if streaming:
        from repro.runner.scheduler import run_jobs_streaming

        return run_jobs_streaming(
            jobs,
            workers=workers,
            mode=mode,
            window=window,
            batch_size=batch_size,
            adaptive=adaptive,
            cache=cache,
            timeout_seconds=timeout_seconds,
            retries=retries,
            backoff_seconds=backoff_seconds,
            serve=serve,
            inproc=inproc,
            server_pool=server_pool,
        )

    if mode == "inproc-threads":
        from repro.runner.inproc_threads import run_jobs_inproc_threads

        return run_jobs_inproc_threads(
            jobs,
            threads=workers,
            cache=cache,
            timeout_seconds=timeout_seconds,
            retries=retries,
            backoff_seconds=backoff_seconds,
        )

    kwargs = dict(
        cache=cache,
        timeout_seconds=timeout_seconds,
        retries=retries,
        backoff_seconds=backoff_seconds,
    )
    if batch_size > 1:
        return _run_jobs_batched(
            jobs, workers=workers, mode=mode, batch_size=batch_size,
            cache=cache, timeout_seconds=timeout_seconds, retries=retries,
            backoff_seconds=backoff_seconds, serve=serve or server_pool is not None,
            server_pool=server_pool, inproc=inproc,
        )
    if workers == 1 or len(jobs) <= 1:
        return [run_job(job, **kwargs) for job in jobs]

    n = min(workers, len(jobs))
    session = telemetry.active()
    with telemetry.span(
        "runner.run_jobs", jobs=len(jobs), workers=n, mode=mode
    ) as pool_span:
        pool_span_id = getattr(pool_span, "span_id", None)

        if mode == "process":
            from repro.runner.cache import default_cache

            resolved = default_cache() if cache is None else (cache or None)
            cache_root = str(resolved.root) if resolved is not None else None
            max_bytes = resolved.max_bytes if resolved is not None else None
            with ProcessPoolExecutor(max_workers=n) as pool:
                futures = [
                    pool.submit(
                        _run_job_in_process,
                        job, cache_root, max_bytes,
                        timeout_seconds, retries, backoff_seconds,
                        session is not None,
                    )
                    for job in jobs
                ]
                results = [f.result() for f in futures]
            for result in results:
                if resolved is not None and result.cache_stats:
                    resolved.absorb_counts(**result.cache_stats)
                if session is not None and result.telemetry:
                    session.absorb(
                        result.telemetry, parent_span_id=pool_span_id
                    )
                    result.telemetry = None  # folded; don't keep two copies
            return results

        tracer = session.tracer if session is not None else None

        def worker(job: SimulationJob) -> JobResult:
            # Worker threads have an empty span stack; adopt the
            # dispatching span so job spans nest under it.
            if tracer is None:
                return run_job(job, **kwargs)
            with tracer.adopt(pool_span_id):
                return run_job(job, **kwargs)

        with ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="accmos-job"
        ) as pool:
            futures = [pool.submit(worker, job) for job in jobs]
            return [f.result() for f in futures]


def _run_jobs_batched(
    jobs: "list[SimulationJob]",
    *,
    workers: int,
    mode: str,
    batch_size: int,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    serve: bool = False,
    server_pool=None,
    inproc: bool = False,
) -> list[JobResult]:
    """Chunked dispatch: same-key jobs batched onto shared binaries."""
    chunks = plan_batches(jobs, batch_size)
    # Thread/inline mode shares one warm-server pool across all chunks;
    # a caller-provided pool additionally survives this dispatch (the
    # campaign reuses servers across waves).  Process mode instead tells
    # each worker to use its process-local pool.
    own_pool = None
    if serve and mode != "process" and server_pool is None:
        from repro.runner.servers import ServerPool

        own_pool = server_pool = ServerPool(max_servers=max(workers * 2, 4))
    kwargs = dict(
        cache=cache,
        timeout_seconds=timeout_seconds,
        retries=retries,
        backoff_seconds=backoff_seconds,
        server_pool=server_pool if mode != "process" else None,
        inproc=inproc,
    )
    ordered: list[Optional[JobResult]] = [None] * len(jobs)

    def place(chunk: "list[int]", results: "list[JobResult]") -> None:
        for index, result in zip(chunk, results):
            ordered[index] = result

    try:
        if workers == 1 or len(chunks) <= 1:
            for chunk in chunks:
                place(
                    chunk, run_job_batch([jobs[i] for i in chunk], **kwargs)
                )
            return ordered  # type: ignore[return-value]
        return _run_jobs_batched_pooled(
            jobs, chunks, ordered, place,
            workers=workers, mode=mode, batch_size=batch_size,
            cache=cache, timeout_seconds=timeout_seconds,
            retries=retries, backoff_seconds=backoff_seconds,
            serve=serve, inproc=inproc, kwargs=kwargs,
        )
    finally:
        if own_pool is not None:
            own_pool.close()


def _run_jobs_batched_pooled(
    jobs: "list[SimulationJob]",
    chunks: "list[list[int]]",
    ordered: "list[Optional[JobResult]]",
    place,
    *,
    workers: int,
    mode: str,
    batch_size: int,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    serve: bool,
    inproc: bool,
    kwargs: dict,
) -> list[JobResult]:

    # Warm the artifact cache once per distinct (program, structural
    # options) before fanning out, so concurrent chunks don't race a
    # cold cache into redundant gcc runs: the campaign's whole fleet
    # costs exactly one compiler invocation.  Pointless without a shared
    # cache; failures are left for the chunk path to report properly.
    if cache is not False:
        from repro.engines.accmos import compile_model

        warmed: set = set()
        for job in jobs:
            key = batch_key(job)
            if key is None or key in warmed:
                continue
            warmed.add(key)
            try:
                compile_model(
                    job.prog, job.resolved_options(), cache=cache,
                    artifact="shared" if inproc else "binary",
                )
            except Exception:
                pass

    n = min(workers, len(chunks))
    session = telemetry.active()
    with telemetry.span(
        "runner.run_jobs", jobs=len(jobs), workers=n, mode=mode,
        batches=len(chunks), batch_size=batch_size,
    ) as pool_span:
        pool_span_id = getattr(pool_span, "span_id", None)

        if mode == "process":
            from repro.runner.cache import default_cache

            resolved = default_cache() if cache is None else (cache or None)
            cache_root = str(resolved.root) if resolved is not None else None
            max_bytes = resolved.max_bytes if resolved is not None else None
            with ProcessPoolExecutor(max_workers=n) as pool:
                futures = [
                    pool.submit(
                        _run_chunk_in_process,
                        [jobs[i] for i in chunk], cache_root, max_bytes,
                        timeout_seconds, retries, backoff_seconds,
                        session is not None, serve, inproc,
                    )
                    for chunk in chunks
                ]
                chunk_results = [f.result() for f in futures]
            for chunk, results in zip(chunks, chunk_results):
                for result in results:
                    if resolved is not None and result.cache_stats:
                        resolved.absorb_counts(**result.cache_stats)
                    if session is not None and result.telemetry:
                        session.absorb(
                            result.telemetry, parent_span_id=pool_span_id
                        )
                        result.telemetry = None
                place(chunk, results)
            return ordered  # type: ignore[return-value]

        tracer = session.tracer if session is not None else None

        def worker(chunk: "list[int]") -> "list[JobResult]":
            chunk_jobs = [jobs[i] for i in chunk]
            if tracer is None:
                return run_job_batch(chunk_jobs, **kwargs)
            with tracer.adopt(pool_span_id):
                return run_job_batch(chunk_jobs, **kwargs)

        with ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="accmos-batch"
        ) as pool:
            futures = [pool.submit(worker, chunk) for chunk in chunks]
            for chunk, future in zip(chunks, futures):
                place(chunk, future.result())
        return ordered  # type: ignore[return-value]

"""Fan simulation jobs out across a worker pool.

The heavy phases of an AccMoS job — the gcc invocation and the compiled
binary's run — happen in child processes, during which CPython releases
the GIL, so a *thread* pool already uses every core and can share one
in-process :class:`~repro.runner.cache.ArtifactCache` (hit/miss counters
included).  That makes ``mode="thread"`` the default.  ``mode="process"``
trades shared counters for full interpreter isolation (useful when the
per-job Python work — codegen, result parsing — dominates); jobs and
results cross the process boundary by pickling, and each worker resolves
the cache from its root path.

Results come back in submission order regardless of completion order —
the property the deterministic campaign merge builds on.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.runner.jobs import JobResult, SimulationJob, run_job

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache


def default_workers() -> int:
    return min(32, os.cpu_count() or 1)


def _run_job_in_process(
    job: SimulationJob,
    cache_root: Optional[str],
    max_bytes: Optional[int],
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
) -> JobResult:
    """Process-pool entry point: rebuild the cache handle from its root."""
    cache: "Union[ArtifactCache, None, bool]" = False
    if cache_root is not None:
        from repro.runner.cache import ArtifactCache

        cache = ArtifactCache(cache_root, max_bytes=max_bytes)
    return run_job(
        job,
        cache=cache,
        timeout_seconds=timeout_seconds,
        retries=retries,
        backoff_seconds=backoff_seconds,
    )


def run_jobs(
    jobs: Sequence[SimulationJob],
    *,
    workers: Optional[int] = None,
    mode: str = "thread",
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
) -> list[JobResult]:
    """Execute every job; returns one :class:`JobResult` per job, in order.

    ``workers=None`` picks ``min(32, cpu_count)``; ``workers=1`` (or a
    single job) runs inline with no pool at all.  Individual job
    failures are *reported*, not raised — check ``JobResult.outcome``.
    """
    if mode not in ("thread", "process"):
        raise ValueError(f"mode must be 'thread' or 'process', not {mode!r}")
    workers = default_workers() if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be at least 1")
    jobs = list(jobs)

    kwargs = dict(
        cache=cache,
        timeout_seconds=timeout_seconds,
        retries=retries,
        backoff_seconds=backoff_seconds,
    )
    if workers == 1 or len(jobs) <= 1:
        return [run_job(job, **kwargs) for job in jobs]

    n = min(workers, len(jobs))
    if mode == "process":
        from repro.runner.cache import default_cache

        resolved = default_cache() if cache is None else (cache or None)
        cache_root = str(resolved.root) if resolved is not None else None
        max_bytes = resolved.max_bytes if resolved is not None else None
        with ProcessPoolExecutor(max_workers=n) as pool:
            futures = [
                pool.submit(
                    _run_job_in_process,
                    job, cache_root, max_bytes,
                    timeout_seconds, retries, backoff_seconds,
                )
                for job in jobs
            ]
            return [f.result() for f in futures]

    with ThreadPoolExecutor(max_workers=n, thread_name_prefix="accmos-job") as pool:
        futures = [pool.submit(run_job, job, **kwargs) for job in jobs]
        return [f.result() for f in futures]

"""Thread-parallel dispatch: same-key jobs on one shared CompiledModel.

The process-pool path pays real freight per worker — pickling jobs and
results, per-worker artifact caches, telemetry re-parenting — even when
every job in the wave shares one compiled binary.  When the in-process
rung is available, none of that is necessary: ``ctypes`` releases the
GIL around ``acc_lib_run_case``, so N private library instances inside
*this* process run N C simulation loops on N cores with zero spawns.

``run_jobs(mode="inproc-threads")`` routes here.  The dispatcher groups
the whole submission by :func:`~repro.runner.jobs.batch_key` (no
``batch_size`` cap — the threaded executor wants the largest possible
group to pack), compiles each group's shared object once, predicts
per-case cost with the :mod:`~repro.runner.costmodel` (seeded by
observed execute timings), packs cases into per-thread shards by LPT,
and hands the group to :meth:`CompiledModel.run_inproc` with those
shards.  Measured execute times are folded back into the cost model, so
the next wave packs on real rates.  Unbatchable jobs (non-AccMoS
engines, descriptor-less stimuli) take the ordinary per-job path.

Fault behavior is the existing ladder, untouched: a library fault inside
the threaded executor quarantines the model and finishes the affected
cases on the warm ``--serve`` rung; an exception around the executor
drops the group to the spawn-per-batch rung via
:func:`~repro.runner.jobs.run_job_batch`.  Either way results are
byte-identical and one :class:`JobResult` per job comes back in
submission order.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Union

from repro import telemetry
from repro.runner.costmodel import (
    CaseCostModel,
    cost_key,
    default_cost_store,
    makespan,
    pack_shards,
)
from repro.runner.jobs import (
    JobResult,
    SimulationJob,
    _transient,
    batch_key,
    results_from_outcomes,
    run_job,
    run_job_batch,
)

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache


def _case_size(job: SimulationJob) -> "tuple[int, int]":
    """(steps, actors): the two cost drivers known before running."""
    return job.resolved_options().steps, len(job.prog.actors)


def run_jobs_inproc_threads(
    jobs: "list[SimulationJob]",
    *,
    threads: int,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
    cost_model: Optional[CaseCostModel] = None,
    _sleep=time.sleep,
) -> "list[JobResult]":
    """Execute every job; one :class:`JobResult` per job, in order."""
    if threads < 1:
        raise ValueError("threads must be at least 1")
    jobs = list(jobs)
    ordered: "list[Optional[JobResult]]" = [None] * len(jobs)

    groups: "dict[tuple, list[int]]" = {}
    singles: "list[int]" = []
    for index, job in enumerate(jobs):
        key = batch_key(job)
        if key is None:
            singles.append(index)
        else:
            groups.setdefault(key, []).append(index)

    with telemetry.span(
        "runner.run_jobs",
        jobs=len(jobs),
        workers=threads,
        mode="inproc-threads",
        groups=len(groups),
    ):
        for index in singles:
            ordered[index] = run_job(
                jobs[index],
                cache=cache,
                timeout_seconds=timeout_seconds,
                retries=retries,
                backoff_seconds=backoff_seconds,
                _sleep=_sleep,
            )
        for indices in groups.values():
            results = _run_group(
                [jobs[i] for i in indices],
                threads=threads,
                cache=cache,
                timeout_seconds=timeout_seconds,
                retries=retries,
                backoff_seconds=backoff_seconds,
                cost_model=cost_model,
                _sleep=_sleep,
            )
            for index, result in zip(indices, results):
                ordered[index] = result
    return ordered  # type: ignore[return-value]


def _run_group(
    group: "list[SimulationJob]",
    *,
    threads: int,
    cache: "Union[ArtifactCache, None, bool]",
    timeout_seconds: Optional[float],
    retries: int,
    backoff_seconds: float,
    cost_model: Optional[CaseCostModel],
    _sleep,
) -> "list[JobResult]":
    """One same-key group: compile once, pack, run threaded, observe."""
    from repro.engines.accmos import compile_model

    if cost_model is None:
        # Per-(engine, compile key) model from the persistent store:
        # packing starts from the coefficients earlier campaigns
        # measured for this same compiled unit, and this group's
        # observations flow back to benefit the next one.
        cost_model = default_cost_store().model(
            cost_key(
                group[0].engine, group[0].prog, group[0].resolved_options()
            )
        )

    def _fallback() -> "list[JobResult]":
        # Drop a rung: the batched dispatcher owns the rest of the
        # ladder (server stream → spawn-per-batch → per-job).
        telemetry.counter_inc("runner.inproc_threads.fallbacks")
        return run_job_batch(
            group,
            cache=cache,
            timeout_seconds=timeout_seconds,
            retries=retries,
            backoff_seconds=backoff_seconds,
            inproc=False,
        )

    with telemetry.span(
        "runner.inproc_threads",
        jobs=len(group),
        threads=threads,
        seeds=[job.seed for job in group],
    ) as span:
        model = None
        for attempt in range(retries + 1):
            try:
                model = compile_model(
                    group[0].prog,
                    group[0].resolved_options(),
                    cache=cache,
                    artifact="shared",
                )
                break
            except Exception as exc:
                if not _transient(exc) or attempt == retries:
                    span.set(outcome="compile_failed")
                    return _fallback()
                _sleep(backoff_seconds * (2**attempt))

        sizes = [_case_size(job) for job in group]
        costs = [cost_model.predict(steps, actors) for steps, actors in sizes]
        shards = pack_shards(costs, threads)
        shards = [shard for shard in shards if shard]
        predicted = makespan(shards, costs)
        if predicted > 0 and len(shards) > 1:
            telemetry.gauge_set(
                "engine.inproc.pack_efficiency_predicted",
                sum(costs) / (len(shards) * predicted),
            )
        case_list = [
            (job.resolved_stimuli(), job.resolved_options())
            for job in group
        ]
        try:
            outcomes = model.run_inproc(
                case_list,
                timeout_seconds=timeout_seconds,
                threads=len(shards),
                shards=shards,
            )
        except Exception:
            span.set(outcome="fallback")
            return _fallback()
        span.set(outcome="ok", cache_hit=model.cache_hit)
        telemetry.counter_inc("runner.inproc_threads.groups")

    for (steps, actors), outcome in zip(sizes, outcomes):
        seconds = getattr(outcome, "extra", {}).get("execute_seconds", 0.0)
        if seconds:
            cost_model.observe(steps, actors, seconds)
    return results_from_outcomes(group, outcomes, model)

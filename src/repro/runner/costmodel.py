"""Cost-aware case scheduling: predict per-case cost, pack by makespan.

Thread-parallel in-process execution splits one batch of cases across N
worker threads; a naive slicing head-of-line-blocks short cases behind
long ones whenever step counts differ (a 100k-step case next to 100-step
cases turns a 4-thread shard into a 1-thread tail).  The fix is the
classic two-parter from the ROADMAP's adaptive-scheduling item:

* :class:`CaseCostModel` predicts per-case execute seconds from the two
  quantities the runner knows before running anything — step count and
  model size (actor count) — as ``base + steps * actors * rate``.  The
  rate is *seeded by observed timings telemetry*: every completed case
  already carries ``execute_seconds`` in its timings, and the dispatcher
  folds those observations back in as an exponential moving average, so
  the model converges on the machine's real per-(step × actor) cost
  within the first wave.  Small cases (``steps * actors`` under
  ``small_units``) instead recalibrate the *base* term: their wall time
  is dominated by per-case freight, so treating it as rate would poison
  the slope, and never fitting base from them makes tiny-case-heavy
  corpora over-predict every case.
* :func:`pack_shards` packs cases into worker shards by LPT
  (longest-processing-time-first greedy makespan).  Plain LPT can lose
  to naive round-robin on adversarial cost vectors (LPT is a 4/3
  approximation, round-robin can fluke the optimum), so the packer
  computes both and returns whichever has the smaller predicted
  makespan — "never worse than round-robin" then holds by construction,
  and the hypothesis suite pins it.

Beyond the in-process shards, the streaming campaign scheduler
(:mod:`repro.runner.scheduler`) consumes the same predictions for
admission (route predicted-long cases away from short ones) — and every
mode's observed ``execute_seconds`` feeds back in, not just the
threaded rung's.  :class:`CostModelStore` keeps one model per
*(engine, compile key)* and persists the learned coefficients into the
artifact-cache directory with atomic writes, so the next campaign
warm-starts from this machine's measured rates instead of the cold
defaults.

Everything here is deterministic: ties break on case index, so the same
costs always produce the same shards — a prerequisite for the
byte-identity contract upstream (shard *membership* may differ from the
round-robin default, but per-case results never depend on shard shape).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.engines.base import SimulationOptions
    from repro.schedule.program import FlatProgram

# Cold-start coefficients: measured magnitudes for -O3 compiled actor
# steps on commodity x86 (~tens of ns per actor-step) plus the fixed
# per-case freight (encode + ABI call + decode).  Only their *ratios*
# matter for packing; observations recalibrate both immediately.
_DEFAULT_BASE_SECONDS = 2e-4
_DEFAULT_RATE_SECONDS = 3e-8

# steps * actors at or below this is a "small" case: its wall time is
# mostly per-case freight, so it calibrates the base term, not the rate.
_DEFAULT_SMALL_UNITS = 4096.0

# Cost multiplier applied to an artifact whose warm servers flap
# (restart past the pool's threshold): its predictions inflate past the
# long-classification ratio so admission routes the cases to the capped
# long slots instead of letting them head-of-line block short cases.
FLAP_PENALTY = 4.0


class CaseCostModel:
    """Predicts per-case execute cost from ``steps × actors``.

    Thread-safe; instances are usually owned by a :class:`CostModelStore`
    (one per engine/compile key) so observations accumulate across waves
    and — via the store's persistence — across campaigns.
    """

    def __init__(
        self,
        *,
        base_seconds: float = _DEFAULT_BASE_SECONDS,
        rate_seconds: float = _DEFAULT_RATE_SECONDS,
        alpha: float = 0.2,
        small_units: float = _DEFAULT_SMALL_UNITS,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.base_seconds = float(base_seconds)
        self.rate_seconds = float(rate_seconds)
        self.alpha = float(alpha)
        self.small_units = float(small_units)
        self.observations = 0
        self.base_observations = 0
        # Runtime-only demotion multiplier (>= 1.0).  A flapping warm
        # server costs far more than its execute time suggests (restart
        # + resubmission per flap), so admission should treat the
        # artifact's cases as expensive.  Deliberately *not* persisted:
        # flapping is a condition of the current process's servers, not
        # of the artifact, and must not poison future campaigns.
        self.penalty = 1.0
        self._lock = threading.Lock()

    @staticmethod
    def _units(steps: int, actors: int) -> float:
        return float(max(1, steps)) * float(max(1, actors))

    def predict(self, steps: int, actors: int) -> float:
        """Predicted execute seconds for one case (penalty included)."""
        with self._lock:
            return (
                self.base_seconds
                + self._units(steps, actors) * self.rate_seconds
            ) * self.penalty

    def set_penalty(self, multiplier: float) -> None:
        """Demote this model's predictions by ``multiplier`` (ratchets:
        a smaller multiplier never undoes a larger one)."""
        if multiplier < 1.0:
            raise ValueError("penalty multiplier must be >= 1.0")
        with self._lock:
            self.penalty = max(self.penalty, float(multiplier))

    def observe(self, steps: int, actors: int, seconds: float) -> None:
        """Fold one measured execute time back in (EMA).

        Large cases update the *rate* (their time is dominated by the
        ``steps × actors`` term); small cases — ``units <= small_units``
        — update the *base* instead, since for them the fixed per-case
        freight is what the measurement actually saw.  Fitting base only
        from small cases keeps the two coefficients separable: a large
        observation cannot distinguish base from rate, a tiny one is
        almost purely base.
        """
        if seconds <= 0.0:
            return
        units = self._units(steps, actors)
        with self._lock:
            if units <= self.small_units:
                estimate = max(0.0, seconds - units * self.rate_seconds)
                if self.base_observations == 0:
                    self.base_seconds = estimate
                else:
                    self.base_seconds += self.alpha * (
                        estimate - self.base_seconds
                    )
                self.base_observations += 1
            else:
                per_unit = max(0.0, seconds - self.base_seconds) / units
                if self.observations == self.base_observations:
                    # first rate observation: hard-seed instead of EMA
                    self.rate_seconds = per_unit
                else:
                    self.rate_seconds += self.alpha * (
                        per_unit - self.rate_seconds
                    )
            self.observations += 1

    # -- persistence form ------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "base_seconds": self.base_seconds,
                "rate_seconds": self.rate_seconds,
                "observations": self.observations,
                "base_observations": self.base_observations,
            }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseCostModel":
        model = cls(
            base_seconds=float(data.get("base_seconds", _DEFAULT_BASE_SECONDS)),
            rate_seconds=float(data.get("rate_seconds", _DEFAULT_RATE_SECONDS)),
        )
        model.observations = int(data.get("observations", 0))
        model.base_observations = int(data.get("base_observations", 0))
        return model


def makespan(
    shards: Sequence[Sequence[int]], costs: Sequence[float]
) -> float:
    """The predicted wall-clock of a partition: its largest shard sum."""
    if not shards:
        return 0.0
    return max(
        (sum(costs[i] for i in shard) for shard in shards), default=0.0
    )


def _round_robin(n_cases: int, n_shards: int) -> "list[list[int]]":
    return [
        list(range(slot, n_cases, n_shards)) for slot in range(n_shards)
    ]


def _lpt(
    costs: Sequence[float],
    n_shards: int,
    max_size: Optional[int] = None,
) -> "list[list[int]]":
    # Longest first; equal costs keep case order for determinism.
    # ``max_size`` caps shard *cardinality* (a full shard stops bidding)
    # so packed chunks respect dispatch batch limits.
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    heap = [(0.0, slot) for slot in range(n_shards)]
    heapq.heapify(heap)
    shards: "list[list[int]]" = [[] for _ in range(n_shards)]
    for index in order:
        parked = []
        while True:
            load, slot = heapq.heappop(heap)
            if max_size is None or len(shards[slot]) < max_size:
                break
            parked.append((load, slot))
        shards[slot].append(index)
        heapq.heappush(heap, (load + costs[index], slot))
        for entry in parked:
            heapq.heappush(heap, entry)
    # Within a shard, run cases in submission order (cache-friendly and
    # makes shard contents reproducible documentation in traces).
    for shard in shards:
        shard.sort()
    return shards


def pack_shards(
    costs: Sequence[float],
    n_shards: int,
    max_size: Optional[int] = None,
) -> "list[list[int]]":
    """Partition case indices into ``n_shards`` worker shards.

    LPT greedy-makespan, guarded to never predict worse than naive
    round-robin (the packer evaluates both and keeps the better one).
    Empty shards are possible when there are fewer cases than shards;
    callers skip them.  Deterministic for equal inputs.

    ``max_size`` additionally caps how many cases one shard may hold —
    the chunk former uses this so a cost-balanced chunk never exceeds
    the dispatch batch limit.  It must satisfy ``max_size * n_shards >=
    len(costs)`` to be feasible; round-robin respects any such cap by
    construction, so the never-worse guarantee survives capping.
    """
    n = len(costs)
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if max_size is not None and max_size * n_shards < n:
        raise ValueError(
            f"max_size {max_size} x {n_shards} shard(s) cannot hold "
            f"{n} case(s)"
        )
    if n_shards == 1 or n <= 1:
        return [list(range(n))]
    n_shards = min(n_shards, n)
    lpt = _lpt(costs, n_shards, max_size)
    rr = _round_robin(n, n_shards)
    return lpt if makespan(lpt, costs) <= makespan(rr, costs) else rr


def plan_chunks(
    costs: Sequence[float], n_chunks: int, max_size: int
) -> "list[list[int]]":
    """Partition case indices into up to ``n_chunks`` dispatch chunks of
    at most ``max_size`` cases each, equalizing predicted chunk cost.

    This is the stream scheduler's chunk former for pooled dispatch: one
    chunk occupies one worker slot, so chunk-cost skew *is* worker
    wall-clock skew.  Reuses :func:`pack_shards`' best-of(LPT,
    round-robin) packing — the planned partition therefore never
    predicts a worse makespan than naive round-robin, and (because the
    greedy arrival former is a worst case of count-equal packing on
    skewed costs) the regression suite pins it at <= greedy-by-arrival
    as well.  Chunks are ordered by their smallest case index so the
    frontier chunk is always first; empty shards are dropped.
    """
    n = len(costs)
    if max_size < 1:
        raise ValueError("max_size must be at least 1")
    if n == 0:
        return []
    n_chunks = max(n_chunks, -(-n // max_size))  # enough to hold them all
    shards = pack_shards(costs, n_chunks, max_size=max_size)
    return sorted((s for s in shards if s), key=lambda s: s[0])


# ----------------------------------------------------------------------
# per-(engine, compile key) store with persistence
# ----------------------------------------------------------------------
def cost_key(
    engine: str,
    prog: "FlatProgram",
    options: "Optional[SimulationOptions]" = None,
) -> str:
    """The stable key under which a program's cost coefficients persist.

    Cost prediction has to happen *before* codegen (admission decides
    what to run next), so the artifact cache's SHA-over-source key is
    not yet known; this key is its pre-codegen proxy — the engine plus
    everything that determines the compiled unit's per-step cost: the
    model, its size, and (for AccMoS) the structural option fingerprint
    the binary is specialized on.  Stable across processes, unlike
    :func:`~repro.runner.jobs.batch_key` (which folds in ``id(prog)``).
    """
    name = getattr(getattr(prog, "model", None), "name", "?")
    actors = len(getattr(prog, "actors", ()) or ())
    base = f"{engine}:{name}:a{actors}"
    if engine != "accmos" or options is None:
        return base
    from repro.engines.accmos import _structural_fingerprint

    digest = hashlib.sha1(
        repr(_structural_fingerprint(options)).encode()
    ).hexdigest()[:12]
    return f"{base}:{digest}"


class CostModelStore:
    """One :class:`CaseCostModel` per (engine, compile key), persisted.

    The store lazily loads ``costmodel.json`` from its path (typically
    the artifact-cache directory), hands out per-key models warm-started
    from the persisted coefficients, and writes the file back atomically
    (temp file + ``os.replace``) on :meth:`save` — merging with whatever
    a concurrent campaign persisted in the meantime, our keys winning.
    With ``path=None`` the store is purely in-memory.
    """

    FILE_NAME = "costmodel.json"
    VERSION = 1

    def __init__(self, path: "Union[str, Path, None]" = None) -> None:
        self.path = Path(path) if path is not None else None
        self._models: dict[str, CaseCostModel] = {}
        self._lock = threading.Lock()
        self._loaded = False
        # Bumped on every penalize(); schedulers that classified cases
        # from earlier predictions watch this to know a re-classification
        # is due.  Monotonic, process-local.
        self._generation = 0

    # -- loading ---------------------------------------------------------
    def _read_file(self) -> dict:
        if self.path is None:
            return {}
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        models = payload.get("models")
        return models if isinstance(models, dict) else {}

    def _ensure_loaded(self) -> None:
        # caller holds self._lock
        if self._loaded:
            return
        self._loaded = True
        for key, data in self._read_file().items():
            if key not in self._models and isinstance(data, dict):
                try:
                    self._models[key] = CaseCostModel.from_dict(data)
                except (TypeError, ValueError):
                    continue  # one corrupt entry shouldn't lose the rest

    # -- access ----------------------------------------------------------
    def model(self, key: str) -> CaseCostModel:
        """The model for ``key``, warm-started from disk if persisted."""
        with self._lock:
            self._ensure_loaded()
            model = self._models.get(key)
            if model is None:
                model = self._models[key] = CaseCostModel()
            return model

    def predict(self, key: str, steps: int, actors: int) -> float:
        return self.model(key).predict(steps, actors)

    def observe(self, key: str, steps: int, actors: int, seconds: float) -> None:
        self.model(key).observe(steps, actors, seconds)

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def penalize(self, key: str, multiplier: float = FLAP_PENALTY) -> None:
        """Demote ``key``'s predictions by ``multiplier`` (ratcheting)
        and bump the store generation so live schedulers re-classify.

        Called by the warm-server pool when an artifact's servers flap
        (restart past the threshold): the artifact's true cost per case
        includes the restarts and resubmissions its text-protocol stream
        keeps paying, which the observed execute seconds never show.
        """
        self.model(key).set_penalty(multiplier)
        with self._lock:
            self._generation += 1

    def keys(self) -> "list[str]":
        with self._lock:
            self._ensure_loaded()
            return sorted(self._models)

    # -- persistence -----------------------------------------------------
    def save(self) -> Optional[Path]:
        """Atomically persist every observed model; returns the path.

        Merges over the file's current contents (another process may
        have saved since we loaded), our keys winning; models that never
        observed anything are skipped — they are still the cold
        defaults and would only overwrite a real measurement.
        """
        if self.path is None:
            return None
        with self._lock:
            self._ensure_loaded()
            ours = {
                key: model.to_dict()
                for key, model in self._models.items()
                if model.observations > 0
            }
            if not ours:
                return None
            merged = self._read_file()
            merged.update(ours)
            payload = {"version": self.VERSION, "models": merged}
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    prefix=".costmodel-", dir=str(self.path.parent)
                )
                try:
                    with os.fdopen(fd, "w") as fh:
                        json.dump(payload, fh, sort_keys=True)
                    os.replace(tmp, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                return None  # read-only cache dir: stay in-memory
        return self.path


# ----------------------------------------------------------------------
# process-wide defaults
# ----------------------------------------------------------------------
_default_store: Optional[CostModelStore] = None
_default_store_lock = threading.Lock()


def default_cost_store() -> CostModelStore:
    """The process-wide store campaigns observe into and warm-start from.

    Persisted next to the artifact cache (``costmodel.json`` in
    :func:`~repro.runner.cache.default_cache_dir`); in-memory only when
    caching is disabled via ``ACCMOS_NO_CACHE``.
    """
    global _default_store
    with _default_store_lock:
        if _default_store is None:
            from repro.runner.cache import CACHE_DISABLE_ENV, default_cache_dir

            if os.environ.get(CACHE_DISABLE_ENV, "").strip() not in ("", "0"):
                _default_store = CostModelStore(None)
            else:
                _default_store = CostModelStore(
                    default_cache_dir() / CostModelStore.FILE_NAME
                )
        return _default_store


def set_default_cost_store(
    store: Optional[CostModelStore],
) -> Optional[CostModelStore]:
    """Override the process-wide store (tests, embedding apps).

    Returns the previous default so callers can restore it.
    """
    global _default_store
    with _default_store_lock:
        previous = _default_store
        _default_store = store
        return previous


def default_cost_model() -> CaseCostModel:
    """The process-wide fallback model (key ``"default"`` of the default
    store) — kept for callers that predate per-key models; observations
    accumulate across campaign waves and sessions in one process."""
    return default_cost_store().model("default")

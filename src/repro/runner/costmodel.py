"""Cost-aware case scheduling: predict per-case cost, pack by makespan.

Thread-parallel in-process execution splits one batch of cases across N
worker threads; a naive slicing head-of-line-blocks short cases behind
long ones whenever step counts differ (a 100k-step case next to 100-step
cases turns a 4-thread shard into a 1-thread tail).  The fix is the
classic two-parter from the ROADMAP's adaptive-scheduling item:

* :class:`CaseCostModel` predicts per-case execute seconds from the two
  quantities the runner knows before running anything — step count and
  model size (actor count) — as ``base + steps * actors * rate``.  The
  rate is *seeded by observed timings telemetry*: every completed case
  already carries ``execute_seconds`` in its timings, and the dispatcher
  folds those observations back in as an exponential moving average, so
  the model converges on the machine's real per-(step × actor) cost
  within the first wave.
* :func:`pack_shards` packs cases into worker shards by LPT
  (longest-processing-time-first greedy makespan).  Plain LPT can lose
  to naive round-robin on adversarial cost vectors (LPT is a 4/3
  approximation, round-robin can fluke the optimum), so the packer
  computes both and returns whichever has the smaller predicted
  makespan — "never worse than round-robin" then holds by construction,
  and the hypothesis suite pins it.

Everything here is deterministic: ties break on case index, so the same
costs always produce the same shards — a prerequisite for the
byte-identity contract upstream (shard *membership* may differ from the
round-robin default, but per-case results never depend on shard shape).
"""

from __future__ import annotations

import heapq
import threading
from typing import Optional, Sequence

# Cold-start coefficients: measured magnitudes for -O3 compiled actor
# steps on commodity x86 (~tens of ns per actor-step) plus the fixed
# per-case freight (encode + ABI call + decode).  Only their *ratios*
# matter for packing; observations recalibrate the rate immediately.
_DEFAULT_BASE_SECONDS = 2e-4
_DEFAULT_RATE_SECONDS = 3e-8


class CaseCostModel:
    """Predicts per-case execute cost from ``steps × actors``.

    Thread-safe; one process-wide instance accumulates observations
    across waves (see :func:`default_cost_model`).
    """

    def __init__(
        self,
        *,
        base_seconds: float = _DEFAULT_BASE_SECONDS,
        rate_seconds: float = _DEFAULT_RATE_SECONDS,
        alpha: float = 0.2,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.base_seconds = float(base_seconds)
        self.rate_seconds = float(rate_seconds)
        self.alpha = float(alpha)
        self.observations = 0
        self._lock = threading.Lock()

    @staticmethod
    def _units(steps: int, actors: int) -> float:
        return float(max(1, steps)) * float(max(1, actors))

    def predict(self, steps: int, actors: int) -> float:
        """Predicted execute seconds for one case."""
        with self._lock:
            return self.base_seconds + self._units(steps, actors) * self.rate_seconds

    def observe(self, steps: int, actors: int, seconds: float) -> None:
        """Fold one measured execute time back into the rate (EMA).

        The base term stays fixed — it models constant per-case freight
        that observations of large cases cannot separate from the rate;
        the rate is what varies across machines and models.
        """
        if seconds <= 0.0:
            return
        per_unit = max(0.0, seconds - self.base_seconds) / self._units(
            steps, actors
        )
        with self._lock:
            if self.observations == 0:
                self.rate_seconds = per_unit
            else:
                self.rate_seconds += self.alpha * (
                    per_unit - self.rate_seconds
                )
            self.observations += 1


def makespan(
    shards: Sequence[Sequence[int]], costs: Sequence[float]
) -> float:
    """The predicted wall-clock of a partition: its largest shard sum."""
    if not shards:
        return 0.0
    return max(
        (sum(costs[i] for i in shard) for shard in shards), default=0.0
    )


def _round_robin(n_cases: int, n_shards: int) -> "list[list[int]]":
    return [
        list(range(slot, n_cases, n_shards)) for slot in range(n_shards)
    ]


def _lpt(costs: Sequence[float], n_shards: int) -> "list[list[int]]":
    # Longest first; equal costs keep case order for determinism.
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    heap = [(0.0, slot) for slot in range(n_shards)]
    heapq.heapify(heap)
    shards: "list[list[int]]" = [[] for _ in range(n_shards)]
    for index in order:
        load, slot = heapq.heappop(heap)
        shards[slot].append(index)
        heapq.heappush(heap, (load + costs[index], slot))
    # Within a shard, run cases in submission order (cache-friendly and
    # makes shard contents reproducible documentation in traces).
    for shard in shards:
        shard.sort()
    return shards


def pack_shards(
    costs: Sequence[float], n_shards: int
) -> "list[list[int]]":
    """Partition case indices into ``n_shards`` worker shards.

    LPT greedy-makespan, guarded to never predict worse than naive
    round-robin (the packer evaluates both and keeps the better one).
    Empty shards are possible when there are fewer cases than shards;
    callers skip them.  Deterministic for equal inputs.
    """
    n = len(costs)
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_shards == 1 or n <= 1:
        return [list(range(n))]
    n_shards = min(n_shards, n)
    lpt = _lpt(costs, n_shards)
    rr = _round_robin(n, n_shards)
    return lpt if makespan(lpt, costs) <= makespan(rr, costs) else rr


# ----------------------------------------------------------------------
# process-wide default model
# ----------------------------------------------------------------------
_default_model: Optional[CaseCostModel] = None
_default_model_lock = threading.Lock()


def default_cost_model() -> CaseCostModel:
    """The process-wide model the threaded dispatcher seeds and reads.

    Observations accumulate across campaign waves and sessions in one
    process, so the second wave already packs on measured rates."""
    global _default_model
    with _default_model_lock:
        if _default_model is None:
            _default_model = CaseCostModel()
        return _default_model

"""Campaign execution: streamed seeded jobs, deterministic merge.

This is the engine room behind :func:`repro.campaign.run_campaign`.
Results are always folded into the outcome **in seed order** — that is
what makes the merged coverage report, the per-case new-point counts,
the first-exposing-seed attribution of every diagnostic, and the
saturation verdict byte-identical between ``workers=1`` and
``workers=N`` — the plateau criterion is evaluated on the ordered
merge, exactly as the serial loop would.

Two dispatch disciplines produce that ordered stream:

* ``scheduler="stream"`` (the default) — the work-conserving
  :class:`~repro.runner.scheduler.StreamScheduler`: a bounded in-flight
  window refilled the moment capacity frees, a reorder buffer restoring
  seed order, cost-aware admission keeping short cases out of the
  shadow of long ones, and (when enabled) a throughput controller
  auto-tuning batch size and window depth.  On saturation only the
  cases actually in flight are wasted.
* ``scheduler="wave"`` — the legacy barrier loop: ``workers ×
  batch_size`` seeds per synchronized :func:`run_jobs` call.  Kept as
  the reference discipline (benchmarks measure streaming against it)
  and as a maximally-simple fallback.  A mid-wave saturation discards
  up to a full wave of speculated work.

Either way, speculated-then-discarded cases are *counted*, not silently
burned: ``CampaignOutcome.speculated_cases`` and the
``campaign.speculated_cases`` telemetry counter report the waste, and
the streaming scheduler's job is to keep it strictly below the wave
loop's.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro import telemetry
from repro.coverage.metrics import ALL_METRICS
from repro.coverage.report import CoverageReport
from repro.engines.base import SimulationOptions
from repro.model.errors import SimulationError
from repro.runner.costmodel import CostModelStore, cost_key, default_cost_store
from repro.runner.jobs import JobResult, SimulationJob
from repro.runner.pool import run_jobs
from repro.runner.scheduler import StreamScheduler
from repro.schedule.program import FlatProgram

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache

# Auto batch size for batch-capable (AccMoS) campaigns; bounded by the
# per-worker share of the case budget so small parallel campaigns still
# fan out.
AUTO_BATCH_CAP = 8


def resolve_threads(
    threads: Optional[int], *, engine: str
) -> int:
    """Resolve the campaign ``threads`` knob to a concrete count.

    ``None``/``0`` means auto: thread-parallel in-process execution when
    it can actually engage — the AccMoS engine with a toolchain that
    builds loadable shared objects — sized to the core count (capped at
    4: the shard merge and decode are serial Python, so returns diminish
    past a handful of C loops).  Everything else resolves to 1.
    """
    if threads:
        return max(1, int(threads))
    if engine != "accmos":
        return 1
    from repro.codegen.driver import supports_shared_objects

    if supports_shared_objects() is not True:
        return 1
    return max(1, min(4, os.cpu_count() or 1))


def resolve_batch_size(
    batch_size: Optional[int], *, engine: str, max_cases: int, workers: int
) -> int:
    """Resolve ``batch_size=None`` (auto) to a concrete size.

    Auto batching engages only where batches exist at all (the AccMoS
    engine) and never starves the worker fleet: the size is the
    per-worker share of the case budget, capped at :data:`AUTO_BATCH_CAP`
    so a cold first chunk is never disastrously large.  The adaptive
    controller may tune it from there; an explicit value is final.
    """
    if batch_size is not None:
        return batch_size
    if engine != "accmos":
        return 1
    per_worker = -(-max_cases // max(1, workers))  # ceil division
    return max(1, min(AUTO_BATCH_CAP, per_worker))


class _CampaignFold:
    """The seed-ordered merge, shared by both dispatch disciplines.

    One :meth:`fold` call per job result, strictly in seed order; the
    fold mutates ``outcome`` (cases, diagnostics, saturation) and
    returns True once the plateau criterion fires.  Keeping this in one
    class is what makes "streaming is byte-identical to the wave loop"
    true by construction rather than by parallel maintenance.
    """

    def __init__(
        self,
        outcome,
        *,
        engine: str,
        plateau_patience: int,
        observe: "Optional[Callable[[JobResult], None]]" = None,
    ) -> None:
        self.outcome = outcome
        self.engine = engine
        self.plateau_patience = plateau_patience
        self.observe = observe
        self.merged: Optional[CoverageReport] = None
        self.seen_diagnostics: "set[tuple[str, str]]" = set()
        self.dry_streak = 0

    def fold(self, job_result: JobResult) -> bool:
        from repro.campaign import CaseOutcome

        if not job_result.ok:
            # Chain the worker-side traceback: the original exception
            # (compile error, timeout, crash) stays attached as
            # __cause__, so scheduler-era failures remain debuggable.
            raise SimulationError(
                f"campaign case seed={job_result.seed} "
                f"{job_result.outcome}: {job_result.error}"
            ) from job_result.exception
        result = job_result.result
        if result.coverage is None:
            raise ValueError(f"engine {self.engine!r} collects no coverage")
        if self.observe is not None:
            self.observe(job_result)

        if self.merged is None:
            self.merged = CoverageReport.empty(result.coverage.points)
        before = {m: self.merged.bitmaps[m].count() for m in ALL_METRICS}
        self.merged.merge(result.coverage)
        by_metric = {
            m: self.merged.bitmaps[m].count() - before[m] for m in ALL_METRICS
        }
        new_points = sum(by_metric.values())

        fresh = 0
        for event in result.diagnostics:
            key = (event.path, event.kind.value)
            if key not in self.seen_diagnostics:
                self.seen_diagnostics.add(key)
                self.outcome.diagnostics.append((event, job_result.seed))
                fresh += 1

        self.outcome.cases.append(
            CaseOutcome(
                seed=job_result.seed,
                steps_run=result.steps_run,
                wall_time=result.wall_time,
                new_points=new_points,
                n_diagnostics=fresh,
                new_points_by_metric=by_metric,
                timings=dict(job_result.timings),
                cache_hit=job_result.cache_hit,
            )
        )

        self.dry_streak = self.dry_streak + 1 if new_points == 0 else 0
        if self.dry_streak >= self.plateau_patience:
            self.outcome.saturated = True
        return self.outcome.saturated


class CampaignRun:
    """One campaign as an embeddable, cancellable iteration.

    The fold loop behind :func:`repro.campaign.run_campaign`, decoupled
    from both the CLI and any event loop: iterating a ``CampaignRun``
    yields one :class:`~repro.campaign.CaseOutcome` per folded case,
    strictly in seed order, and :attr:`outcome` holds the merged
    :class:`~repro.campaign.CampaignOutcome` once iteration ends —
    normally (budget / saturation), via :meth:`cancel`, or because the
    consumer abandoned the iterator (``close()``/GC drains in-flight
    work exactly like a finished run, so speculation stays counted).

    Embedders (the campaign service) may inject a shared ``server_pool``
    and ``cost_store``; caller-owned resources are *not* closed or
    saved here — the campaign only borrows them — and the pool's
    lifetime counters are then left out of ``outcome.server_stats``
    (they describe the pool, not this campaign).  With neither injected
    the behavior is exactly the classic one-shot CLI campaign: private
    pool, process-wide persistent cost store, stats merged and saved on
    the way out.

    ``cancel()`` is thread-safe and cooperative: submission stops, the
    in-flight window drains (absorbing its cache/server/telemetry side
    effects), and the discarded work is reported in
    ``outcome.speculated_cases``.
    """

    def __init__(
        self,
        prog: FlatProgram,
        *,
        engine: str,
        steps: int,
        max_cases: int,
        plateau_patience: int,
        base_seed: int,
        options: Optional[SimulationOptions],
        workers: int = 1,
        mode: str = "thread",
        cache: "Union[ArtifactCache, None, bool]" = None,
        timeout_seconds: Optional[float] = None,
        retries: int = 1,
        batch_size: Optional[int] = None,
        serve: bool = False,
        inproc: bool = False,
        threads: Optional[int] = 1,
        window: Optional[int] = None,
        adaptive: bool = True,
        scheduler: str = "stream",
        server_pool=None,
        cost_store: Optional[CostModelStore] = None,
    ) -> None:
        from repro.campaign import CampaignOutcome

        self._prog = prog
        self._engine = engine
        self._opts = options or SimulationOptions(steps=steps)
        self._max_cases = max_cases
        self._plateau_patience = plateau_patience
        self._base_seed = base_seed
        self._cache = cache
        self._timeout_seconds = timeout_seconds
        self._retries = retries
        self._window = window
        self._adaptive = adaptive
        self._discipline = scheduler

        # Thread-parallel in-process execution replaces the worker pool
        # wholesale: chunks route to the inproc-threads executor, which
        # runs same-key groups on `threads` private library instances
        # inside this process.  The server/spawn rungs stay reachable
        # through the executor's own fault ladder, so the serve/inproc
        # knobs (which configure the pooled dispatchers) are moot here.
        threads = resolve_threads(threads, engine=engine)
        if threads > 1 and engine == "accmos":
            mode = "inproc-threads"
            workers = threads
            serve = False
            inproc = False
        self._threads = threads
        self._mode = mode
        self._workers = workers

        self._batch_fixed = batch_size is not None
        self._batch_size = resolve_batch_size(
            batch_size, engine=engine, max_cases=max_cases, workers=workers
        )

        # One warm-server pool for the whole campaign (thread/inline
        # mode): servers survive across chunks, so the steady state
        # respawns nothing.  Process mode keeps pools inside the worker
        # processes instead; their counter deltas ride back on the
        # JobResults.
        self._serve = serve and engine == "accmos" and self._batch_size > 1
        # The in-process rung shares the batching gate: it only pays off
        # (and only applies) when batches of accmos cases share an
        # artifact.
        self._inproc = inproc and engine == "accmos" and self._batch_size > 1
        self._own_pool = False
        if server_pool is None and self._serve and mode != "process":
            from repro.runner.servers import ServerPool

            server_pool = ServerPool(max_servers=max(workers * 2, 4))
            self._own_pool = True
        self._server_pool = server_pool if self._serve else None

        # Every mode's observed execute timings feed the persistent cost
        # model, keyed by (engine, compile key), so the *next* campaign's
        # admission and shard packing start from this machine's real
        # rates.  A caller-owned store is observed into but never saved
        # here — its owner decides when to persist.
        self._own_store = cost_store is None
        self._cost_store = (
            default_cost_store() if cost_store is None else cost_store
        )

        self.outcome = CampaignOutcome(merged=None)  # type: ignore[arg-type]
        self._cancelled = False
        self._scheduler: Optional[StreamScheduler] = None
        self._iterated = False

    # -- control ---------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop submitting new cases (thread-safe, cooperative).

        The iterator ends after the current fold; in-flight work drains
        into ``outcome.speculated_cases``.
        """
        self._cancelled = True
        live = self._scheduler
        if live is not None:
            live.stop()

    # -- iteration -------------------------------------------------------
    def __iter__(self):
        return self.cases()

    def cases(self):
        """Yield each folded :class:`~repro.campaign.CaseOutcome` in
        seed order; finalization (pool close, cost-store save, stats)
        runs however iteration ends."""
        if self._iterated:
            raise RuntimeError("a CampaignRun can only be iterated once")
        self._iterated = True
        outcome = self.outcome
        try:
            with telemetry.span(
                "campaign", model=self._prog.model.name, engine=self._engine,
                max_cases=self._max_cases, workers=self._workers,
                mode=self._mode, batch_size=self._batch_size,
                serve=self._serve, inproc=self._inproc,
                threads=self._threads, scheduler=self._discipline,
            ) as campaign_span:
                if self._discipline == "wave":
                    for case in self._waves():
                        yield case
                else:
                    for case in self._stream():
                        yield case
                campaign_span.set(
                    cases=len(outcome.cases), saturated=outcome.saturated,
                    speculated=outcome.speculated_cases,
                )
        finally:
            if self._own_pool and self._server_pool is not None:
                from repro.runner.servers import merge_server_stats

                outcome.server_stats = merge_server_stats(
                    outcome.server_stats, self._server_pool.stats()
                )
                self._server_pool.close()
                self._server_pool = None
            if self._own_store:
                self._cost_store.save()
            telemetry.counter_inc("campaign.runs")
            telemetry.counter_inc("campaign.cases", len(outcome.cases))

    # -- dispatch disciplines --------------------------------------------
    def _jobs(self) -> "list[SimulationJob]":
        return [
            SimulationJob(
                prog=self._prog, seed=self._base_seed + i,
                engine=self._engine, options=self._opts,
            )
            for i in range(self._max_cases)
        ]

    def _stream(self):
        """The streaming path: fold results the moment seed order allows."""
        outcome = self.outcome
        fold = _CampaignFold(
            outcome, engine=self._engine,
            plateau_patience=self._plateau_patience,
        )

        def on_server_stats(stats: dict) -> None:
            # Discarded-on-saturation results still ran; their
            # server-pool counters still count.
            from repro.runner.servers import merge_server_stats

            outcome.server_stats = merge_server_stats(
                outcome.server_stats, stats
            )

        scheduler = StreamScheduler(
            self._jobs(),
            workers=self._workers,
            mode=self._mode,
            window=self._window,
            batch_size=self._batch_size,
            tune_batch=self._adaptive and not self._batch_fixed,
            tune_window=self._adaptive and self._window is None,
            cache=self._cache,
            timeout_seconds=self._timeout_seconds,
            retries=self._retries,
            serve=self._serve,
            inproc=self._inproc,
            server_pool=self._server_pool if self._mode != "process" else None,
            cost_store=self._cost_store,
            on_server_stats=on_server_stats,
        )
        self._scheduler = scheduler
        if self._cancelled:
            scheduler.stop()  # cancel raced construction: submit nothing
        try:
            for job_result in scheduler.results():
                saturated = fold.fold(job_result)
                yield outcome.cases[-1]
                if saturated or self._cancelled:
                    scheduler.stop()
                    break
        finally:
            self._scheduler = None
            stats = scheduler.finish()
            outcome.scheduler_stats = stats
            outcome.speculated_cases = stats.get("speculated", 0)
            outcome.merged = fold.merged

    def _waves(self):
        """The legacy wave loop: barrier dispatch, seed-ordered fold."""
        outcome = self.outcome
        observe = _cost_observer(
            self._cost_store, self._opts,
            cost_key(self._engine, self._prog, self._opts),
            len(self._prog.actors), mode=self._mode,
        )
        fold = _CampaignFold(
            outcome, engine=self._engine,
            plateau_patience=self._plateau_patience, observe=observe,
        )
        try:
            # With batching, each worker slot chews through batch_size
            # cases per process spawn, so a wave carries workers *
            # batch_size seeds.  The speculation bound at mid-wave
            # saturation (or cancel) grows accordingly.
            wave = max(1, self._workers) * max(1, self._batch_size)
            index = 0
            while (
                index < self._max_cases
                and not outcome.saturated
                and not self._cancelled
            ):
                seeds = [
                    self._base_seed + i
                    for i in range(index, min(index + wave, self._max_cases))
                ]
                index += len(seeds)
                results = run_jobs(
                    [
                        SimulationJob(
                            prog=self._prog, seed=seed,
                            engine=self._engine, options=self._opts,
                        )
                        for seed in seeds
                    ],
                    workers=self._workers,
                    mode=self._mode,
                    cache=self._cache,
                    timeout_seconds=self._timeout_seconds,
                    retries=self._retries,
                    batch_size=self._batch_size,
                    serve=self._serve,
                    inproc=self._inproc,
                    server_pool=(
                        self._server_pool
                        if self._mode != "process"
                        else None
                    ),
                )

                # Process-mode chunks ship their worker pool's counter
                # deltas; fold them before the merge (discarded-on-
                # saturation results still ran, so their counters still
                # count).
                if self._serve:
                    from repro.runner.servers import merge_server_stats

                    for job_result in results:
                        if job_result.server_stats:
                            outcome.server_stats = merge_server_stats(
                                outcome.server_stats,
                                job_result.server_stats,
                            )

                # Ordered merge: fold strictly in seed order, stop at
                # saturation (or cooperative cancel).
                folded = 0
                for job_result in results:
                    folded += 1
                    saturated = fold.fold(job_result)
                    yield outcome.cases[-1]
                    if saturated or self._cancelled:
                        break  # later results of this wave are discarded
                if outcome.saturated or self._cancelled:
                    outcome.speculated_cases += len(results) - folded

            if outcome.speculated_cases:
                telemetry.counter_inc(
                    "campaign.speculated_cases", outcome.speculated_cases
                )
        finally:
            outcome.merged = fold.merged


def execute_campaign(
    prog: FlatProgram,
    *,
    engine: str,
    steps: int,
    max_cases: int,
    plateau_patience: int,
    base_seed: int,
    options: Optional[SimulationOptions],
    workers: int = 1,
    mode: str = "thread",
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    batch_size: Optional[int] = None,
    serve: bool = False,
    inproc: bool = False,
    threads: Optional[int] = 1,
    window: Optional[int] = None,
    adaptive: bool = True,
    scheduler: str = "stream",
    server_pool=None,
    cost_store: Optional[CostModelStore] = None,
):
    """Run the campaign to completion; see
    :func:`repro.campaign.run_campaign`.  Arguments are pre-validated by
    the public wrapper.  The fold loop itself lives in
    :class:`CampaignRun` so embedders can drive (and cancel) it
    incrementally; this drains it."""
    run = CampaignRun(
        prog,
        engine=engine,
        steps=steps,
        max_cases=max_cases,
        plateau_patience=plateau_patience,
        base_seed=base_seed,
        options=options,
        workers=workers,
        mode=mode,
        cache=cache,
        timeout_seconds=timeout_seconds,
        retries=retries,
        batch_size=batch_size,
        serve=serve,
        inproc=inproc,
        threads=threads,
        window=window,
        adaptive=adaptive,
        scheduler=scheduler,
        server_pool=server_pool,
        cost_store=cost_store,
    )
    for _ in run.cases():
        pass
    return run.outcome


def _cost_observer(
    cost_store: CostModelStore,
    opts: SimulationOptions,
    key: str,
    actors: int,
    *,
    mode: str,
) -> "Optional[Callable[[JobResult], None]]":
    """Fold observed execute timings back into the persistent model.

    The inproc-threads executor observes internally (per shard, with the
    group's own key), so the campaign skips it there to avoid counting
    every case twice.
    """
    if mode == "inproc-threads":
        return None

    def observe(job_result: JobResult) -> None:
        seconds = job_result.timings.get("execute", 0.0)
        if seconds:
            cost_store.observe(key, opts.steps, actors, seconds)

    return observe

"""Campaign execution: waves of seeded jobs, deterministic merge.

This is the engine room behind :func:`repro.campaign.run_campaign`.
Seeds are dispatched in waves of ``workers`` jobs; however the pool
interleaves their completion, each wave's results are folded into the
outcome **in seed order**, so the merged coverage report, the per-case
new-point counts, the first-exposing-seed attribution of every
diagnostic, and the saturation verdict are byte-identical between
``workers=1`` and ``workers=N`` — the plateau criterion is evaluated on
the ordered merge, exactly as the serial loop would.

When saturation lands mid-wave, the remaining results of that wave are
discarded (their work is wasted, bounded by ``workers - 1`` cases —
the price of speculation), keeping parallel outcomes identical to
serial ones.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Union

from repro import telemetry
from repro.coverage.metrics import ALL_METRICS
from repro.coverage.report import CoverageReport
from repro.engines.base import SimulationOptions
from repro.model.errors import SimulationError
from repro.runner.jobs import SimulationJob
from repro.runner.pool import run_jobs
from repro.schedule.program import FlatProgram

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache


def resolve_threads(
    threads: Optional[int], *, engine: str
) -> int:
    """Resolve the campaign ``threads`` knob to a concrete count.

    ``None``/``0`` means auto: thread-parallel in-process execution when
    it can actually engage — the AccMoS engine with a toolchain that
    builds loadable shared objects — sized to the core count (capped at
    4: the shard merge and decode are serial Python, so returns diminish
    past a handful of C loops).  Everything else resolves to 1.
    """
    if threads:
        return max(1, int(threads))
    if engine != "accmos":
        return 1
    from repro.codegen.driver import supports_shared_objects

    if supports_shared_objects() is not True:
        return 1
    return max(1, min(4, os.cpu_count() or 1))


def execute_campaign(
    prog: FlatProgram,
    *,
    engine: str,
    steps: int,
    max_cases: int,
    plateau_patience: int,
    base_seed: int,
    options: Optional[SimulationOptions],
    workers: int = 1,
    mode: str = "thread",
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    batch_size: int = 1,
    serve: bool = False,
    inproc: bool = False,
    threads: Optional[int] = 1,
):
    """Run the campaign; see :func:`repro.campaign.run_campaign`.

    Arguments are pre-validated by the public wrapper.
    """
    from repro.campaign import CampaignOutcome

    opts = options or SimulationOptions(steps=steps)
    outcome = CampaignOutcome(merged=None)  # type: ignore[arg-type]

    # Thread-parallel in-process execution replaces the worker pool
    # wholesale: waves route to run_jobs(mode="inproc-threads"), which
    # runs same-key groups on `threads` private library instances inside
    # this process.  The server/spawn rungs stay reachable through the
    # executor's own fault ladder, so the serve/inproc knobs (which
    # configure the pooled dispatchers) are moot here.
    threads = resolve_threads(threads, engine=engine)
    if threads > 1 and engine == "accmos":
        mode = "inproc-threads"
        workers = threads
        serve = False
        inproc = False

    # One warm-server pool for the whole campaign (thread/inline mode):
    # servers survive across waves, so the steady state respawns
    # nothing.  Process mode keeps pools inside the worker processes
    # instead; their counter deltas ride back on the JobResults.
    serve = serve and engine == "accmos" and batch_size > 1
    # The in-process rung shares the batching gate: it only pays off
    # (and only applies) when batches of accmos cases share an artifact.
    inproc = inproc and engine == "accmos" and batch_size > 1
    server_pool = None
    if serve and mode != "process":
        from repro.runner.servers import ServerPool

        server_pool = ServerPool(max_servers=max(workers * 2, 4))

    try:
        with telemetry.span(
            "campaign", model=prog.model.name, engine=engine,
            max_cases=max_cases, workers=workers, mode=mode,
            batch_size=batch_size, serve=serve, inproc=inproc,
            threads=threads,
        ) as campaign_span:
            _campaign_waves(
                prog, outcome, opts,
                engine=engine, max_cases=max_cases,
                plateau_patience=plateau_patience, base_seed=base_seed,
                workers=workers, mode=mode, cache=cache,
                timeout_seconds=timeout_seconds, retries=retries,
                batch_size=batch_size, serve=serve, inproc=inproc,
                server_pool=server_pool,
            )
            campaign_span.set(
                cases=len(outcome.cases), saturated=outcome.saturated
            )
    finally:
        if server_pool is not None:
            from repro.runner.servers import merge_server_stats

            outcome.server_stats = merge_server_stats(
                outcome.server_stats, server_pool.stats()
            )
            server_pool.close()
    telemetry.counter_inc("campaign.runs")
    telemetry.counter_inc("campaign.cases", len(outcome.cases))
    return outcome


def _campaign_waves(
    prog: FlatProgram,
    outcome,
    opts: SimulationOptions,
    *,
    engine: str,
    max_cases: int,
    plateau_patience: int,
    base_seed: int,
    workers: int,
    mode: str,
    cache,
    timeout_seconds: Optional[float],
    retries: int,
    batch_size: int = 1,
    serve: bool = False,
    inproc: bool = False,
    server_pool=None,
) -> None:
    """The wave loop, folding results into ``outcome`` in seed order."""
    from repro.campaign import CaseOutcome

    merged: Optional[CoverageReport] = None
    seen_diagnostics: set[tuple[str, str]] = set()
    dry_streak = 0
    # With batching, each worker slot chews through batch_size cases per
    # process spawn, so a wave carries workers * batch_size seeds.  The
    # speculation bound at mid-wave saturation grows accordingly.
    wave = max(1, workers) * max(1, batch_size)
    index = 0
    while index < max_cases and not outcome.saturated:
        seeds = [
            base_seed + i for i in range(index, min(index + wave, max_cases))
        ]
        index += len(seeds)
        results = run_jobs(
            [
                SimulationJob(prog=prog, seed=seed, engine=engine, options=opts)
                for seed in seeds
            ],
            workers=workers,
            mode=mode,
            cache=cache,
            timeout_seconds=timeout_seconds,
            retries=retries,
            batch_size=batch_size,
            serve=serve,
            inproc=inproc,
            server_pool=server_pool,
        )

        # Process-mode chunks ship their worker pool's counter deltas;
        # fold them before the merge (discarded-on-saturation results
        # still ran, so their counters still count).
        if serve:
            from repro.runner.servers import merge_server_stats

            for job_result in results:
                if job_result.server_stats:
                    outcome.server_stats = merge_server_stats(
                        outcome.server_stats, job_result.server_stats
                    )

        # Ordered merge: fold strictly in seed order, stop at saturation.
        for job_result in results:
            if not job_result.ok:
                if job_result.exception is not None:
                    raise job_result.exception
                raise SimulationError(
                    f"campaign case seed={job_result.seed} "
                    f"{job_result.outcome}: {job_result.error}"
                )
            result = job_result.result
            if result.coverage is None:
                raise ValueError(f"engine {engine!r} collects no coverage")

            if merged is None:
                merged = CoverageReport.empty(result.coverage.points)
            before = {
                m: merged.bitmaps[m].count() for m in ALL_METRICS
            }
            merged.merge(result.coverage)
            by_metric = {
                m: merged.bitmaps[m].count() - before[m] for m in ALL_METRICS
            }
            new_points = sum(by_metric.values())

            fresh = 0
            for event in result.diagnostics:
                key = (event.path, event.kind.value)
                if key not in seen_diagnostics:
                    seen_diagnostics.add(key)
                    outcome.diagnostics.append((event, job_result.seed))
                    fresh += 1

            outcome.cases.append(
                CaseOutcome(
                    seed=job_result.seed,
                    steps_run=result.steps_run,
                    wall_time=result.wall_time,
                    new_points=new_points,
                    n_diagnostics=fresh,
                    new_points_by_metric=by_metric,
                    timings=dict(job_result.timings),
                    cache_hit=job_result.cache_hit,
                )
            )

            dry_streak = dry_streak + 1 if new_points == 0 else 0
            if dry_streak >= plateau_patience:
                outcome.saturated = True
                break  # later results of this wave are discarded

    outcome.merged = merged

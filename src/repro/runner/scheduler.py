"""Streaming, work-conserving campaign scheduling.

The wave loop in :mod:`repro.runner.campaign` dispatches ``workers ×
batch_size`` seeds as one synchronized wave and blocks until the slowest
case returns: one long case idles every other worker for the tail of
each wave, and a mid-wave saturation throws away up to a full wave of
speculated work.  This module replaces the barrier with three
cooperating pieces:

* :class:`ReorderBuffer` — completion order in, seed order out.  The
  campaign merge *must* fold results in seed order (that is what makes
  parallel campaigns byte-identical to serial ones), but workers finish
  in whatever order the machine pleases; the buffer holds early
  finishers and releases a result the moment everything before it has
  landed.  Its depth is bounded by the in-flight window.
* :class:`ThroughputController` — a hill-climbing feedback controller
  that tunes ``batch_size`` and the in-flight window from observed
  cases/sec and worker utilization.  Changes are evaluated one epoch
  later: a change that regressed throughput beyond the hysteresis band
  is reverted and the search direction flips.  Knobs the caller fixed
  explicitly are never touched.
* :class:`StreamScheduler` — the work-conserving dispatcher.  It keeps
  a bounded window of cases in flight, submits a new chunk the moment
  capacity frees up (no barrier, ever), routes predicted-long cases to
  a capped number of worker slots so short cases are never head-of-line
  blocked behind them (cost predictions come from the persistent
  :class:`~repro.runner.costmodel.CostModelStore`), and yields results
  in seed order for the consumer to fold.  When the consumer stops
  early (saturation), only the work already in flight is wasted —
  strictly less than the wave loop's worst case, and counted rather
  than silently burned (``campaign.speculated_cases``).

Invariants the rest of the stack relies on:

* **Byte-identity** — chunk membership, window depth, batch size, and
  admission order change *scheduling* only; each case's result is
  produced by the same per-case execution ladder as always, and results
  are folded strictly in seed order, so the merged coverage, per-case
  new-point counts, diagnostic attribution, and the saturation verdict
  are identical to the serial loop for every window/batch/worker
  combination.
* **No deadlock** — the chunk containing the fold frontier (the next
  seed the consumer needs) is always admissible: when nothing else is
  running or ready, it is submitted regardless of the window bound or
  the long-slot cap.
* **Work conservation** — while unsubmitted cases remain and the window
  has room, a completion is immediately followed by a submission.

Telemetry (enabled sessions only): ``campaign.scheduler.in_flight``
gauge, ``campaign.scheduler.reorder_depth`` histogram,
``campaign.scheduler.utilization`` gauge, and the
``campaign.speculated_cases`` counter.  The same numbers are always
available process-locally via the stats dict :meth:`StreamScheduler.
finish` returns (surfaced as ``CampaignOutcome.scheduler_stats`` and in
the CLI's ``--timings`` report).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence, Union

from repro import telemetry
from repro.runner.costmodel import (
    CostModelStore,
    cost_key,
    default_cost_store,
    plan_chunks,
)
from repro.runner.jobs import (
    JobResult,
    SimulationJob,
    batch_key,
    run_job_batch,
)

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache

# A case predicted to cost more than this multiple of the median is
# "long" and routed to the capped long slots.
LONG_COST_RATIO = 2.0


class ReorderBuffer:
    """Completion order in, submission (seed) order out.

    ``push(index, item)`` files one out-of-order arrival and returns the
    — possibly empty — run of items that just became releasable: the
    contiguous prefix starting at the current frontier.  Indices are the
    0-based submission positions; each must be pushed exactly once.

    The two ways a push can be invalid get *distinct* errors — a
    duplicate of a still-held index ("pushed twice") versus an index
    below the frontier ("already released") — because the campaign
    service surfaces these to users on its cancel path, where "a result
    arrived after its seed was folded and discarded" and "the same
    result arrived twice" call for very different debugging.
    """

    def __init__(self, start: int = 0) -> None:
        self._held: dict[int, object] = {}
        self.next_index = start
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._held)

    @property
    def depth(self) -> int:
        return len(self._held)

    def push(self, index: int, item) -> "list[tuple[int, object]]":
        if index < self.next_index:
            raise ValueError(
                f"index {index} is below the frontier {self.next_index} "
                "(already released)"
            )
        if index in self._held:
            raise ValueError(f"index {index} pushed twice")
        self._held[index] = item
        self.max_depth = max(self.max_depth, len(self._held))
        released: "list[tuple[int, object]]" = []
        while self.next_index in self._held:
            released.append(
                (self.next_index, self._held.pop(self.next_index))
            )
            self.next_index += 1
        return released


class ThroughputController:
    """Hill-climb ``batch_size`` and window depth with hysteresis.

    The controller observes fold progress (cases/sec) and worker
    utilization over epochs of ``epoch_cases`` folded cases.  Each epoch
    it may propose one change: grow the window while workers sit idle
    (utilization below target), otherwise step one knob in its current
    search direction (window by ± ``workers`` cases, batch by doubling /
    halving).  The *next* epoch judges the change: throughput dropping
    more than ``hysteresis`` below the best seen reverts it and flips
    that knob's direction — so the controller oscillates around the
    optimum instead of walking away from it.  Knobs with ``tune_* =
    False`` (the caller passed an explicit value) are never modified.

    The default epoch is large enough that short campaigns — the test
    suite's, for instance — finish before the first adjustment: auto
    tuning is a long-campaign optimization and must never perturb small
    deterministic runs.
    """

    def __init__(
        self,
        *,
        batch_size: int,
        window: int,
        workers: int,
        tune_batch: bool = True,
        tune_window: bool = True,
        epoch_cases: Optional[int] = None,
        hysteresis: float = 0.15,
        min_batch: int = 1,
        max_batch: int = 64,
        min_window: Optional[int] = None,
        max_window: Optional[int] = None,
        utilization_target: float = 0.85,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.batch_size = max(1, int(batch_size))
        self.window = max(1, int(window))
        self.workers = max(1, int(workers))
        self.tune_batch = tune_batch
        self.tune_window = tune_window
        self.hysteresis = float(hysteresis)
        self.min_batch = max(1, min_batch)
        self.max_batch = max(self.min_batch, max_batch)
        self.min_window = max(1, self.workers if min_window is None else min_window)
        self.max_window = (
            max(64, 4 * self.workers * self.max_batch)
            if max_window is None
            else max_window
        )
        self.utilization_target = float(utilization_target)
        self.epoch_cases = (
            max(16, 2 * self.workers * self.batch_size)
            if epoch_cases is None
            else max(1, epoch_cases)
        )
        self._clock = clock
        self._epoch_time: Optional[float] = None
        self._epoch_folded = 0
        self._epoch_busy = 0.0
        self._best = 0.0
        self._pending: Optional[tuple[str, int]] = None
        self._direction = {"window": 1, "batch": 1}
        self._round_robin = 0
        self.window_adjustments = 0
        self.batch_adjustments = 0
        self.reverts = 0
        self.last_throughput = 0.0
        self.last_utilization = 0.0

    @property
    def adaptive(self) -> bool:
        return self.tune_batch or self.tune_window

    def on_fold(self, folded: int, busy_seconds: float) -> None:
        """Account one folded case; may adjust knobs at epoch boundaries."""
        now = self._clock()
        if self._epoch_time is None:
            self._epoch_time = now
            self._epoch_folded = folded
            self._epoch_busy = busy_seconds
            return
        if folded - self._epoch_folded < self.epoch_cases:
            return
        elapsed = now - self._epoch_time
        if elapsed <= 0.0:
            return
        throughput = (folded - self._epoch_folded) / elapsed
        utilization = min(
            1.0, (busy_seconds - self._epoch_busy) / (self.workers * elapsed)
        )
        self.last_throughput = throughput
        self.last_utilization = utilization
        self._epoch_time = now
        self._epoch_folded = folded
        self._epoch_busy = busy_seconds
        if self.adaptive:
            self._judge_and_propose(throughput, utilization)

    # -- hill-climb core -------------------------------------------------
    def _judge_and_propose(self, throughput: float, utilization: float) -> None:
        if self._pending is not None:
            knob, previous = self._pending
            self._pending = None
            if throughput < self._best * (1.0 - self.hysteresis):
                # The change regressed throughput: undo it, search the
                # other way next time this knob comes up.
                self._apply(knob, previous, count=False)
                self._direction[knob] *= -1
                self.reverts += 1
                return  # let the revert settle for one epoch
        self._best = max(self._best, throughput)

        if self.tune_window and utilization < self.utilization_target:
            # Idle workers with a full pipeline usually means the window
            # is too shallow to cover completion jitter: deepen it.
            if self._propose("window", 1):
                return
        knob = self._next_knob()
        if knob is not None:
            self._propose(knob, self._direction[knob])

    def _next_knob(self) -> Optional[str]:
        knobs = [
            name
            for name, enabled in (
                ("window", self.tune_window),
                ("batch", self.tune_batch),
            )
            if enabled
        ]
        if not knobs:
            return None
        knob = knobs[self._round_robin % len(knobs)]
        self._round_robin += 1
        return knob

    def _propose(self, knob: str, direction: int) -> bool:
        current = self.window if knob == "window" else self.batch_size
        if knob == "window":
            step = max(1, self.workers)
            target = current + direction * step
            target = max(self.min_window, min(self.max_window, target))
        else:
            target = current * 2 if direction > 0 else current // 2
            target = max(self.min_batch, min(self.max_batch, target))
        if target == current:
            # Pinned against a bound: search the other way from now on.
            self._direction[knob] = -direction
            return False
        self._pending = (knob, current)
        self._apply(knob, target, count=True)
        return True

    def _apply(self, knob: str, value: int, *, count: bool) -> None:
        if knob == "window":
            self.window = value
            if count:
                self.window_adjustments += 1
        else:
            self.batch_size = value
            if count:
                self.batch_adjustments += 1


class StreamScheduler:
    """Bounded-window streaming dispatcher with seed-ordered delivery.

    Drive it like this::

        scheduler = StreamScheduler(jobs, workers=8, mode="thread")
        try:
            for job_result in scheduler.results():  # seed order
                if fold(job_result):
                    scheduler.stop()   # e.g. coverage saturated
                    break
        finally:
            stats = scheduler.finish()

    ``mode`` is the pool mode of :func:`repro.runner.pool.run_jobs`:
    ``"thread"`` (chunks on worker threads sharing this process's cache
    and server pool), ``"process"`` (chunks in worker processes; their
    cache / telemetry / server-stat deltas are absorbed exactly as the
    pooled dispatcher does), or ``"inproc-threads"`` (chunks of
    ``workers × batch`` cases run by the thread-parallel in-process
    executor, one chunk at a time — the chunk is internally parallel).

    The scheduler never reorders *results*: whatever completion order
    the machine produces, the consumer sees seed order, so folding is
    byte-identical to the serial loop by construction.
    """

    def __init__(
        self,
        jobs: Sequence[SimulationJob],
        *,
        workers: int = 1,
        mode: str = "thread",
        window: Optional[int] = None,
        batch_size: int = 1,
        adaptive: bool = False,
        tune_batch: Optional[bool] = None,
        tune_window: Optional[bool] = None,
        cache: "Union[ArtifactCache, None, bool]" = None,
        timeout_seconds: Optional[float] = None,
        retries: int = 1,
        backoff_seconds: float = 0.05,
        serve: bool = False,
        inproc: bool = False,
        server_pool=None,
        cost_store: Optional[CostModelStore] = None,
        observe_costs: bool = True,
        on_server_stats: Optional[Callable[[dict], None]] = None,
        controller: Optional[ThroughputController] = None,
    ) -> None:
        if mode not in ("thread", "process", "inproc-threads"):
            raise ValueError(
                "mode must be 'thread', 'process', or 'inproc-threads', "
                f"not {mode!r}"
            )
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if window is not None and window < 1:
            raise ValueError("window must be at least 1")
        self._jobs = list(jobs)
        self._total = len(self._jobs)
        self._mode = mode
        self._workers = workers
        self._cache = cache
        self._timeout_seconds = timeout_seconds
        self._retries = retries
        self._backoff_seconds = backoff_seconds
        self._serve = serve
        self._inproc = inproc
        self._own_pool = None
        if serve and mode == "thread" and server_pool is None:
            from repro.runner.servers import ServerPool

            self._own_pool = server_pool = ServerPool(
                max_servers=max(workers * 2, 4)
            )
        self._server_pool = server_pool
        self._on_server_stats = on_server_stats

        if controller is not None:
            self._controller = controller
        else:
            initial_window = (
                self._auto_window(workers, batch_size, mode)
                if window is None
                else window
            )
            self._controller = ThroughputController(
                batch_size=batch_size,
                window=initial_window,
                workers=workers,
                tune_batch=adaptive if tune_batch is None else tune_batch,
                tune_window=(
                    (adaptive and window is None)
                    if tune_window is None
                    else tune_window
                ),
            )
        self.initial_window = self._controller.window
        self.initial_batch = self._controller.batch_size

        # One chunk at a time when the chunk itself is the parallel unit
        # (inproc-threads shards internally) or there is only one worker
        # slot: chunks then run inline on the driving thread, keeping
        # serial campaigns genuinely serial (zero pool threads, zero
        # speculation beyond the open chunk).
        self._chunk_concurrency = (
            1 if mode == "inproc-threads" else max(1, workers)
        )

        # Cost-aware admission: predict each case once up front and
        # class the expensive tail as "long".  With a cold model every
        # prediction is equal, so nothing is classified long and
        # admission degenerates to plain FIFO — exactly the safe default.
        self._cost_store = cost_store
        self._observe_costs = observe_costs and cost_store is not None
        self._keys = [batch_key(job) for job in self._jobs]
        self._sizes = [
            (job.resolved_options().steps, len(job.prog.actors))
            for job in self._jobs
        ]
        self._cost_keys = [
            cost_key(job.engine, job.prog, job.resolved_options())
            for job in self._jobs
        ]
        self._costs = self._predict_costs()
        self._is_long = self._classify_long(self._costs)
        self._long_cap = max(1, workers // 2)
        self._long_running = 0
        # Cost-packed chunk plans: index -> its planned chunk.  Built
        # lazily per (key, cost-class) group when predictions vary, so
        # pooled chunks equalize predicted worker wall-clock instead of
        # packing greedily by arrival.  Invalidated whenever the cost
        # store's penalty generation moves (e.g. a flapping server
        # demoted its artifact) — stale plans would fight the fresh
        # classification.
        self._planned_chunks: "dict[int, list[int]]" = {}
        self._packed_chunks = 0
        self._cost_generation = (
            cost_store.generation if cost_store is not None else 0
        )

        self._pending: "list[int]" = list(range(self._total))
        self._reorder = ReorderBuffer()
        self._ready: "deque[JobResult]" = deque()
        self._futures: dict = {}
        self._executor = None
        self._stopped = False
        self._in_flight_cases = 0
        self._max_in_flight = 0
        self._submitted_cases = 0
        self._cancelled_cases = 0
        self._folded_cases = 0
        self._chunks_submitted = 0
        self._long_chunks = 0
        self._busy_seconds = 0.0
        self._busy_lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._finished = False
        self._prewarmed = False

        # Process mode ships chunks to a module-level entry point (the
        # scheduler itself holds locks and cannot cross the pickle
        # boundary); the workers' cache/telemetry deltas are absorbed
        # here when their chunks complete.
        self._resolved_cache = None
        self._cache_root: Optional[str] = None
        self._cache_max_bytes: Optional[int] = None
        if mode == "process":
            from repro.runner.cache import default_cache

            resolved = default_cache() if cache is None else (cache or None)
            self._resolved_cache = resolved
            if resolved is not None:
                self._cache_root = str(resolved.root)
                self._cache_max_bytes = resolved.max_bytes

        session = telemetry.active()
        self._session = session
        self._tracer = session.tracer if session is not None else None
        parent = telemetry.current_span()
        self._parent_span_id = getattr(parent, "span_id", None)

    # -- sizing ----------------------------------------------------------
    @staticmethod
    def _auto_window(workers: int, batch_size: int, mode: str) -> int:
        # Enough depth that every worker slot holds one full chunk; the
        # controller grows it further if utilization says so.
        return max(workers, workers * max(1, batch_size))

    def _chunk_cases(self) -> int:
        batch = max(1, self._controller.batch_size)
        if self._mode == "inproc-threads":
            # The chunk is sharded across `workers` threads internally.
            return batch * max(1, self._workers)
        return batch

    def _predict_costs(self) -> "Optional[list[float]]":
        if self._cost_store is None or self._total < 2:
            return None
        return [
            self._cost_store.predict(key, steps, actors)
            for key, (steps, actors) in zip(self._cost_keys, self._sizes)
        ]

    def _classify_long(
        self, costs: "Optional[list[float]]"
    ) -> "list[bool]":
        if costs is None:
            return [False] * self._total
        ordered = sorted(costs)
        median = ordered[len(ordered) // 2]
        if median <= 0.0 or max(costs) <= median * LONG_COST_RATIO:
            return [False] * self._total
        return [cost > median * LONG_COST_RATIO for cost in costs]

    def _refresh_costs(self) -> None:
        """Re-predict and re-classify when the cost store's penalty
        generation moved mid-run (a flapping server demoted its
        artifact): not-yet-submitted cases of that artifact re-route to
        the capped long slots, and stale chunk plans are dropped."""
        if self._cost_store is None:
            return
        generation = self._cost_store.generation
        if generation == self._cost_generation:
            return
        self._cost_generation = generation
        self._costs = self._predict_costs()
        self._is_long = self._classify_long(self._costs)
        self._planned_chunks.clear()

    # -- public surface --------------------------------------------------
    @property
    def window(self) -> int:
        return self._controller.window

    @property
    def batch_size(self) -> int:
        return self._controller.batch_size

    def stop(self) -> None:
        """Stop submitting and delivering; call :meth:`finish` next."""
        self._stopped = True

    def results(self) -> Iterator[JobResult]:
        """Yield every job's result in submission (seed) order.

        Stops early when :meth:`stop` was called.  Chunk-level
        infrastructure failures (a worker process dying mid-pickle, an
        executor fault) propagate; per-case simulation failures do not —
        they come back as failed :class:`JobResult`\\ s for the consumer
        to judge, same as the pool API.
        """
        if self._started_at is None:
            self._started_at = time.perf_counter()
        self._prewarm()
        while not self._stopped:
            while self._ready and not self._stopped:
                result = self._ready.popleft()
                self._in_flight_cases -= 1
                self._folded_cases += 1
                with self._busy_lock:
                    busy = self._busy_seconds
                self._controller.on_fold(self._folded_cases, busy)
                yield result
            if self._stopped or self._folded_cases >= self._total:
                break
            self._fill()
            if self._ready:
                continue  # inline chunks complete synchronously
            if self._futures:
                self._drain_completions(block=True)
            elif not self._pending:
                break  # nothing pending, nothing running: drained

    def finish(self) -> dict:
        """Drain in-flight work, account speculation, release the pool.

        Idempotent; always call it (``finally``) after :meth:`results`.
        Returns the scheduler stats dict.
        """
        if self._finished:
            return self._stats()
        self._finished = True
        self._stopped = True
        for future in list(self._futures):
            if future.cancel():
                chunk, is_long = self._futures.pop(future)
                self._cancelled_cases += len(chunk)
                self._submitted_cases -= len(chunk)
                self._in_flight_cases -= len(chunk)
                if is_long:
                    self._long_running -= 1
        while self._futures:
            # Completed-but-unfolded work is speculation waste: it ran,
            # its side effects (cache/server/telemetry counters) are
            # real and get absorbed, but its results are discarded.
            self._drain_completions(block=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._own_pool is not None:
            if self._on_server_stats is not None:
                self._on_server_stats(self._own_pool.stats())
            self._own_pool.close()
            self._own_pool = None
        stats = self._stats()
        if stats["speculated"]:
            telemetry.counter_inc(
                "campaign.speculated_cases", stats["speculated"]
            )
        telemetry.gauge_set(
            "campaign.scheduler.utilization", stats["utilization"]
        )
        telemetry.gauge_set("campaign.scheduler.in_flight", 0)
        return stats

    def _stats(self) -> dict:
        elapsed = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        utilization = (
            min(1.0, self._busy_seconds / (self._workers * elapsed))
            if elapsed > 0
            else 0.0
        )
        return {
            "scheduler": "stream",
            "mode": self._mode,
            "workers": self._workers,
            "window": self._controller.window,
            "batch_size": self._controller.batch_size,
            "initial_window": self.initial_window,
            "initial_batch": self.initial_batch,
            "submitted": self._submitted_cases,
            "folded": self._folded_cases,
            "speculated": max(
                0, self._submitted_cases - self._folded_cases
            ),
            "cancelled": self._cancelled_cases,
            "chunks": self._chunks_submitted,
            "long_chunks": self._long_chunks,
            "cost_packed_chunks": self._packed_chunks,
            "max_in_flight": self._max_in_flight,
            "max_reorder_depth": self._reorder.max_depth,
            "utilization": utilization,
            "busy_seconds": self._busy_seconds,
            "elapsed_seconds": elapsed,
            "throughput": (
                self._folded_cases / elapsed if elapsed > 0 else 0.0
            ),
            "window_adjustments": self._controller.window_adjustments,
            "batch_adjustments": self._controller.batch_adjustments,
            "controller_reverts": self._controller.reverts,
        }

    # -- admission -------------------------------------------------------
    def _prewarm(self) -> None:
        """One ``compile_model`` per distinct key before parallel fan-out.

        Same rationale (and same behavior) as the pooled batched
        dispatcher: the artifact cache has no per-key compile lock, so
        concurrent cold-cache chunks would race into redundant gcc runs.
        Serial dispatch (chunk concurrency 1) needs no warming — the
        first chunk *is* the warmer.
        """
        if (
            self._prewarmed
            or self._chunk_concurrency <= 1
            or self._cache is False
        ):
            self._prewarmed = True
            return
        self._prewarmed = True
        from repro.engines.accmos import compile_model

        warmed: set = set()
        for index, job in enumerate(self._jobs):
            key = self._keys[index]
            if key is None or key in warmed:
                continue
            warmed.add(key)
            try:
                compile_model(
                    job.prog, job.resolved_options(), cache=self._cache,
                    artifact="shared" if self._use_shared(job) else "binary",
                )
            except Exception:
                pass  # the chunk path reports compile failures properly

    def _use_shared(self, job: SimulationJob) -> bool:
        return self._inproc or self._mode == "inproc-threads"

    def _fill(self) -> None:
        """Submit chunks until the window is full (or pending is empty).

        The frontier chunk — the one holding the next seed the consumer
        must fold — is exempt from both the window bound and the
        long-slot cap whenever nothing else can make progress; that is
        the no-deadlock invariant.
        """
        self._refresh_costs()
        while self._pending and not self._stopped:
            can_progress = bool(self._futures) or bool(self._ready)
            if self._in_flight_cases < self._controller.window:
                chunk = self._take_chunk()
                if chunk is None and not can_progress:
                    chunk = self._take_chunk(require_frontier=True)
            elif can_progress:
                break
            else:
                chunk = self._take_chunk(require_frontier=True)
            if chunk is None:
                break
            self._submit(chunk)
            if self._chunk_concurrency == 1:
                break  # inline: fold before opening the next chunk

    def _take_chunk(self, require_frontier: bool = False) -> "Optional[list[int]]":
        if not self._pending:
            return None
        start_pos = 0
        if not require_frontier and self._long_running >= self._long_cap:
            # Long slots saturated: admit the first short case instead,
            # so the short stream keeps flowing past the long tail.
            start_pos = next(
                (
                    pos
                    for pos, index in enumerate(self._pending)
                    if not self._is_long[index]
                ),
                None,
            )
            if start_pos is None:
                return None  # only longs left: wait for a slot
        start = self._pending[start_pos]
        planned = self._planned_chunks.get(start)
        if planned is None:
            planned = self._plan_group(start_pos)
        if planned is not None:
            for index in planned:
                self._planned_chunks.pop(index, None)
            members = set(planned)
            self._pending = [
                index for index in self._pending if index not in members
            ]
            self._packed_chunks += 1
            return planned
        key = self._keys[start]
        long = self._is_long[start]
        limit = self._chunk_cases()
        chunk = [start]
        taken = [start_pos]
        if key is not None and limit > 1:
            for pos in range(start_pos + 1, len(self._pending)):
                if len(chunk) >= limit:
                    break
                index = self._pending[pos]
                # Same compiled unit, same cost class: a long rider in a
                # short chunk would re-create head-of-line blocking.
                if self._keys[index] == key and self._is_long[index] == long:
                    chunk.append(index)
                    taken.append(pos)
        for pos in reversed(taken):
            del self._pending[pos]
        return chunk

    def _plan_group(self, start_pos: int) -> "Optional[list[int]]":
        """Cost-pack the pending group around ``self._pending[start_pos]``.

        When predictions vary inside a (compile key, cost class) group,
        greedy arrival packing gives every chunk the same *count* but
        wildly different predicted cost — and one chunk occupies one
        pooled worker slot, so chunk-cost skew is worker wall-clock
        skew.  This plans the next ``chunk_cases × concurrency`` group
        members into cost-equalized chunks via
        :func:`~repro.runner.costmodel.plan_chunks` (best-of LPT /
        round-robin, never predicted worse than round-robin), registers
        every planned chunk, and returns the one containing the start
        case.  Uniform predictions — the cold-model default and the
        single-model steady state — return None: greedy arrival packing
        is already balanced there, and singleton dispatch overheads
        aren't worth re-chunking for.
        """
        if self._costs is None or self._chunk_concurrency <= 1:
            return None
        limit = self._chunk_cases()
        if limit <= 1:
            return None
        start = self._pending[start_pos]
        key = self._keys[start]
        if key is None:
            return None
        long = self._is_long[start]
        horizon = limit * self._chunk_concurrency
        group = [start]
        for pos in range(start_pos + 1, len(self._pending)):
            if len(group) >= horizon:
                break
            index = self._pending[pos]
            if (
                self._keys[index] == key
                and self._is_long[index] == long
                and index not in self._planned_chunks
            ):
                group.append(index)
        if len(group) <= 1:
            return None
        costs = [self._costs[index] for index in group]
        if min(costs) == max(costs):
            return None
        chunks = plan_chunks(
            costs, min(self._chunk_concurrency, len(group)), limit
        )
        start_chunk: "Optional[list[int]]" = None
        for local_chunk in chunks:
            chunk = [group[local] for local in local_chunk]
            if start in chunk:
                start_chunk = chunk
            else:
                for index in chunk:
                    self._planned_chunks[index] = chunk
        return start_chunk

    # -- execution -------------------------------------------------------
    def _submit(self, chunk: "list[int]") -> None:
        is_long = self._is_long[chunk[0]]
        self._submitted_cases += len(chunk)
        self._in_flight_cases += len(chunk)
        self._max_in_flight = max(self._max_in_flight, self._in_flight_cases)
        self._chunks_submitted += 1
        if is_long:
            self._long_running += 1
            self._long_chunks += 1
        telemetry.gauge_set(
            "campaign.scheduler.in_flight", self._in_flight_cases
        )
        chunk_jobs = [self._jobs[i] for i in chunk]
        if self._chunk_concurrency == 1:
            try:
                results = self._run_chunk(chunk_jobs)
            finally:
                if is_long:
                    self._long_running -= 1
            self._absorb(chunk, results)
            return
        if self._mode == "process":
            from repro.runner.pool import _run_chunk_in_process

            future = self._pool().submit(
                _run_chunk_in_process,
                chunk_jobs, self._cache_root, self._cache_max_bytes,
                self._timeout_seconds, self._retries, self._backoff_seconds,
                self._session is not None, self._serve, self._inproc,
            )
        else:
            future = self._pool().submit(self._run_chunk_worker, chunk_jobs)
        self._futures[future] = (chunk, is_long)

    def _pool(self):
        if self._executor is None:
            if self._mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self._chunk_concurrency
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._chunk_concurrency,
                    thread_name_prefix="accmos-stream",
                )
        return self._executor

    def _run_chunk(self, chunk_jobs: "list[SimulationJob]") -> "list[JobResult]":
        start = time.perf_counter()
        try:
            if self._mode == "inproc-threads":
                from repro.runner.inproc_threads import run_jobs_inproc_threads

                return run_jobs_inproc_threads(
                    chunk_jobs,
                    threads=self._workers,
                    cache=self._cache,
                    timeout_seconds=self._timeout_seconds,
                    retries=self._retries,
                    backoff_seconds=self._backoff_seconds,
                )
            return run_job_batch(
                chunk_jobs,
                cache=self._cache,
                timeout_seconds=self._timeout_seconds,
                retries=self._retries,
                backoff_seconds=self._backoff_seconds,
                server_pool=self._server_pool,
                inproc=self._inproc,
            )
        finally:
            elapsed = time.perf_counter() - start
            with self._busy_lock:
                # In inproc-threads mode the chunk occupied all worker
                # threads, not one slot.
                factor = self._workers if self._mode == "inproc-threads" else 1
                self._busy_seconds += elapsed * factor

    def _run_chunk_worker(
        self, chunk_jobs: "list[SimulationJob]"
    ) -> "list[JobResult]":
        # Worker threads have an empty span stack; adopt the caller's
        # span so job spans nest under the campaign.
        if self._tracer is None:
            return self._run_chunk(chunk_jobs)
        with self._tracer.adopt(self._parent_span_id):
            return self._run_chunk(chunk_jobs)

    # -- completion ------------------------------------------------------
    def _drain_completions(self, block: bool) -> None:
        if not self._futures:
            return
        done, _ = wait(
            self._futures,
            timeout=None if block else 0.0,
            return_when=FIRST_COMPLETED,
        )
        for future in done:
            chunk, is_long = self._futures.pop(future)
            if is_long:
                self._long_running -= 1
            try:
                results = future.result()
            except CancelledError:
                self._cancelled_cases += len(chunk)
                self._submitted_cases -= len(chunk)
                self._in_flight_cases -= len(chunk)
                continue
            self._absorb(chunk, results)

    def _absorb(self, chunk: "list[int]", results: "list[JobResult]") -> None:
        """File one completed chunk: side stats, cost feedback, reorder."""
        if self._mode == "process":
            # Worker processes can't share clocks with the dispatcher;
            # their reported per-phase timings are the busy proxy.
            with self._busy_lock:
                self._busy_seconds += sum(
                    result.total_seconds for result in results
                )
        for index, result in zip(chunk, results):
            if self._resolved_cache is not None and result.cache_stats:
                self._resolved_cache.absorb_counts(**result.cache_stats)
                result.cache_stats = None
            if self._session is not None and result.telemetry:
                self._session.absorb(
                    result.telemetry, parent_span_id=self._parent_span_id
                )
                result.telemetry = None
            if result.server_stats and self._on_server_stats is not None:
                # Discarded-on-saturation results still ran; their
                # server-pool counters still count.
                self._on_server_stats(result.server_stats)
                result.server_stats = None
            if (
                self._observe_costs
                and result.ok
                and self._mode != "inproc-threads"  # observed internally
            ):
                seconds = result.timings.get("execute", 0.0)
                if seconds:
                    steps, actors = self._sizes[index]
                    self._cost_store.observe(
                        self._cost_keys[index], steps, actors, seconds
                    )
            for released_index, released in self._reorder.push(index, result):
                self._ready.append(released)
            telemetry.observe(
                "campaign.scheduler.reorder_depth", float(self._reorder.depth)
            )
        telemetry.gauge_set(
            "campaign.scheduler.in_flight", self._in_flight_cases
        )


def run_jobs_streaming(
    jobs: Sequence[SimulationJob],
    *,
    workers: Optional[int] = None,
    mode: str = "thread",
    window: Optional[int] = None,
    batch_size: int = 1,
    adaptive: bool = False,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 0.05,
    serve: bool = False,
    inproc: bool = False,
    server_pool=None,
    cost_store: Optional[CostModelStore] = None,
    stats_sink: Optional[dict] = None,
) -> "list[JobResult]":
    """Streaming counterpart of :func:`repro.runner.pool.run_jobs`.

    Same contract — one :class:`JobResult` per job, in submission order,
    per-case failures reported rather than raised — but dispatched work-
    conservingly through a :class:`StreamScheduler` instead of in
    barrier waves.  ``stats_sink``, if given, receives the scheduler's
    stats dict.  ``cost_store=None`` uses the process-wide persistent
    store, so observed timings benefit later campaigns.
    """
    from repro.runner.pool import default_workers

    workers = default_workers() if workers is None else workers
    if cost_store is None:
        cost_store = default_cost_store()
    scheduler = StreamScheduler(
        jobs,
        workers=workers,
        mode=mode,
        window=window,
        batch_size=batch_size,
        adaptive=adaptive,
        cache=cache,
        timeout_seconds=timeout_seconds,
        retries=retries,
        backoff_seconds=backoff_seconds,
        serve=serve,
        inproc=inproc,
        server_pool=server_pool,
        cost_store=cost_store,
    )
    collected: "list[JobResult]" = []
    try:
        for result in scheduler.results():
            collected.append(result)
    finally:
        stats = scheduler.finish()
        if stats_sink is not None:
            stats_sink.update(stats)
    return collected

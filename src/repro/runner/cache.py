"""Content-addressed on-disk cache for compiled AccMoS binaries.

AccMoS's premise is compile-once-run-fast, but a fresh gcc invocation
per :func:`~repro.codegen.driver.compile_c_program` call throws the
"once" away.  This cache keeps it: an entry is keyed by the SHA-256 of
everything that determines the binary — the generated C source, the
compiler (absolute path *and* its ``--version`` banner, so a toolchain
upgrade invalidates), and the flag vector — so a repeated simulation of
an unchanged model performs zero compiler invocations.

Layout: one directory per entry, ``<root>/<key[:2]>/<key>/`` holding
``simulation.c`` plus one or both compiled artifacts — the
``simulation`` executable and the ``simulation.so`` shared library (the
in-process engine's form of the *same* compile unit; one key covers the
pair).  Writes are atomic: the artifacts are staged into a scratch
directory under the root and ``os.rename``d into place; when the entry
already exists (a racing writer, or the second artifact arriving after
the first) the staged files are merged in one ``os.replace`` per file —
content-addressing makes the copies identical, so either write order
leaves a valid entry.  Reads bump the entry's mtime; eviction removes
least-recently-used entries whole — an entry's executable and shared
library always live and die together.

A process-wide default cache (:func:`default_cache`) lives at
``$ACCMOS_CACHE_DIR`` (default ``~/.cache/accmos/artifacts``) and is
what the AccMoS engine and the campaign layer route through; set
``ACCMOS_NO_CACHE=1`` to disable it.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

DEFAULT_MAX_BYTES = 512 * 1024 * 1024  # plenty for ~10k typical binaries

SOURCE_NAME = "simulation.c"
BINARY_NAME = "simulation"
SHARED_NAME = "simulation.so"

_compiler_versions: dict[str, str] = {}
_versions_lock = threading.Lock()


def compiler_fingerprint(compiler: str) -> str:
    """``<abspath> <first --version line>`` — memoized per compiler path."""
    path = str(Path(compiler).resolve()) if os.sep in compiler else compiler
    with _versions_lock:
        cached = _compiler_versions.get(path)
    if cached is not None:
        return cached
    try:
        proc = subprocess.run(
            [compiler, "--version"], capture_output=True, text=True, check=False
        )
        banner = proc.stdout.splitlines()[0] if proc.stdout else "unknown"
    except OSError:
        banner = "unknown"
    fingerprint = f"{path} {banner}"
    with _versions_lock:
        _compiler_versions[path] = fingerprint
    return fingerprint


def cache_key(source: str, compiler: str, cflags: Sequence[str]) -> str:
    """SHA-256 over (source, compiler path+version, flags)."""
    h = hashlib.sha256()
    h.update(compiler_fingerprint(compiler).encode())
    h.update(b"\x00")
    h.update(" ".join(cflags).encode())
    h.update(b"\x00")
    h.update(source.encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """One cache's counters (hits/misses/evictions are per-process)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} entries={self.entries} "
            f"bytes={self.bytes}"
        )


@dataclass
class CacheEntry:
    """A resolved cache entry: the source plus whichever compiled
    artifacts the entry holds (``None`` for an absent one)."""

    key: str
    source: Path
    binary: Optional[Path] = None
    shared: Optional[Path] = None


class ArtifactCache:
    """Persistent LRU cache of compiled simulation binaries."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- key ------------------------------------------------------------
    def key(self, source: str, compiler: str, cflags: Sequence[str]) -> str:
        return cache_key(source, compiler, cflags)

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    # -- lookup/store ----------------------------------------------------
    def _resolve(self, key: str, entry_dir: Path) -> CacheEntry:
        binary = entry_dir / BINARY_NAME
        shared = entry_dir / SHARED_NAME
        return CacheEntry(
            key=key,
            source=entry_dir / SOURCE_NAME,
            binary=binary if binary.is_file() else None,
            shared=shared if shared.is_file() else None,
        )

    def lookup(
        self, key: str, names: Sequence[str] = (BINARY_NAME,)
    ) -> Optional[CacheEntry]:
        """The entry for ``key`` if the source and every artifact in
        ``names`` exist; bumps its LRU clock on hit.

        ``names`` selects which compiled artifacts the caller needs —
        the executable by default, ``(SHARED_NAME,)`` for the in-process
        engine.  The returned entry still reports whatever else the
        entry happens to hold.
        """
        entry_dir = self._entry_dir(key)
        source = entry_dir / SOURCE_NAME
        wanted = [entry_dir / name for name in names]
        if not (source.is_file() and all(p.is_file() for p in wanted)):
            with self._lock:
                self._misses += 1
            return None
        try:
            os.utime(entry_dir)
        except OSError:
            pass  # read-only cache is still a usable cache
        with self._lock:
            self._hits += 1
        return self._resolve(key, entry_dir)

    def store(
        self,
        key: str,
        source_path: Path,
        binary_path: Optional[Path] = None,
        *,
        shared_path: Optional[Path] = None,
    ) -> CacheEntry:
        """Move compiled artifacts into the cache atomically.

        The artifacts are staged into a scratch dir on the same
        filesystem and renamed into the final entry path in one step.
        When the entry already exists — a racing writer, or this call
        adding the entry's *other* artifact (e.g. the ``.so`` after the
        executable) — the staged files are merged in with one atomic
        ``os.replace`` per file; identical keys mean identical content,
        so whichever copy lands is valid.
        """
        entry_dir = self._entry_dir(key)
        entry_dir.parent.mkdir(parents=True, exist_ok=True)
        stage = Path(
            tempfile.mkdtemp(prefix=f"stage-{key[:8]}-", dir=str(self.root))
        )
        try:
            shutil.move(str(source_path), stage / SOURCE_NAME)
            if binary_path is not None:
                shutil.move(str(binary_path), stage / BINARY_NAME)
            if shared_path is not None:
                shutil.move(str(shared_path), stage / SHARED_NAME)
            try:
                os.rename(stage, entry_dir)
            except OSError:
                # The entry exists: merge the staged files into it.
                for staged in stage.iterdir():
                    try:
                        os.replace(staged, entry_dir / staged.name)
                    except OSError:
                        pass  # best effort; the entry stays consistent
                shutil.rmtree(stage, ignore_errors=True)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        self._evict_over_bound(keep=entry_dir)
        return self._resolve(key, entry_dir)

    # -- maintenance -----------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            entry
            for shard in self.root.iterdir()
            if shard.is_dir() and len(shard.name) == 2
            for entry in shard.iterdir()
            if entry.is_dir()
        ]

    @staticmethod
    def _entry_bytes(entry: Path) -> int:
        return sum(f.stat().st_size for f in entry.iterdir() if f.is_file())

    def _evict_over_bound(self, keep: Optional[Path] = None) -> None:
        entries = []
        total = 0
        for entry in self._entries():
            try:
                size = self._entry_bytes(entry)
                mtime = entry.stat().st_mtime
            except OSError:
                continue  # concurrently evicted by another process
            entries.append((mtime, size, entry))
            total += size
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest first
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry == keep:
                continue
            shutil.rmtree(entry, ignore_errors=True)
            total -= size
            with self._lock:
                self._evictions += 1

    def counters(self) -> dict[str, int]:
        """This handle's in-process counters (no disk scan) — what a
        process-pool worker ships back inside its ``JobResult``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def absorb_counts(
        self, hits: int = 0, misses: int = 0, evictions: int = 0
    ) -> None:
        """Fold counters from another handle of the same cache (a
        worker process's) into this one, so parent-side ``stats()``
        reflects the whole pool's traffic."""
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._evictions += evictions

    def stats(self) -> CacheStats:
        entries = self._entries()
        total = 0
        for entry in entries:
            try:
                total += self._entry_bytes(entry)
            except OSError:
                pass
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(entries),
                bytes=total,
            )

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed


# ----------------------------------------------------------------------
# process-wide default
# ----------------------------------------------------------------------
CACHE_DIR_ENV = "ACCMOS_CACHE_DIR"
CACHE_DISABLE_ENV = "ACCMOS_NO_CACHE"

_default_cache: Optional[ArtifactCache] = None
_default_resolved = False
_default_lock = threading.Lock()


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "accmos" / "artifacts"


def default_cache() -> Optional[ArtifactCache]:
    """The process-wide cache the AccMoS engine routes through.

    ``None`` when disabled (``ACCMOS_NO_CACHE=1``) or when the cache
    directory cannot be created (e.g. read-only home).
    """
    global _default_cache, _default_resolved
    with _default_lock:
        if _default_resolved:
            return _default_cache
        if os.environ.get(CACHE_DISABLE_ENV, "").strip() not in ("", "0"):
            _default_cache = None
        else:
            try:
                _default_cache = ArtifactCache(default_cache_dir())
            except OSError:
                _default_cache = None
        _default_resolved = True
        return _default_cache


def set_default_cache(cache: Optional[ArtifactCache]) -> Optional[ArtifactCache]:
    """Override the process-wide cache (tests, embedding apps).

    Returns the previous default so callers can restore it.
    """
    global _default_cache, _default_resolved
    with _default_lock:
        previous = _default_cache if _default_resolved else None
        _default_cache = cache
        _default_resolved = True
        return previous

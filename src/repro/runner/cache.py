"""Content-addressed on-disk cache for compiled AccMoS binaries.

AccMoS's premise is compile-once-run-fast, but a fresh gcc invocation
per :func:`~repro.codegen.driver.compile_c_program` call throws the
"once" away.  This cache keeps it: an entry is keyed by the SHA-256 of
everything that determines the binary — the generated C source, the
compiler (absolute path *and* its ``--version`` banner, so a toolchain
upgrade invalidates), and the flag vector — so a repeated simulation of
an unchanged model performs zero compiler invocations.

Layout: one directory per entry, ``<root>/<key[:2]>/<key>/`` holding
``simulation.c`` and the ``simulation`` binary.  Writes are atomic: the
artifacts are staged into a scratch directory under the root and
``os.rename``d into place, so two processes compiling the same key
concurrently leave exactly one valid entry (the loser discards its
stage).  Reads bump the entry's mtime; eviction removes
least-recently-used entries once the configured byte bound is exceeded.

A process-wide default cache (:func:`default_cache`) lives at
``$ACCMOS_CACHE_DIR`` (default ``~/.cache/accmos/artifacts``) and is
what the AccMoS engine and the campaign layer route through; set
``ACCMOS_NO_CACHE=1`` to disable it.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

DEFAULT_MAX_BYTES = 512 * 1024 * 1024  # plenty for ~10k typical binaries

SOURCE_NAME = "simulation.c"
BINARY_NAME = "simulation"

_compiler_versions: dict[str, str] = {}
_versions_lock = threading.Lock()


def compiler_fingerprint(compiler: str) -> str:
    """``<abspath> <first --version line>`` — memoized per compiler path."""
    path = str(Path(compiler).resolve()) if os.sep in compiler else compiler
    with _versions_lock:
        cached = _compiler_versions.get(path)
    if cached is not None:
        return cached
    try:
        proc = subprocess.run(
            [compiler, "--version"], capture_output=True, text=True, check=False
        )
        banner = proc.stdout.splitlines()[0] if proc.stdout else "unknown"
    except OSError:
        banner = "unknown"
    fingerprint = f"{path} {banner}"
    with _versions_lock:
        _compiler_versions[path] = fingerprint
    return fingerprint


def cache_key(source: str, compiler: str, cflags: Sequence[str]) -> str:
    """SHA-256 over (source, compiler path+version, flags)."""
    h = hashlib.sha256()
    h.update(compiler_fingerprint(compiler).encode())
    h.update(b"\x00")
    h.update(" ".join(cflags).encode())
    h.update(b"\x00")
    h.update(source.encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """One cache's counters (hits/misses/evictions are per-process)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} entries={self.entries} "
            f"bytes={self.bytes}"
        )


@dataclass
class CacheEntry:
    """A resolved cache entry: both artifacts, ready to execute."""

    key: str
    source: Path
    binary: Path


class ArtifactCache:
    """Persistent LRU cache of compiled simulation binaries."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- key ------------------------------------------------------------
    def key(self, source: str, compiler: str, cflags: Sequence[str]) -> str:
        return cache_key(source, compiler, cflags)

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    # -- lookup/store ----------------------------------------------------
    def lookup(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key`` if both artifacts exist; bumps its LRU
        clock on hit."""
        entry_dir = self._entry_dir(key)
        binary = entry_dir / BINARY_NAME
        source = entry_dir / SOURCE_NAME
        if not (binary.is_file() and source.is_file()):
            with self._lock:
                self._misses += 1
            return None
        try:
            os.utime(entry_dir)
        except OSError:
            pass  # read-only cache is still a usable cache
        with self._lock:
            self._hits += 1
        return CacheEntry(key=key, source=source, binary=binary)

    def store(self, key: str, source_path: Path, binary_path: Path) -> CacheEntry:
        """Move compiled artifacts into the cache atomically.

        The artifacts are staged into a scratch dir on the same
        filesystem and renamed into the final entry path in one step.
        If another process won the race, the staged copy is discarded
        and the existing entry is returned.
        """
        entry_dir = self._entry_dir(key)
        entry_dir.parent.mkdir(parents=True, exist_ok=True)
        stage = Path(
            tempfile.mkdtemp(prefix=f"stage-{key[:8]}-", dir=str(self.root))
        )
        try:
            shutil.move(str(source_path), stage / SOURCE_NAME)
            shutil.move(str(binary_path), stage / BINARY_NAME)
            try:
                os.rename(stage, entry_dir)
            except OSError:
                # Lost the race: a complete entry already sits there.
                shutil.rmtree(stage, ignore_errors=True)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        self._evict_over_bound(keep=entry_dir)
        return CacheEntry(
            key=key,
            source=entry_dir / SOURCE_NAME,
            binary=entry_dir / BINARY_NAME,
        )

    # -- maintenance -----------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            entry
            for shard in self.root.iterdir()
            if shard.is_dir() and len(shard.name) == 2
            for entry in shard.iterdir()
            if entry.is_dir()
        ]

    @staticmethod
    def _entry_bytes(entry: Path) -> int:
        return sum(f.stat().st_size for f in entry.iterdir() if f.is_file())

    def _evict_over_bound(self, keep: Optional[Path] = None) -> None:
        entries = []
        total = 0
        for entry in self._entries():
            try:
                size = self._entry_bytes(entry)
                mtime = entry.stat().st_mtime
            except OSError:
                continue  # concurrently evicted by another process
            entries.append((mtime, size, entry))
            total += size
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest first
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry == keep:
                continue
            shutil.rmtree(entry, ignore_errors=True)
            total -= size
            with self._lock:
                self._evictions += 1

    def counters(self) -> dict[str, int]:
        """This handle's in-process counters (no disk scan) — what a
        process-pool worker ships back inside its ``JobResult``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def absorb_counts(
        self, hits: int = 0, misses: int = 0, evictions: int = 0
    ) -> None:
        """Fold counters from another handle of the same cache (a
        worker process's) into this one, so parent-side ``stats()``
        reflects the whole pool's traffic."""
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._evictions += evictions

    def stats(self) -> CacheStats:
        entries = self._entries()
        total = 0
        for entry in entries:
            try:
                total += self._entry_bytes(entry)
            except OSError:
                pass
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(entries),
                bytes=total,
            )

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed


# ----------------------------------------------------------------------
# process-wide default
# ----------------------------------------------------------------------
CACHE_DIR_ENV = "ACCMOS_CACHE_DIR"
CACHE_DISABLE_ENV = "ACCMOS_NO_CACHE"

_default_cache: Optional[ArtifactCache] = None
_default_resolved = False
_default_lock = threading.Lock()


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "accmos" / "artifacts"


def default_cache() -> Optional[ArtifactCache]:
    """The process-wide cache the AccMoS engine routes through.

    ``None`` when disabled (``ACCMOS_NO_CACHE=1``) or when the cache
    directory cannot be created (e.g. read-only home).
    """
    global _default_cache, _default_resolved
    with _default_lock:
        if _default_resolved:
            return _default_cache
        if os.environ.get(CACHE_DISABLE_ENV, "").strip() not in ("", "0"):
            _default_cache = None
        else:
            try:
                _default_cache = ArtifactCache(default_cache_dir())
            except OSError:
                _default_cache = None
        _default_resolved = True
        return _default_cache


def set_default_cache(cache: Optional[ArtifactCache]) -> Optional[ArtifactCache]:
    """Override the process-wide cache (tests, embedding apps).

    Returns the previous default so callers can restore it.
    """
    global _default_cache, _default_resolved
    with _default_lock:
        previous = _default_cache if _default_resolved else None
        _default_cache = cache
        _default_resolved = True
        return previous

"""The full preprocessing pipeline in one call."""

from __future__ import annotations

from repro import telemetry
from repro.model.model import Model
from repro.model.validate import validate_model
from repro.schedule.flatten import flatten
from repro.schedule.order import compute_execution_order
from repro.schedule.program import FlatProgram
from repro.schedule.typeinfer import infer_types


def preprocess(model: Model, *, dt: float = 1.0) -> FlatProgram:
    """Validate, flatten, type-infer, and schedule a model.

    This is the paper's complete Model Preprocessing step; the returned
    :class:`FlatProgram` is what every engine and the code generator take
    as input.
    """
    with telemetry.span("preprocess", model=model.name) as sp:
        validate_model(model)
        prog = flatten(model, dt=dt)
        infer_types(prog)
        compute_execution_order(prog)
        sp.set(actors=len(prog.actors), signals=len(prog.signals))
    return prog

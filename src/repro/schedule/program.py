"""The flat intermediate representation produced by preprocessing.

A :class:`FlatProgram` is what every simulation engine and the code
generator consume: the hierarchy has been flattened, every wire resolved to
a numbered *signal*, conditional execution turned into *guards*, and (after
:func:`~repro.schedule.order.compute_execution_order` runs) the actors
arranged into a topologically sorted node list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dtypes import DType
from repro.model.actor import Actor
from repro.model.model import Model


@dataclass
class SignalInfo:
    """One scalar signal (an actor output port after flattening)."""

    sid: int
    name: str  # e.g. MODEL_SUB_ACTOR_out
    dtype: Optional[DType] = None  # filled by type inference
    producer: Optional[int] = None  # flat-actor index, None for virtual


@dataclass
class Guard:
    """A conditional-execution scope (one enabled subsystem)."""

    gid: int
    signal: int  # sid of the enable signal (evaluated as > 0)
    parent: Optional[int]  # enclosing guard gid, None at top level
    path: str  # subsystem path, for reporting


@dataclass
class FlatActor:
    """An executable actor after flattening."""

    index: int  # dense flat-actor index
    path: str  # MODEL_SUB_ACTOR (the paper's index-key convention)
    actor: Actor  # private copy; port dtypes resolved by inference
    guard: Optional[int]  # gid, None = always executes
    input_sids: tuple[int, ...]
    output_sids: tuple[int, ...]
    # Merge only: guard of each input's producer (None = unguarded).
    merge_src_guards: Optional[tuple[Optional[int], ...]] = None

    @property
    def block_type(self) -> str:
        return self.actor.block_type


@dataclass(frozen=True)
class ExecActor:
    """Execution-order node: run one flat actor's output phase."""

    actor_index: int


@dataclass(frozen=True)
class EvalGuard:
    """Execution-order node: evaluate one guard's activity for this step."""

    gid: int


Node = Union[ExecActor, EvalGuard]


@dataclass
class StoreInfo:
    """A data store declaration collected during flattening."""

    name: str
    dtype: DType
    initial: object
    path: str


@dataclass
class PortBinding:
    """A root-level model port resolved to its flat signal."""

    name: str
    path: str
    sid: int
    dtype: Optional[DType] = None


@dataclass
class FlatProgram:
    """Everything the engines need to run a model."""

    model: Model
    actors: list[FlatActor] = field(default_factory=list)
    signals: list[SignalInfo] = field(default_factory=list)
    guards: list[Guard] = field(default_factory=list)
    stores: dict[str, StoreInfo] = field(default_factory=dict)
    inports: list[PortBinding] = field(default_factory=list)
    outports: list[PortBinding] = field(default_factory=list)
    order: list[Node] = field(default_factory=list)  # topologically sorted
    dt: float = 1.0

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def actor_by_path(self, path: str) -> FlatActor:
        for fa in self.actors:
            if fa.path == path:
                return fa
        raise KeyError(f"no flat actor with path {path!r}")

    def signal_by_name(self, name: str) -> SignalInfo:
        for sig in self.signals:
            if sig.name == name:
                return sig
        raise KeyError(f"no signal named {name!r}")

    def guard_chain(self, gid: Optional[int]) -> list[Guard]:
        """Outermost-first chain of guards ending at ``gid``."""
        chain: list[Guard] = []
        while gid is not None:
            guard = self.guards[gid]
            chain.append(guard)
            gid = guard.parent
        chain.reverse()
        return chain

    @property
    def n_signals(self) -> int:
        return len(self.signals)

    def summary(self) -> str:
        return (
            f"FlatProgram({self.model.name}: {len(self.actors)} actors, "
            f"{len(self.signals)} signals, {len(self.guards)} guards, "
            f"{len(self.stores)} stores)"
        )

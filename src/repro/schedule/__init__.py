"""Model preprocessing: hierarchy flattening, execution order, and signal
type inference.

This package implements the paper's first step (§3.1): parse the model's
actors, reconstruct the data flow from the relationship part, and derive an
execution order by topological sorting of the directed computation graph.
Its product is a :class:`~repro.schedule.program.FlatProgram` — the single
intermediate representation every engine and the code generator consume.
"""

from repro.schedule.program import (
    EvalGuard,
    ExecActor,
    FlatActor,
    FlatProgram,
    Guard,
    SignalInfo,
    StoreInfo,
)
from repro.schedule.flatten import flatten
from repro.schedule.order import compute_execution_order
from repro.schedule.typeinfer import infer_types
from repro.schedule.compile import preprocess

__all__ = [
    "FlatProgram",
    "FlatActor",
    "SignalInfo",
    "StoreInfo",
    "Guard",
    "ExecActor",
    "EvalGuard",
    "flatten",
    "compute_execution_order",
    "infer_types",
    "preprocess",
]

"""Execution-order computation (the paper's *schedule convert* module).

Builds the directed computation graph over flattened actors and guard
evaluations, then topologically sorts it.  Edge rules:

* data: a signal's producer precedes each *direct-feedthrough* consumer
  (non-feedthrough actors — delays, integrators — read state, not their
  current input, so their input edges are omitted; that is what makes
  feedback loops schedulable);
* guards: a guard's enable-signal producer and its parent guard precede
  the guard's evaluation node, which precedes every node it guards;
* data stores: every read of a store precedes every write of it, so reads
  observe the previous step's value;
* Merge: each input's producer *and* that producer's guard evaluation
  precede the Merge.

A cycle over these edges is an algebraic loop; :class:`ScheduleError`
reports one witness cycle by actor path.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.actors.registry import get_spec
from repro.model.errors import ScheduleError
from repro.schedule.program import EvalGuard, ExecActor, FlatProgram, Node


def compute_execution_order(prog: FlatProgram) -> None:
    """Fill ``prog.order`` with a deterministic topological node order."""
    nodes: list[Node] = [ExecActor(fa.index) for fa in prog.actors]
    nodes += [EvalGuard(g.gid) for g in prog.guards]
    node_pos = {node: i for i, node in enumerate(nodes)}

    edges: dict[Node, set[Node]] = {node: set() for node in nodes}  # dep -> dependents
    indegree: dict[Node, int] = {node: 0 for node in nodes}

    def add_edge(before: Node, after: Node) -> None:
        if after not in edges[before]:
            edges[before].add(after)
            indegree[after] += 1

    producer_node: dict[int, Node] = {}
    for fa in prog.actors:
        for sid in fa.output_sids:
            producer_node[sid] = ExecActor(fa.index)

    store_reads: dict[str, list[Node]] = {}
    store_writes: dict[str, list[Node]] = {}

    for fa in prog.actors:
        node = ExecActor(fa.index)
        spec = get_spec(fa.block_type)
        if spec.direct_feedthrough:
            for sid in fa.input_sids:
                add_edge(producer_node[sid], node)
        if fa.guard is not None:
            add_edge(EvalGuard(fa.guard), node)
        if fa.block_type == "DataStoreRead":
            store_reads.setdefault(fa.actor.params["store"], []).append(node)
        elif fa.block_type == "DataStoreWrite":
            store_writes.setdefault(fa.actor.params["store"], []).append(node)
        if fa.block_type == "Merge" and fa.merge_src_guards:
            for gid in fa.merge_src_guards:
                if gid is not None:
                    add_edge(EvalGuard(gid), node)

    for guard in prog.guards:
        node = EvalGuard(guard.gid)
        add_edge(producer_node[guard.signal], node)
        if guard.parent is not None:
            add_edge(EvalGuard(guard.parent), node)

    for store, writes in store_writes.items():
        for read in store_reads.get(store, []):
            for write in writes:
                add_edge(read, write)

    # Kahn's algorithm with a position-keyed heap for determinism.
    ready = [(node_pos[n], n) for n in nodes if indegree[n] == 0]
    heapq.heapify(ready)
    order: list[Node] = []
    while ready:
        _, node = heapq.heappop(ready)
        order.append(node)
        for dependent in edges[node]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                heapq.heappush(ready, (node_pos[dependent], dependent))

    if len(order) != len(nodes):
        raise ScheduleError(
            "algebraic loop detected: " + _describe_cycle(prog, edges, indegree)
        )
    prog.order = order


def _describe_cycle(
    prog: FlatProgram,
    edges: dict[Node, set[Node]],
    indegree: dict[Node, int],
) -> str:
    """Find one cycle among the unresolved nodes for the error message."""
    remaining = {n for n, d in indegree.items() if d > 0}

    def name(node: Node) -> str:
        if isinstance(node, ExecActor):
            return prog.actors[node.actor_index].path
        return f"guard({prog.guards[node.gid].path})"

    start = next(iter(remaining))
    path: list[Node] = [start]
    seen: dict[Node, int] = {start: 0}
    node: Optional[Node] = start
    while node is not None:
        successor = next(
            (m for m in edges[node] if m in remaining), None
        )
        if successor is None:
            break
        if successor in seen:
            cycle = path[seen[successor]:] + [successor]
            return " -> ".join(name(n) for n in cycle)
        seen[successor] = len(path)
        path.append(successor)
        node = successor
    return ", ".join(sorted(name(n) for n in remaining))

"""Signal data-type inference.

The model file records port types "as default values" (§3.1 of the paper);
concrete types are pinned only where the modeller chose them (Inports,
DataTypeConversion, explicitly typed blocks).  This pass propagates types
forward along the flattened data flow to a fixpoint:

1. seed every pinned output port;
2. repeatedly visit actors whose input types are all known and ask their
   semantics class for default output types;
3. stop when nothing changes; leftover unknowns are an error (feedback
   loops must pin at least one dtype, like in Simulink).

After inference each actor is re-validated against its spec, which catches
resolved-type conflicts (e.g. a Bitwise actor receiving floats).
"""

from __future__ import annotations

from repro.actors.registry import get_spec
from repro.model.errors import TypeInferenceError, ValidationError
from repro.schedule.program import FlatProgram


def infer_types(prog: FlatProgram) -> None:
    """Resolve every signal's dtype in place."""
    store_dtypes = {name: info.dtype for name, info in prog.stores.items()}
    sig_dtype = [None] * prog.n_signals

    # Seed pinned ports.
    for fa in prog.actors:
        if fa.block_type == "Inport" and fa.actor.outputs[0].dtype is None:
            raise TypeInferenceError(
                f"{fa.path}: root Inport must pin its data type"
            )
        for port, sid in zip(fa.actor.outputs, fa.output_sids):
            if port.dtype is not None:
                sig_dtype[sid] = port.dtype

    # Forward fixpoint.
    pending = [fa for fa in prog.actors if any(sig_dtype[s] is None for s in fa.output_sids)]
    while pending:
        progressed = False
        still_pending = []
        for fa in pending:
            in_dtypes = tuple(sig_dtype[s] for s in fa.input_sids)
            if any(dt is None for dt in in_dtypes):
                still_pending.append(fa)
                continue
            semantics = get_spec(fa.block_type).semantics
            try:
                inferred = semantics.infer_out_dtypes(fa.actor, in_dtypes, store_dtypes)
            except ValidationError:
                raise
            for sid, dtype in zip(fa.output_sids, inferred):
                if sig_dtype[sid] is None:
                    sig_dtype[sid] = dtype
            progressed = True
        if not progressed:
            unresolved = ", ".join(fa.path for fa in still_pending[:5])
            raise TypeInferenceError(
                f"cannot infer signal types (pin a dtype to break the cycle); "
                f"unresolved at: {unresolved}"
            )
        pending = still_pending

    # Write back to signals and actor port copies; re-validate.
    for sid, dtype in enumerate(sig_dtype):
        prog.signals[sid].dtype = dtype
    for fa in prog.actors:
        for port, sid in zip(fa.actor.inputs, fa.input_sids):
            port.dtype = sig_dtype[sid]
        for port, sid in zip(fa.actor.outputs, fa.output_sids):
            port.dtype = sig_dtype[sid]
        get_spec(fa.block_type).check_actor(fa.actor, fa.path)
    for binding in prog.inports + prog.outports:
        binding.dtype = sig_dtype[binding.sid]

"""Hierarchy flattening.

Turns the subsystem tree into a flat actor list with numbered signals:

* every real actor output becomes a signal;
* subsystem boundary plumbing (nested Inport/Outport actors and the
  parent-side virtual ports of a subsystem) is resolved away by aliasing,
  so crossing a subsystem boundary costs nothing at runtime;
* enabled subsystems become :class:`~repro.schedule.program.Guard` records,
  and every actor inside carries the innermost guard id;
* ``DataStoreMemory`` declarations are collected into the store table.

Signals are *persistent* across steps in every engine, which is what gives
enabled subsystems their hold-last-value semantics for free: a disabled
region simply does not recompute its signals.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.dtypes import DType
from repro.model.actor import Actor
from repro.model.errors import ValidationError
from repro.model.model import Model
from repro.model.subsystem import INPORT, OUTPORT, Subsystem
from repro.schedule.program import (
    FlatActor,
    FlatProgram,
    Guard,
    PortBinding,
    SignalInfo,
    StoreInfo,
)

# Block types that never become flat actors.
_STRUCTURAL = ("EnablePort", "DataStoreMemory")

_SigKey = tuple[str, str, int]  # (scope_path, actor_or_child_name, out_port)
_DeferredAlias = tuple[str, str, str, int]  # ("input_of", scope_path, actor, port)


class _Flattener:
    def __init__(self, model: Model, dt: float):
        self.model = model
        self.prog = FlatProgram(model=model, dt=dt)
        self.sids: dict[_SigKey, int] = {}
        self.names: dict[int, str] = {}
        self.alias: dict[int, Union[int, _DeferredAlias]] = {}
        self.input_src: dict[tuple[str, str, int], int] = {}
        self.enable_src: dict[str, int] = {}  # child scope path -> raw sid

    # ------------------------------------------------------------------
    def run(self) -> FlatProgram:
        root = self.model.root
        self._allocate(root, root.name)
        self._wire(root, root.name)
        self._emit(root, root.name, guard=None)
        self._fill_merge_guards()
        self._compact()
        return self.prog

    # ------------------------------------------------------------------
    # pass 1: allocate signal ids for every output port (incl. plumbing)
    # ------------------------------------------------------------------
    def _allocate(self, scope: Subsystem, path: str) -> None:
        for actor in scope.actors.values():
            for port in range(actor.n_outputs):
                self._new_sid((path, actor.name, port), self._sig_name(path, actor, port))
            if actor.block_type == "DataStoreMemory":
                self._declare_store(actor, path)
        for child in scope.subsystems.values():
            child_path = f"{path}_{child.name}"
            for k in range(child.n_boundary_outputs):
                self._new_sid((path, child.name, k), f"{child_path}_vout{k}")
            self._allocate(child, child_path)

    def _new_sid(self, key: _SigKey, name: str) -> int:
        sid = len(self.sids)
        self.sids[key] = sid
        self.names[sid] = name
        return sid

    @staticmethod
    def _sig_name(path: str, actor: Actor, port: int) -> str:
        base = f"{path}_{actor.name}"
        return f"{base}_out" if actor.n_outputs == 1 else f"{base}_out{port}"

    def _declare_store(self, actor: Actor, path: str) -> None:
        if actor.name in self.prog.stores:
            raise ValidationError(
                f"data store {actor.name!r} declared in more than one scope "
                f"({self.prog.stores[actor.name].path} and {path})"
            )
        dtype = DType.parse(actor.params["dtype"])
        self.prog.stores[actor.name] = StoreInfo(
            name=actor.name,
            dtype=dtype,
            initial=actor.params.get("initial", 0),
            path=f"{path}_{actor.name}",
        )

    # ------------------------------------------------------------------
    # pass 2: record wiring, aliases, and enable sources
    # ------------------------------------------------------------------
    def _wire(self, scope: Subsystem, path: str) -> None:
        for conn in scope.connections:
            src_sid = self.sids[(path, conn.src.actor, conn.src.port)]
            dst_name, dst_port = conn.dst.actor, conn.dst.port
            if dst_name in scope.actors:
                self.input_src[(path, dst_name, dst_port)] = src_sid
                continue
            child = scope.subsystems[dst_name]
            child_path = f"{path}_{child.name}"
            if child.has_enable_port and dst_port == child.enable_slot:
                self.enable_src[child_path] = src_sid
            else:
                inport = child.boundary_ports(INPORT)[dst_port]
                inner_sid = self.sids[(child_path, inport.name, 0)]
                self.alias[inner_sid] = src_sid

        for child in scope.subsystems.values():
            child_path = f"{path}_{child.name}"
            # Parent-side virtual outputs alias the inner Outport's source.
            for k, outport in enumerate(child.boundary_ports(OUTPORT)):
                virt_sid = self.sids[(path, child.name, k)]
                self.alias[virt_sid] = ("input_of", child_path, outport.name, 0)
            self._wire(child, child_path)

    def _resolve(self, sid: int) -> int:
        seen = set()
        while sid in self.alias:
            if sid in seen:
                raise ValidationError("cyclic boundary aliasing detected")
            seen.add(sid)
            target = self.alias[sid]
            if isinstance(target, tuple):
                _, scope_path, actor, port = target
                sid = self.input_src[(scope_path, actor, port)]
            else:
                sid = target
        return sid

    # ------------------------------------------------------------------
    # pass 3: create guards and flat actors in deterministic order
    # ------------------------------------------------------------------
    def _emit(self, scope: Subsystem, path: str, guard: Optional[int]) -> None:
        is_root = scope is self.model.root
        for actor in scope.actors.values():
            if actor.block_type in _STRUCTURAL:
                continue
            if not is_root and actor.block_type in (INPORT, OUTPORT):
                continue  # boundary plumbing, aliased away
            self._emit_actor(actor, path, guard, is_root)
        for child in scope.subsystems.values():
            child_path = f"{path}_{child.name}"
            child_guard = guard
            if child.has_enable_port:
                if child_path not in self.enable_src:
                    raise ValidationError(
                        f"{child_path}: enabled subsystem has no enable connection"
                    )
                gid = len(self.prog.guards)
                self.prog.guards.append(
                    Guard(
                        gid=gid,
                        signal=self._resolve(self.enable_src[child_path]),
                        parent=guard,
                        path=child_path,
                    )
                )
                child_guard = gid
            self._emit(child, child_path, child_guard)

    def _emit_actor(
        self, actor: Actor, path: str, guard: Optional[int], is_root: bool
    ) -> None:
        index = len(self.prog.actors)
        input_sids = tuple(
            self._resolve(self.input_src[(path, actor.name, port)])
            for port in range(actor.n_inputs)
        )
        output_sids = tuple(
            self.sids[(path, actor.name, port)] for port in range(actor.n_outputs)
        )
        fa = FlatActor(
            index=index,
            path=f"{path}_{actor.name}",
            actor=actor.copy(),
            guard=guard,
            input_sids=input_sids,
            output_sids=output_sids,
        )
        self.prog.actors.append(fa)
        if is_root and actor.block_type == INPORT:
            self.prog.inports.append(
                PortBinding(actor.name, fa.path, output_sids[0], actor.outputs[0].dtype)
            )
        if is_root and actor.block_type == OUTPORT:
            self.prog.outports.append(PortBinding(actor.name, fa.path, input_sids[0]))

    # ------------------------------------------------------------------
    # final passes
    # ------------------------------------------------------------------
    def _fill_merge_guards(self) -> None:
        producer_guard: dict[int, Optional[int]] = {}
        for fa in self.prog.actors:
            for sid in fa.output_sids:
                producer_guard[sid] = fa.guard
        for fa in self.prog.actors:
            if fa.block_type == "Merge":
                fa.merge_src_guards = tuple(
                    producer_guard.get(sid) for sid in fa.input_sids
                )

    def _compact(self) -> None:
        """Renumber signals densely, keeping only real (produced) ones."""
        remap: dict[int, int] = {}
        for fa in self.prog.actors:
            for sid in fa.output_sids:
                if sid not in remap:
                    remap[sid] = len(remap)

        def m(sid: int) -> int:
            try:
                return remap[sid]
            except KeyError:
                raise ValidationError(
                    f"signal {self.names.get(sid, sid)!r} has no producer"
                ) from None

        inverse = {new: old for old, new in remap.items()}
        self.prog.signals = [
            SignalInfo(sid=i, name=self.names[inverse[i]]) for i in range(len(remap))
        ]
        for fa in self.prog.actors:
            fa.input_sids = tuple(m(s) for s in fa.input_sids)
            fa.output_sids = tuple(m(s) for s in fa.output_sids)
            for sid in fa.output_sids:
                self.prog.signals[sid].producer = fa.index
        for guard in self.prog.guards:
            guard.signal = m(guard.signal)
        for binding in self.prog.inports + self.prog.outports:
            binding.sid = m(binding.sid)


def flatten(model: Model, *, dt: float = 1.0) -> FlatProgram:
    """Flatten ``model`` into a :class:`FlatProgram` (no order/types yet)."""
    return _Flattener(model, dt).run()

"""In-process shared-library engine: the fifth rung of the speed ladder.

``repro.inproc`` loads the reusable compiled program (built once with
``-shared -fPIC``, content-addressed next to the executable) via
``ctypes`` and exchanges packed binary structs with it — zero process
spawns, zero text formatting or parsing.  See :mod:`repro.inproc.abi`
for the wire layouts, :mod:`repro.inproc.library` for loading,
isolation, and fault quarantine, and :mod:`repro.inproc.parallel` for
the instance pool behind thread-parallel execution (``ctypes`` releases
the GIL around ``acc_lib_run_case``, so N instances run on N cores).
"""

from repro.inproc.abi import (
    ABI_VERSION,
    decode_case_binary,
    decode_result,
    encode_case_binary,
    result_buffer_size,
)
from repro.inproc.library import LibraryFault, LoadedModel
from repro.inproc.parallel import InstancePool, default_instance_pool

__all__ = [
    "ABI_VERSION",
    "InstancePool",
    "LibraryFault",
    "LoadedModel",
    "decode_case_binary",
    "decode_result",
    "default_instance_pool",
    "encode_case_binary",
    "result_buffer_size",
]

"""Instance pool for thread-parallel in-process execution.

The in-process rung loads one :class:`~repro.inproc.library.LoadedModel`
per use site; each load is a file copy + ``dlopen`` + ABI handshake, and
each instance owns a preallocated result buffer.  Thread-parallel
execution multiplies the instance count (one private instance per worker
thread — private inode, private C globals), so instances must be
*pooled*: checked out for the duration of one shard, returned healthy,
retired on fault, and bounded LRU-style so corpus-scale campaigns that
touch thousands of distinct models do not accumulate mappings forever.

The pool mirrors :class:`repro.runner.servers.ServerPool` (the warm
``--serve`` process pool one rung down): ``acquire`` reuses the
most-recently-released healthy instance for the key or loads a fresh
one on a miss, ``release`` reinserts MRU and evicts LRU beyond the
bound, ``retire`` drops a faulted instance without reinsertion.  Keys
are ``(shared-object path, result size)``: the path is content-addressed
by the artifact cache, so two :class:`~repro.engines.accmos.CompiledModel`
handles over the same structure share instances — this is what lets
``probe_coverage`` reuse pooled instances across guided-fuzz replay
compiles instead of paying a fresh ``dlopen`` per probe.

Instances are never shared between two holders at once: a checked-out
instance belongs to exactly one thread until released, and the
instance's own lock makes misuse fail loudly rather than corrupt state.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Union

from repro import telemetry
from repro.inproc.library import LoadedModel

_COUNTERS = (
    "loads",
    "reuses",
    "retired_error",
    "retired_lru",
)


def _default_max_idle() -> int:
    # Enough idle instances for one thread team per core plus slack;
    # campaigns over many distinct models churn through the LRU bound.
    return max(8, (os.cpu_count() or 1) * 2)


class InstancePool:
    """A bounded pool of loaded in-process library instances.

    Thread-safe: worker threads check instances out under a lock and run
    their shards outside it.  ``max_idle`` bounds only the *idle* set —
    checked-out instances are unbounded (one per live worker thread).
    """

    def __init__(self, *, max_idle: Union[int, None] = None) -> None:
        self.max_idle = _default_max_idle() if max_idle is None else int(max_idle)
        if self.max_idle < 1:
            raise ValueError("max_idle must be at least 1")
        self._lock = threading.Lock()
        # Insertion order is LRU order: entries re-inserted on release.
        # Keyed by (pool key, id(instance)) so one artifact can have
        # several idle instances (one per worker thread at peak).
        self._idle: "OrderedDict[tuple[str, int], LoadedModel]" = OrderedDict()
        self._closed = False
        self.counters: dict[str, int] = {name: 0 for name in _COUNTERS}

    # -- bookkeeping -----------------------------------------------------
    @staticmethod
    def instance_key(shared_path, result_size: int) -> str:
        """The pooling key: content-addressed ``.so`` path + result
        layout size (the size is redundant given the path but makes a
        layout-drift bug a pool miss instead of a buffer overrun)."""
        return f"{shared_path}:{int(result_size)}"

    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] += value

    # -- checkout / checkin ----------------------------------------------
    def acquire(self, key: str, loader: Callable[[], LoadedModel]) -> LoadedModel:
        """Check out an instance for ``key``, calling ``loader`` on a miss.

        The caller owns the instance until :meth:`release` (or
        :meth:`retire` on fault); it is never handed to two callers at
        once.  ``loader`` runs outside the lock — loading (copy +
        ``dlopen`` + handshake) must not serialize the other workers —
        and its exceptions propagate unchanged.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("acquire on a closed InstancePool")
            for entry_key in reversed(self._idle):
                if entry_key[0] != key:
                    continue
                lib = self._idle.pop(entry_key)
                if lib.healthy:
                    self.counters["reuses"] += 1
                    telemetry.counter_inc("engine.inproc.pool_reuses")
                    return lib
                # Retired while idle (e.g. an explicit retire() by a
                # past holder that kept a reference) — drop and rescan.
                self.counters["retired_error"] += 1
                break
        lib = loader()
        self._count("loads")
        return lib

    def release(self, key: str, lib: LoadedModel) -> None:
        """Return a healthy instance to the idle set (it becomes the
        most-recently-used entry); over-bound entries are retired LRU-
        first, unhealthy ones unconditionally."""
        if not lib.healthy:
            self.retire(lib)
            return
        evicted: "list[LoadedModel]" = []
        with self._lock:
            if self._closed:
                evicted.append(lib)
            else:
                entry_key = (key, id(lib))
                self._idle[entry_key] = lib
                self._idle.move_to_end(entry_key)
                while len(self._idle) > self.max_idle:
                    _, old = self._idle.popitem(last=False)
                    self.counters["retired_lru"] += 1
                    telemetry.counter_inc("engine.inproc.pool_retired_lru")
                    evicted.append(old)
        for old in evicted:
            old.retire()

    def retire(self, lib: LoadedModel) -> None:
        """Drop a faulted instance without reinsertion."""
        self._count("retired_error")
        telemetry.counter_inc("engine.inproc.pool_retired_error")
        lib.retire()

    # -- shutdown / stats ------------------------------------------------
    def close(self) -> None:
        """Retire every idle instance.  Checked-out instances are
        retired by their holders on release (the pool is marked closed)."""
        with self._lock:
            self._closed = True
            instances = list(self._idle.values())
            self._idle.clear()
        for lib in instances:
            lib.retire()

    def __enter__(self) -> "InstancePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def active(self) -> int:
        with self._lock:
            return len(self._idle)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)


# ----------------------------------------------------------------------
# process-wide default pool
# ----------------------------------------------------------------------
_default_pool: Union[InstancePool, None] = None
_default_pool_lock = threading.Lock()


def default_instance_pool() -> InstancePool:
    """The process-wide pool shared by every :class:`CompiledModel`.

    Created on first use and closed at interpreter exit.  Because keys
    are content-addressed artifact paths, distinct model handles over
    the same structure (guided-fuzz replay recompiles, campaign waves)
    transparently share warm instances.
    """
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None:
            import atexit

            _default_pool = InstancePool()
            atexit.register(_default_pool.close)
        return _default_pool

"""Loading and driving the compiled program in-process via ``ctypes``.

The fifth rung of the speed ladder: no spawn, no fork, no pipes, no text.
A :class:`LoadedModel` wraps one ``dlopen`` of the reusable program built
with ``-shared -fPIC`` and pushes packed case records through
``acc_lib_run_case``.

Isolation: the program keeps its entire simulation state in C globals,
so every :class:`LoadedModel` gets a *private copy* of the ``.so`` file
(``dlopen`` of the same inode returns the same globals — a fresh inode
forces a fresh namespace).  The copy is unlinked immediately after
loading; the mapping keeps it alive.  One instance is single-threaded
(guarded by a lock); callers that want parallelism load one instance per
thread — ``ctypes`` releases the GIL around the call.

Faults: any non-zero return from the library, a failed handshake, or use
after :meth:`retire` raises :class:`LibraryFault`.  The engine layer
treats a fault as a quarantine signal — the instance is retired (best
effort ``dlclose``) and the caller drops down to the ``--serve`` process
rung, which is crash-isolated.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import tempfile
import threading
from typing import Optional, Union

from repro import telemetry
from repro.model.errors import SimulationError
from repro.inproc.abi import ABI_VERSION


class LibraryFault(SimulationError):
    """The in-process library misbehaved (bad handshake, non-zero run
    status, or use after retirement).  The owning engine quarantines the
    instance and falls back to process-isolated rungs."""


def _dlclose(handle: int) -> None:
    try:
        import _ctypes

        _ctypes.dlclose(handle)
    except Exception:
        # Leaking a mapping beats crashing the host, but a leak must be
        # observable: long campaigns that churn instances would otherwise
        # exhaust address space with no signal at all.
        telemetry.counter_inc("engine.inproc.dlclose_errors")


class LoadedModel:
    """One private in-process instance of a compiled reusable program."""

    def __init__(self, shared_path: Union[str, os.PathLike], *, result_size: int):
        self._lock = threading.Lock()
        self._lib: Optional[ctypes.CDLL] = None
        self._handle: Optional[int] = None
        self.healthy = False
        self.result_size = int(result_size)

        # Private globals: copy to a unique inode, load, unlink.
        fd, copy_path = tempfile.mkstemp(prefix="accmos-lib-", suffix=".so")
        try:
            with os.fdopen(fd, "wb") as out, open(shared_path, "rb") as src:
                shutil.copyfileobj(src, out)
            lib = ctypes.CDLL(copy_path)
        except OSError as exc:
            raise LibraryFault(f"cannot load shared library: {exc}") from exc
        finally:
            try:
                os.unlink(copy_path)
            except OSError:
                pass

        try:
            lib.acc_lib_abi_version.restype = ctypes.c_int
            lib.acc_lib_result_size.restype = ctypes.c_longlong
            lib.acc_lib_init.restype = ctypes.c_int
            lib.acc_lib_reset.restype = None
            lib.acc_lib_run_case.restype = ctypes.c_int
            lib.acc_lib_run_case.argtypes = [
                ctypes.c_char_p,
                ctypes.c_longlong,
                ctypes.c_char_p,
                ctypes.c_longlong,
            ]
            abi = lib.acc_lib_abi_version()
            if abi != ABI_VERSION:
                raise LibraryFault(
                    f"library ABI version {abi} != expected {ABI_VERSION}"
                )
            lib_size = lib.acc_lib_result_size()
            if lib_size != self.result_size:
                raise LibraryFault(
                    f"library result size {lib_size} != computed "
                    f"{self.result_size} (layout drift)"
                )
            rc = lib.acc_lib_init()
            if rc != 0:
                raise LibraryFault(
                    f"acc_lib_init returned {rc}; refusing a "
                    "half-initialized library"
                )
        except AttributeError as exc:
            _dlclose(lib._handle)
            raise LibraryFault(
                f"shared library missing acc_lib_* exports: {exc}"
            ) from exc
        except LibraryFault:
            _dlclose(lib._handle)
            raise

        self._lib = lib
        self._handle = lib._handle
        self._buffer = ctypes.create_string_buffer(self.result_size)
        self.healthy = True
        telemetry.counter_inc("engine.inproc.loads")

    def _invoke(self, record: bytes) -> int:
        """The raw library call — a seam tests use to induce faults."""
        return self._lib.acc_lib_run_case(
            record, len(record), self._buffer, self.result_size
        )

    def run_case(self, record: bytes) -> bytes:
        """Run one packed case record; the filled result buffer's bytes.

        Any non-zero status retires the instance and raises
        :class:`LibraryFault` — a library that rejects a record we
        encoded ourselves can no longer be trusted.
        """
        with self._lock:
            if not self.healthy:
                raise LibraryFault("library instance is retired")
            rc = self._invoke(record)
            if rc != 0:
                telemetry.counter_inc("engine.inproc.faults")
                self._retire_locked()
                raise LibraryFault(f"acc_lib_run_case returned {rc}")
            return self._buffer.raw

    def reset(self) -> None:
        with self._lock:
            if not self.healthy:
                raise LibraryFault("library instance is retired")
            self._lib.acc_lib_reset()

    def _retire_locked(self) -> None:
        self.healthy = False
        lib, self._lib = self._lib, None
        handle, self._handle = self._handle, None
        self._buffer = None
        if lib is not None and handle is not None:
            _dlclose(handle)

    def retire(self) -> None:
        """Unload (best effort) and refuse all further calls."""
        with self._lock:
            self._retire_locked()

    close = retire

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.retire()
        except Exception:
            pass

"""The packed binary ABI between Python and the in-process library.

This is the Python half of the contract ``codegen.compose`` emits into
every reusable program as ``acc_lib_*`` exports: a case travels as one
packed binary record (no text, no stdout), and the library fills a
caller-provided result buffer of fixed layout.  Both sides derive the
per-port slot sequence from :data:`repro.stimuli.base.DESCRIPTOR_FIELDS`
— the same single source of truth the text wire format uses — so the
text and binary encodings cannot drift apart.

Every slot is 8 bytes.  Layouts (in order):

Case record::

    int64   steps
    float64 time_budget        (-1 = disabled)
    float64 deadline           (-1 = disabled)
    int64   n_ports
    per port, in port order:
        the DESCRIPTOR_FIELDS slots (int64 / uint64 / float64)
        int64   tab_len
        tab_len x (float64 | int64) table values

Result buffer (size is :func:`result_buffer_size`, also exported by the
library as ``acc_lib_result_size()`` for the load-time handshake)::

    int64   steps_run
    int64   halt_step          (-1 = no halt)
    float64 elapsed seconds
    uint64  flags              (bit 0 = per-case deadline tripped)
    [uint64 checksum per outport]            when options.checksum
    uint64  output bits per outport          (floats widened to double,
                                              NaN canonicalized — same
                                              acc_bits_* the checksums use)
    [uint64 coverage words]                  when coverage is planned:
                                             ceil(n/64) words per metric in
                                             actor/condition/decision/mcdc
                                             order, LSB = lowest point
    per diagnosis slot: int64 first (-1 = never), uint64 count
    per monitor: uint64 n, then n x (int64 step, uint64 value bits)

All words are little-endian (every supported target is), which also
makes the record bytes deterministic for content-addressed tests.

Bumping :data:`ABI_VERSION` invalidates every previously built library:
:class:`repro.inproc.library.LoadedModel` refuses to run against a
mismatched ``acc_lib_abi_version()`` or ``acc_lib_result_size()``.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from repro.codegen.descriptor import _i64, _u64
from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import Metric
from repro.coverage.report import CoverageReport
from repro.diagnosis.events import DiagnosticLog
from repro.engines.base import SimulationOptions, SimulationResult
from repro.model.errors import SimulationError
from repro.stimuli.base import DESCRIPTOR_FIELDS, StimulusDescriptor

#: Bumped whenever the record or result layout changes shape.
ABI_VERSION = 1

_I64 = struct.Struct("<q")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


def _pack_slot(kind: str, value) -> bytes:
    if kind == "i":
        return _I64.pack(_i64(value))
    if kind == "u":
        return _U64.pack(_u64(value))
    return _F64.pack(float(value))


def encode_case_binary(
    descriptors: Sequence[StimulusDescriptor],
    *,
    steps: int,
    time_budget: Optional[float] = None,
    deadline: Optional[float] = None,
) -> bytes:
    """One packed case record for ``acc_lib_run_case``.

    Field-for-field the same content as the text encoder's
    :func:`repro.codegen.descriptor.encode_case`, minus the ``case``
    token (framing is the record itself).
    """
    parts: list[bytes] = [
        _I64.pack(int(steps)),
        _F64.pack(-1.0 if time_budget is None else float(time_budget)),
        _F64.pack(-1.0 if deadline is None else float(deadline)),
        _I64.pack(len(descriptors)),
    ]
    for d in descriptors:
        for attr, _member, kind in DESCRIPTOR_FIELDS:
            parts.append(_pack_slot(kind, getattr(d, attr)))
        parts.append(_I64.pack(len(d.table)))
        if d.table_is_float:
            parts.extend(_F64.pack(float(v)) for v in d.table)
        else:
            parts.extend(_I64.pack(_i64(v)) for v in d.table)
    return b"".join(parts)


class _Cursor:
    """Sequential 8-byte word reader with exhaustion checks."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def raw8(self) -> bytes:
        end = self.pos + 8
        if end > len(self.buf):
            raise SimulationError("inproc result buffer truncated")
        word = self.buf[self.pos : end]
        self.pos = end
        return word

    def i64(self) -> int:
        return _I64.unpack(self.raw8())[0]

    def u64(self) -> int:
        return _U64.unpack(self.raw8())[0]

    def f64(self) -> float:
        return _F64.unpack(self.raw8())[0]

    def value(self, dtype) -> object:
        """Decode one value word the way the C side encoded it."""
        raw = self.raw8()
        if dtype.is_float:
            return _F64.unpack(raw)[0]
        if dtype.is_signed:
            return _I64.unpack(raw)[0]
        return _U64.unpack(raw)[0]


def decode_case_binary(data: bytes) -> dict:
    """Parse a case record back into plain Python (conformance tests)."""
    cur = _Cursor(data)
    record = {
        "steps": cur.i64(),
        "time_budget": cur.f64(),
        "deadline": cur.f64(),
        "ports": [],
    }
    n_ports = cur.i64()
    for _ in range(n_ports):
        port = {}
        for attr, _member, kind in DESCRIPTOR_FIELDS:
            if kind == "i":
                port[attr] = cur.i64()
            elif kind == "u":
                port[attr] = cur.u64()
            else:
                port[attr] = cur.f64()
        tab_len = cur.i64()
        if port["table_is_float"]:
            port["table"] = tuple(cur.f64() for _ in range(tab_len))
        else:
            port["table"] = tuple(cur.i64() for _ in range(tab_len))
        record["ports"].append(port)
    if cur.pos != len(data):
        raise SimulationError("trailing bytes after case record")
    return record


_METRIC_ORDER = (Metric.ACTOR, Metric.CONDITION, Metric.DECISION, Metric.MCDC)


def _metric_sizes(plan) -> list[tuple[Metric, int]]:
    points = plan.points
    return [
        (Metric.ACTOR, points.n_actor),
        (Metric.CONDITION, points.n_condition),
        (Metric.DECISION, points.n_decision),
        (Metric.MCDC, points.n_mcdc),
    ]


def result_buffer_size(layout, plan, options: SimulationOptions) -> int:
    """Exact byte size of the packed result for this program shape.

    Must agree word for word with the writer ``codegen.compose`` emits
    (the generated ``ACC_LIB_RESULT_SIZE``); the load-time handshake
    cross-checks the two.  Monitors reserve their full ``monitor_limit``
    worth of samples — the written prefix is shorter when fewer fired.
    """
    n_out = len(layout.outports)
    size = 8 * 4  # steps_run, halt_step, elapsed, flags
    if options.checksum:
        size += 8 * n_out
    size += 8 * n_out  # output bits
    if plan.coverage_enabled:
        for _metric, n in _metric_sizes(plan):
            size += 8 * ((n + 63) // 64)
    size += 16 * len(layout.diag_slots)
    mon_limit = max(1, options.monitor_limit)
    size += len(layout.monitors) * (8 + 16 * mon_limit)
    return size


def decode_coverage(
    buf: bytes,
    layout,
    plan,
    options: SimulationOptions,
) -> Optional[dict[Metric, Bitmap]]:
    """Slice ONLY the coverage words out of a filled result buffer.

    The cheap path for coverage probing (``repro corpus replay``): skips
    output/diagnostic/monitor reconstruction entirely and seeks straight
    to the coverage region, whose offset is fixed by the layout.  Returns
    ``None`` when the program collects no coverage or when the per-case
    deadline tripped (a truncated run's bitmap would under-report and
    poison an accumulated map).
    """
    if not plan.coverage_enabled:
        return None
    flags = _U64.unpack_from(buf, 24)[0]
    if flags & 1:  # deadline_exceeded
        return None
    n_out = len(layout.outports)
    offset = 8 * 4  # steps_run, halt_step, elapsed, flags
    if options.checksum:
        offset += 8 * n_out
    offset += 8 * n_out  # output bits
    bitmaps: dict[Metric, Bitmap] = {}
    for metric, n in _metric_sizes(plan):
        n_words = (n + 63) // 64
        words = list(struct.unpack_from(f"<{n_words}Q", buf, offset))
        offset += 8 * n_words
        bitmaps[metric] = Bitmap.from_words(n, words)
    return bitmaps


def decode_result(
    buf: bytes,
    prog,
    plan,
    layout,
    options: SimulationOptions,
    *,
    engine: str = "accmos",
) -> SimulationResult:
    """Decode one filled result buffer into a :class:`SimulationResult`.

    Mirrors :func:`repro.codegen.driver.parse_result` line for line —
    same static-warning seeding, same coverage/diagnostic/monitor
    reconstruction — so inproc results compare byte-identical to every
    other rung's.
    """
    cur = _Cursor(buf)
    steps_run = cur.i64()
    halt_step = cur.i64()
    elapsed = cur.f64()
    flags = cur.u64()

    checksums: dict[str, int] = {}
    if options.checksum:
        for name, _dtype in layout.outports:
            checksums[name] = cur.u64()
    outputs: dict[str, object] = {}
    for name, dtype in layout.outports:
        # Floats travel widened to double (like the text %a path).
        value = cur.raw8()
        if dtype.is_float:
            outputs[name] = _F64.unpack(value)[0]
        elif dtype.is_signed:
            outputs[name] = _I64.unpack(value)[0]
        else:
            outputs[name] = _U64.unpack(value)[0]

    coverage = None
    if plan.coverage_enabled:
        bitmaps: dict[Metric, Bitmap] = {}
        for metric, n in _metric_sizes(plan):
            words = [cur.u64() for _ in range((n + 63) // 64)]
            bitmaps[metric] = Bitmap.from_words(n, words)
        coverage = CoverageReport.from_bitmaps(plan.points, bitmaps)

    log = DiagnosticLog()
    for event in plan.static_warnings:
        log.add_static(event.path, event.kind, event.message)
    for slot in range(len(layout.diag_slots)):
        first = cur.i64()
        count = cur.u64()
        if first >= 0:
            path, kind, message = layout.diag_slots[slot]
            log.set_aggregate(path, kind, first, count, message)

    monitored: dict[str, list] = {mon.path: [] for mon in layout.monitors}
    for mon in layout.monitors:
        n = cur.u64()
        for _ in range(n):
            step = cur.i64()
            monitored[mon.path].append((step, cur.value(mon.dtype)))

    result = SimulationResult(
        engine=engine,
        model_name=prog.model.name,
        steps_requested=options.steps,
        steps_run=steps_run,
        wall_time=elapsed,
        outputs=outputs,
        checksums=checksums,
        coverage=coverage,
        diagnostics=log.events(),
        halted_at=None if halt_step < 0 else halt_step,
        monitored=monitored,
    )
    if flags & 1:
        result.extra["deadline_exceeded"] = True
    return result

"""Sampling profiler for the interpreted SSE engine.

The paper's §2 argument is that SSE's cost is *interpretation overhead*
— per-step Python dispatch into each actor's semantics.  This profiler
makes that measurable: when enabled, the SSE loop times each actor's
evaluation on a subset of steps (every ``interval``-th step) and
attributes the cost to the actor's *block type*, yielding a hot-actor
table ("Product: 31% of sampled step time") at a bounded overhead —
unsampled steps pay only a per-actor branch test.

The engine accumulates into plain local dicts during the run and folds
them in once at the end (:meth:`add_run`), so the profiler's lock never
sits on the hot path.  ``interval`` defaults to a prime so periodic
model behaviour (enable ducts toggling every 2^k steps) cannot alias
with the sampling grid.
"""

from __future__ import annotations

import threading
from typing import Mapping

DEFAULT_SAMPLE_INTERVAL = 97


class SseProfiler:
    """Hot-actor attribution of sampled SSE step time."""

    def __init__(self, interval: int = DEFAULT_SAMPLE_INTERVAL) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        self.interval = interval
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._sampled_steps = 0
        self._runs = 0

    def add_run(
        self,
        seconds: Mapping[str, float],
        calls: Mapping[str, int],
        sampled_steps: int,
    ) -> None:
        """Fold one engine run's locally-accumulated samples in."""
        with self._lock:
            for block_type, value in seconds.items():
                self._seconds[block_type] = (
                    self._seconds.get(block_type, 0.0) + value
                )
            for block_type, count in calls.items():
                self._calls[block_type] = self._calls.get(block_type, 0) + count
            self._sampled_steps += sampled_steps
            self._runs += 1

    # -- reading ---------------------------------------------------------
    def table(self) -> list[tuple[str, int, float, float]]:
        """Rows of (block_type, calls, seconds, share), hottest first."""
        with self._lock:
            total = sum(self._seconds.values())
            rows = [
                (bt, self._calls.get(bt, 0), secs,
                 secs / total if total > 0 else 0.0)
                for bt, secs in self._seconds.items()
            ]
        rows.sort(key=lambda row: -row[2])
        return rows

    def snapshot(self) -> dict:
        """JSON-able form (persisted with the metrics snapshot)."""
        with self._lock:
            return {
                "interval": self.interval,
                "sampled_steps": self._sampled_steps,
                "runs": self._runs,
                "actors": {
                    bt: {
                        "calls": self._calls.get(bt, 0),
                        "seconds": secs,
                    }
                    for bt, secs in self._seconds.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker process's profile snapshot in."""
        actors = snapshot.get("actors", {})
        self.add_run(
            {bt: data.get("seconds", 0.0) for bt, data in actors.items()},
            {bt: data.get("calls", 0) for bt, data in actors.items()},
            int(snapshot.get("sampled_steps", 0)),
        )
        with self._lock:
            self._runs -= 1  # merge() is not a run; undo add_run's bump
            self._runs += int(snapshot.get("runs", 0))

    def render(self) -> str:
        rows = self.table()
        with self._lock:
            sampled = self._sampled_steps
        if not rows:
            return "sse profile: no samples recorded"
        lines = [
            f"sse profile: {sampled:,} sampled step(s), "
            f"1-in-{self.interval} sampling",
            f"{'block type':24s} {'calls':>10s} {'seconds':>10s} {'share':>7s}",
        ]
        for block_type, calls, seconds, share in rows:
            lines.append(
                f"{block_type:24s} {calls:10,d} {seconds:10.4f} {share:6.1%}"
            )
        return "\n".join(lines)


def render_profile_snapshot(snapshot: dict) -> str:
    """Render a persisted profile snapshot (``repro metrics``)."""
    profiler = SseProfiler(interval=int(snapshot.get("interval", 1)))
    profiler.merge(snapshot)
    return profiler.render()

"""Global telemetry state and the hooks the pipeline calls.

Telemetry is **off by default**, and the instrumented hot paths are
written against that default: every hook here degrades to one global
read when no session is active — :func:`span` returns a shared null
context manager, the counter/gauge/histogram helpers return
immediately, :func:`sse_profiler` returns ``None`` so the engine skips
its sampling branches entirely.  Enabling costs nothing until the next
instrumented call site runs.

One :class:`TelemetrySession` bundles the three collectors (tracer,
metrics registry, optional SSE profiler).  :func:`enable` installs a
fresh session process-wide; worker processes in ``mode="process"``
pools enable their own and ship the results back as plain dicts (see
:meth:`TelemetrySession.export` / :meth:`TelemetrySession.absorb`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import DEFAULT_SAMPLE_INTERVAL, SseProfiler
from repro.telemetry.trace import Span, Tracer


@dataclass
class TelemetrySession:
    """One enabled telemetry epoch: tracer + metrics (+ profiler)."""

    tracer: Tracer
    metrics: MetricsRegistry
    profiler: Optional[SseProfiler] = None

    def export(self) -> dict:
        """Everything collected, as JSON-able dicts (crosses pickling
        and process boundaries; feeds the exporters)."""
        return {
            "spans": [span.to_dict() for span in self.tracer.finished()],
            "metrics": self.metrics.snapshot(),
            "profile_sse": (
                self.profiler.snapshot() if self.profiler is not None else None
            ),
        }

    def absorb(self, payload: dict, *, parent_span_id: Optional[str] = None) -> None:
        """Fold a worker's :meth:`export` back into this session."""
        if not payload:
            return
        self.tracer.absorb(
            payload.get("spans", []), parent_id=parent_span_id
        )
        metrics = payload.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        profile = payload.get("profile_sse")
        if profile and self.profiler is not None:
            self.profiler.merge(profile)

    def snapshot(self) -> dict:
        """The persistence form ``repro metrics`` reads back."""
        snap = self.metrics.snapshot()
        if self.profiler is not None:
            snap["profile_sse"] = self.profiler.snapshot()
        return snap


_lock = threading.Lock()
_session: Optional[TelemetrySession] = None


def enable(
    *,
    profile_sse: bool = False,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
) -> TelemetrySession:
    """Install a fresh process-wide session (replacing any active one)."""
    global _session
    session = TelemetrySession(
        tracer=Tracer(),
        metrics=MetricsRegistry(),
        profiler=SseProfiler(sample_interval) if profile_sse else None,
    )
    with _lock:
        _session = session
    return session


def disable() -> Optional[TelemetrySession]:
    """Deactivate telemetry; returns the session so callers can still
    export what it collected."""
    global _session
    with _lock:
        session, _session = _session, None
    return session


def active() -> Optional[TelemetrySession]:
    """The current session, or None — the single gate every hook uses."""
    return _session


def enabled() -> bool:
    return _session is not None


class _CaptureContext:
    """``with telemetry.capture() as session:`` for tests and embedders."""

    def __init__(self, **enable_kwargs) -> None:
        self._kwargs = enable_kwargs
        self._previous: Optional[TelemetrySession] = None
        self.session: Optional[TelemetrySession] = None

    def __enter__(self) -> TelemetrySession:
        global _session
        with _lock:
            self._previous = _session
        self.session = enable(**self._kwargs)
        return self.session

    def __exit__(self, *exc) -> bool:
        global _session
        with _lock:
            _session = self._previous
        return False


def capture(**enable_kwargs) -> _CaptureContext:
    return _CaptureContext(**enable_kwargs)


# ----------------------------------------------------------------------
# hooks (the fast paths the pipeline calls unconditionally)
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared do-nothing span: what :func:`span` returns when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span under the active tracer; a no-op when disabled."""
    session = _session
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, **attrs)


def current_span() -> Optional[Span]:
    session = _session
    if session is None:
        return None
    return session.tracer.current()


def counter_inc(name: str, amount: float = 1) -> None:
    session = _session
    if session is not None:
        session.metrics.inc(name, amount)


def gauge_set(name: str, value: float) -> None:
    session = _session
    if session is not None:
        session.metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    session = _session
    if session is not None:
        session.metrics.observe(name, value)


def sse_profiler() -> Optional[SseProfiler]:
    """The active session's SSE profiler, or None (engine skips
    sampling entirely)."""
    session = _session
    if session is None:
        return None
    return session.profiler

"""Tracing, metrics, and profiling for the simulation pipeline.

Three collectors behind one process-wide switch:

* :mod:`repro.telemetry.trace` — hierarchical span tracer threaded
  through preprocess -> instrument -> codegen -> gcc -> execute -> parse,
  all four engines, and the runner (per-job spans nest under the
  dispatching ``run_jobs`` span, across threads *and* processes);
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms (cache
  hit/miss, compile seconds, steps/sec per engine, retry/timeout
  counts), with worker-process snapshots folded back into the parent;
* :mod:`repro.telemetry.profiler` — sampling profiler attributing SSE
  step time to actor block types (the paper's §2 interpretation-overhead
  argument, measured).

Disabled (the default), every hook is a no-op fast path: one global
read.  Enable around a region with::

    from repro import telemetry

    with telemetry.capture(profile_sse=True) as session:
        simulate(model, engine="sse", steps=100_000)
    print(telemetry.render_tree(session.tracer.finished()))
    telemetry.write_chrome_trace(session.tracer.finished(), "t.json")

or process-wide with :func:`enable` / :func:`disable` (what the CLI's
``--trace`` flag does).
"""

from repro.telemetry.export import (
    chrome_trace,
    default_metrics_path,
    load_metrics,
    metrics_to_text,
    save_metrics,
    spans_to_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.metrics import (
    HistogramData,
    MetricsRegistry,
    cache_hit_ratio,
)
from repro.telemetry.profiler import (
    DEFAULT_SAMPLE_INTERVAL,
    SseProfiler,
    render_profile_snapshot,
)
from repro.telemetry.session import (
    NULL_SPAN,
    TelemetrySession,
    active,
    capture,
    counter_inc,
    current_span,
    disable,
    enable,
    enabled,
    gauge_set,
    observe,
    span,
    sse_profiler,
)
from repro.telemetry.trace import Span, Tracer, render_tree

__all__ = [
    "TelemetrySession",
    "enable",
    "disable",
    "active",
    "enabled",
    "capture",
    "span",
    "current_span",
    "counter_inc",
    "gauge_set",
    "observe",
    "sse_profiler",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "render_tree",
    "MetricsRegistry",
    "HistogramData",
    "cache_hit_ratio",
    "SseProfiler",
    "DEFAULT_SAMPLE_INTERVAL",
    "render_profile_snapshot",
    "chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "metrics_to_text",
    "save_metrics",
    "load_metrics",
    "default_metrics_path",
]

"""Process-wide metrics: counters, gauges, histograms.

The registry is a flat namespace of dotted metric names
(``cache.hits``, ``engine.sse.steps_per_sec``) — get-or-create on first
touch, thread-safe under one lock (every operation is a dict update; the
lock is uncontended in practice because the hot paths record into local
state and fold in bulk).

Snapshots are plain JSON-able dicts, which is what crosses process
boundaries: a worker in ``mode="process"`` pools snapshots its registry
into the :class:`~repro.runner.jobs.JobResult` and the parent
:meth:`merges <MetricsRegistry.merge>` it back in — counters add,
gauges keep the latest write, histograms combine their moments.
"""

from __future__ import annotations

import threading
from typing import Optional


class HistogramData:
    """Streaming summary of one histogram: count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: dict) -> None:
        self.count += int(data.get("count", 0))
        self.total += float(data.get("sum", 0.0))
        for bound, better in (("min", min), ("max", max)):
            other = data.get(bound)
            if other is None:
                continue
            ours = getattr(self, bound)
            setattr(self, bound, other if ours is None else better(ours, other))


class MetricsRegistry:
    """Thread-safe counters, gauges, and histograms by dotted name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramData] = {}

    # -- recording -------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = HistogramData()
            hist.observe(value)

    # -- reading ---------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[HistogramData]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict:
        """JSON-able copy of every metric (the wire/persistence form)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self._histograms.items()
                },
            }

    # -- folding ---------------------------------------------------------
    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot in (worker -> parent)."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.get("gauges", {}))
            for name, data in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = HistogramData()
                hist.merge_dict(data)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def cache_hit_ratio(snapshot: dict) -> Optional[float]:
    """Derived metric: hits / (hits + misses), None before any lookup."""
    counters = snapshot.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    total = hits + misses
    if total <= 0:
        return None
    return hits / total

"""Exporters: JSONL spans, Chrome ``trace_event`` JSON, text summaries.

The Chrome format (one ``traceEvents`` array of complete ``"ph": "X"``
events, microsecond timestamps) loads directly in ``chrome://tracing``
and Perfetto.  Span start times are epoch-based, so spans recorded in
worker processes line up with the parent's on the same timeline.

Metrics snapshots persist as JSON at :func:`default_metrics_path`
(``$ACCMOS_METRICS_FILE``, else ``~/.cache/accmos/metrics.json``) —
written by traced CLI runs, read back by ``repro metrics``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.telemetry.metrics import cache_hit_ratio

if TYPE_CHECKING:
    from repro.telemetry.trace import Span

METRICS_FILE_ENV = "ACCMOS_METRICS_FILE"


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: "Iterable[Span]") -> str:
    """One JSON object per line, chronological by start time."""
    ordered = sorted(spans, key=lambda s: s.start_time)
    return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in ordered)


def write_spans_jsonl(spans: "Iterable[Span]", path: Union[str, Path]) -> int:
    spans = list(spans)
    Path(path).write_text(spans_to_jsonl(spans) + "\n")
    return len(spans)


def chrome_trace(spans: "Iterable[Span]") -> dict:
    """The ``chrome://tracing`` / Perfetto JSON object for these spans."""
    events = []
    for span in sorted(spans, key=lambda s: s.start_time):
        args = {
            str(k): v if isinstance(v, (int, float, bool, str, type(None)))
            else str(v)
            for k, v in span.attrs.items()
        }
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "accmos",
                "ph": "X",
                "ts": span.start_time * 1e6,
                "dur": max(span.duration, 1e-7) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: "Iterable[Span]", path: Union[str, Path]) -> int:
    trace = chrome_trace(spans)
    Path(path).write_text(json.dumps(trace, indent=1) + "\n")
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def metrics_to_text(snapshot: dict) -> str:
    """Human-readable summary of a metrics snapshot."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    ratio = cache_hit_ratio(snapshot)
    if ratio is not None:
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        lines.append(
            f"cache hit ratio : {ratio:.1%} "
            f"({hits:,.0f} hit(s), {misses:,.0f} miss(es))"
        )
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:36s} {counters[name]:>14,.0f}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:36s} {gauges[name]:>14,.4f}")
    if histograms:
        lines.append("histograms:")
        lines.append(
            f"  {'name':36s} {'count':>8s} {'mean':>12s} "
            f"{'min':>12s} {'max':>12s}"
        )
        for name in sorted(histograms):
            data = histograms[name]
            count = data.get("count", 0)
            mean = (data.get("sum", 0.0) / count) if count else 0.0
            lines.append(
                f"  {name:36s} {count:8,d} {mean:12.4f} "
                f"{(data.get('min') or 0.0):12.4f} "
                f"{(data.get('max') or 0.0):12.4f}"
            )
    if not lines:
        lines.append("no metrics recorded")
    return "\n".join(lines)


def default_metrics_path() -> Path:
    env = os.environ.get(METRICS_FILE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "accmos" / "metrics.json"


def save_metrics(
    snapshot: dict, path: Optional[Union[str, Path]] = None
) -> Optional[Path]:
    """Persist a snapshot for a later ``repro metrics``; None if the
    location is unwritable (telemetry must never fail the run)."""
    target = Path(path) if path is not None else default_metrics_path()
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    except OSError:
        return None
    return target


def load_metrics(path: Optional[Union[str, Path]] = None) -> Optional[dict]:
    target = Path(path) if path is not None else default_metrics_path()
    try:
        return json.loads(target.read_text())
    except (OSError, ValueError):
        return None

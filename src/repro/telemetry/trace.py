"""Hierarchical span tracing for the simulation pipeline.

A *span* is one timed region — ``preprocess``, ``codegen``, ``gcc``, one
runner job — with a name, wall-clock bounds, free-form attributes, and a
parent link.  Spans form a tree per thread via a thread-local stack;
cross-thread nesting (a pool fanning jobs out to workers) is explicit:
the dispatcher captures its span id and each worker adopts it with
:meth:`Tracer.adopt`, so job spans nest under the dispatch span no
matter which thread ran them.

Span ids embed the pid, so spans recorded in a worker *process* and
shipped back to the parent (see :mod:`repro.runner.pool`) merge into one
tree without collisions; :meth:`Tracer.absorb` re-parents the worker's
root spans under the dispatch span.

Timing uses two clocks: ``perf_counter`` deltas for durations (immune to
wall-clock steps) and an epoch timestamp for the start (comparable
across processes — what the Chrome trace exporter aligns on).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class Span:
    """One finished or in-flight timed region."""

    name: str
    span_id: str
    parent_id: Optional[str]
    start_time: float  # epoch seconds (time.time)
    pid: int
    tid: int
    duration: float = 0.0  # perf_counter delta, set when the span ends
    attrs: dict = field(default_factory=dict)
    _start_perf: float = field(default=0.0, repr=False, compare=False)

    def set(self, **attrs) -> "Span":
        """Attach attributes; chainable inside a ``with`` body."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """Wire form for crossing a process boundary or a JSONL line."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_time=data["start_time"],
            duration=data.get("duration", 0.0),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            attrs=dict(data.get("attrs", ())),
        )


class _SpanContext:
    """The context manager :meth:`Tracer.span` hands out."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class _AdoptedParent:
    """Marker frame: a foreign span id adopted as the local parent."""

    __slots__ = ("span_id",)

    def __init__(self, span_id: str) -> None:
        self.span_id = span_id


class _AdoptContext:
    __slots__ = ("_tracer", "_frame")

    def __init__(self, tracer: "Tracer", parent_id: str) -> None:
        self._tracer = tracer
        self._frame = _AdoptedParent(parent_id)

    def __enter__(self) -> None:
        self._tracer._stack().append(self._frame)

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._frame:
            stack.pop()
        return False


class Tracer:
    """Thread-safe span recorder with per-thread nesting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- internals -------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> str:
        return f"{os.getpid():x}.{next(self._ids)}"

    def _push(self, span: Span) -> None:
        span._start_perf = time.perf_counter()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span._start_perf
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    # -- public API ------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child span of the thread's current span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        parent_id = (
            parent.span_id
            if isinstance(parent, (Span, _AdoptedParent))
            else None
        )
        span = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent_id,
            start_time=time.time(),
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
            attrs=dict(attrs),
        )
        return _SpanContext(self, span)

    def adopt(self, parent_id: Optional[str]) -> _AdoptContext:
        """Make ``parent_id`` the current parent on *this* thread.

        Used by pools: the dispatching thread captures its span id and
        every worker thread enters ``adopt`` so job spans nest under the
        dispatch span.  ``None`` adopts nothing (still a valid context).
        """
        if parent_id is None:
            return _NULL_ADOPT
        return _AdoptContext(self, parent_id)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        for frame in reversed(self._stack()):
            if isinstance(frame, Span):
                return frame
        return None

    def finished(self) -> list[Span]:
        """Snapshot of all completed spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def absorb(
        self,
        span_dicts: list,
        *,
        parent_id: Optional[str] = None,
    ) -> int:
        """Fold spans recorded elsewhere (a worker process) into this
        tracer, re-parenting their roots under ``parent_id``."""
        spans = [Span.from_dict(d) for d in span_dicts]
        if parent_id is not None:
            for span in spans:
                if span.parent_id is None:
                    span.parent_id = parent_id
        with self._lock:
            self._finished.extend(spans)
        return len(spans)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


class _NullAdopt:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_ADOPT = _NullAdopt()


def walk_children(spans: list[Span], parent_id: Optional[str]) -> Iterator[Span]:
    """Children of ``parent_id`` among ``spans``, in start order."""
    children = [s for s in spans if s.parent_id == parent_id]
    children.sort(key=lambda s: s.start_time)
    yield from children


def render_tree(spans: list[Span]) -> str:
    """Indented text rendering of the span forest (for the CLI)."""
    lines: list[str] = []

    def visit(parent_id: Optional[str], depth: int) -> None:
        for span in walk_children(spans, parent_id):
            extra = ""
            if span.attrs:
                pairs = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
                extra = f"  [{pairs}]"
            lines.append(
                f"{'  ' * depth}{span.name:<{max(28 - 2 * depth, 8)}s} "
                f"{span.duration * 1e3:10.3f} ms{extra}"
            )
            visit(span.span_id, depth + 1)

    known = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None or s.parent_id not in known]
    for root in sorted(roots, key=lambda s: s.start_time):
        extra = ""
        if root.attrs:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
            extra = f"  [{pairs}]"
        lines.append(f"{root.name:<28s} {root.duration * 1e3:10.3f} ms{extra}")
        visit(root.span_id, 1)
    return "\n".join(lines)

"""gcc compilation, execution, and result parsing.

Compile flags matter for the bit-for-bit equivalence contract:

* ``-O3`` — the paper's optimization level;
* ``-ffp-contract=off`` — forbid fused multiply-add contraction, which
  would change float results relative to the Python reference;
* strict IEEE (gcc's default; never ``-ffast-math``).
"""

from __future__ import annotations

import queue
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from shutil import which
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro import telemetry
from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import Metric
from repro.coverage.report import CoverageReport
from repro.diagnosis.events import DiagnosticLog
from repro.dtypes import DType
from repro.engines.base import SimulationOptions, SimulationResult
from repro.instrument.plan import InstrumentationPlan
from repro.model.errors import CompilationError, SimulationError, SimulationTimeout
from repro.codegen.compose import ProgramLayout
from repro.schedule.program import FlatProgram

if TYPE_CHECKING:  # avoids importing the runner package at module load
    from repro.runner.cache import ArtifactCache

CFLAGS = ["-O3", "-ffp-contract=off", "-std=c11"]
SHARED_FLAGS = ["-shared", "-fPIC"]

_ARTIFACT_NAMES = {"binary": "simulation", "shared": "simulation.so"}

_shared_support: Optional[bool] = None
_shared_support_lock = threading.Lock()


def find_c_compiler() -> Optional[str]:
    """The first available C compiler, or None."""
    for candidate in ("gcc", "cc", "clang"):
        path = which(candidate)
        if path:
            return path
    return None


def supports_shared_objects() -> Optional[bool]:
    """Whether the toolchain can build loadable shared objects.

    Probes once per process by compiling a trivial ``.so``; the
    in-process engine and the fuzz oracle gate the ``accmos_inproc``
    rung on this.  ``None`` when there is no compiler at all.
    """
    global _shared_support
    compiler = find_c_compiler()
    if compiler is None:
        return None
    with _shared_support_lock:
        if _shared_support is not None:
            return _shared_support
        with tempfile.TemporaryDirectory(prefix="accmos_probe_") as tmp:
            c_path = Path(tmp) / "probe.c"
            so_path = Path(tmp) / "probe.so"
            c_path.write_text("int acc_probe(void) { return 1; }\n")
            try:
                proc = subprocess.run(
                    [compiler, *SHARED_FLAGS, "-o", str(so_path), str(c_path)],
                    capture_output=True,
                    text=True,
                    check=False,
                )
                ok = proc.returncode == 0 and so_path.is_file()
                if ok:
                    import ctypes

                    ctypes.CDLL(str(so_path))
            except (OSError, subprocess.SubprocessError):
                ok = False
        _shared_support = bool(ok)
        return _shared_support


@dataclass
class CompiledSimulation:
    """A compiled simulation program plus everything to interpret its run.

    One generated source yields up to two artifacts under the *same*
    cache key: the ``simulation`` executable (batch/serve rungs) and the
    ``simulation.so`` shared library (the in-process rung).  Whichever
    the caller didn't ask :func:`compile_c_program` for is compiled
    lazily on first use via :meth:`ensure_binary`/:meth:`ensure_shared`
    — each at most one extra compiler invocation per entry, cached
    alongside its sibling.
    """

    binary: Optional[Path]
    source: Path
    layout: ProgramLayout
    compile_seconds: float
    workdir: Optional[tempfile.TemporaryDirectory] = field(
        default=None, repr=False, compare=False
    )
    cache_hit: bool = False
    shared: Optional[Path] = None
    compiler: Optional[str] = field(default=None, repr=False, compare=False)
    cache: "Optional[ArtifactCache]" = field(
        default=None, repr=False, compare=False
    )
    cache_key: Optional[str] = field(default=None, repr=False, compare=False)
    _artifact_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def ensure_binary(self) -> Path:
        """The executable path, compiling it now if this handle only
        carried the shared library so far."""
        if self.binary is not None:
            return self.binary
        with self._artifact_lock:
            if self.binary is None:
                self.binary = self._materialize("binary")
            return self.binary

    def ensure_shared(self) -> Path:
        """The shared-library path, compiling it now if this handle only
        carried the executable so far."""
        if self.shared is not None:
            return self.shared
        with self._artifact_lock:
            if self.shared is None:
                self.shared = self._materialize("shared")
            return self.shared

    def _materialize(self, artifact: str) -> Path:
        name = _ARTIFACT_NAMES[artifact]
        if self.cache is not None and self.cache_key is not None:
            entry = self.cache.lookup(self.cache_key, names=(name,))
            if entry is not None:
                return entry.binary if artifact == "binary" else entry.shared
        compiler = self.compiler or find_c_compiler()
        if compiler is None:
            raise CompilationError("no C compiler found (need gcc, cc, or clang)")
        out_path = self.source.parent / name
        if self.cache is not None and self.cache_key is not None:
            # Never write next to a cache entry directly: stage + merge.
            with tempfile.TemporaryDirectory(prefix="accmos_") as tmp:
                tmp_out = Path(tmp) / name
                _run_compiler(compiler, self.source, tmp_out, artifact)
                tmp_src = Path(tmp) / "simulation.c"
                shutil.copyfile(self.source, tmp_src)
                entry = self.cache.store(
                    self.cache_key,
                    tmp_src,
                    tmp_out if artifact == "binary" else None,
                    shared_path=tmp_out if artifact == "shared" else None,
                )
            return entry.binary if artifact == "binary" else entry.shared
        _run_compiler(compiler, self.source, out_path, artifact)
        return out_path

    def execute(
        self,
        *,
        input_text: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
    ) -> str:
        """Run the binary; ``timeout_seconds`` kills it when exceeded.

        ``input_text`` is piped to the binary's stdin — the reusable
        (stimulus-agnostic) programs read their case descriptors there;
        legacy baked-in programs take no input and get /dev/null.
        """
        proc = subprocess.Popen(
            [str(self.ensure_binary())],
            stdin=subprocess.PIPE if input_text is not None else subprocess.DEVNULL,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            stdout, stderr = proc.communicate(
                input=input_text, timeout=timeout_seconds
            )
        except subprocess.TimeoutExpired:
            proc.kill()
            # Even after the kill the drain can hang on a wedged pipe
            # (e.g. a stopped child still holding the write end), so it
            # gets its own short budget and the pipes are closed
            # explicitly either way.
            stderr = ""
            try:
                _, stderr = proc.communicate(timeout=2.0)
            except subprocess.TimeoutExpired as drain:
                # An orphaned grandchild can hold the pipe open past the
                # kill; whatever was drained before the budget ran out
                # rides on the exception (as bytes).
                raw = drain.stderr
                if isinstance(raw, bytes):
                    raw = raw.decode(errors="replace")
                stderr = raw or ""
            finally:
                for pipe in (proc.stdin, proc.stdout, proc.stderr):
                    if pipe is not None:
                        try:
                            pipe.close()
                        except OSError:
                            pass
            telemetry.counter_inc("engine.accmos.timeouts")
            detail = ""
            if stderr and stderr.strip():
                detail = f"; stderr: {stderr.strip()[:500]}"
            raise SimulationTimeout(
                f"simulation binary {self.binary} exceeded its "
                f"{timeout_seconds:g}s wall-clock budget and was killed"
                f"{detail}"
            ) from None
        telemetry.observe("engine.accmos.stdout_bytes", len(stdout))
        if proc.returncode != 0:
            raise SimulationError(
                f"simulation binary failed (exit {proc.returncode}): "
                f"{stderr[:2000]}"
            )
        return stdout


def _run_compiler(
    compiler: str, c_path: Path, out_path: Path, artifact: str
) -> float:
    """One compiler invocation producing ``artifact`` from ``c_path``;
    returns the wall seconds spent."""
    flags = [*CFLAGS, *SHARED_FLAGS] if artifact == "shared" else CFLAGS
    start = time.perf_counter()
    with telemetry.span("gcc", compiler=compiler, artifact=artifact):
        proc = subprocess.run(
            [compiler, *flags, "-o", str(out_path), str(c_path), "-lm"],
            capture_output=True,
            text=True,
            check=False,
        )
    elapsed = time.perf_counter() - start
    telemetry.observe("compile.gcc_seconds", elapsed)
    if proc.returncode != 0:
        telemetry.counter_inc("compile.failures")
        raise CompilationError(f"{compiler} failed:\n{proc.stderr[:4000]}")
    return elapsed


def compile_c_program(
    source: str,
    layout: ProgramLayout,
    *,
    workdir: Optional[Path] = None,
    compiler: Optional[str] = None,
    cache: "Optional[ArtifactCache]" = None,
    artifact: str = "binary",
) -> CompiledSimulation:
    """Write and compile a generated program; returns the compiled handle.

    ``artifact`` selects which form to build *now*: ``"binary"`` (the
    executable — batch/serve rungs) or ``"shared"`` (the ``.so`` the
    in-process rung loads).  Both forms of a reusable program share one
    cache key; the form not built here is compiled lazily on first use
    (see :class:`CompiledSimulation`), so e.g. an all-inproc campaign
    performs exactly one compiler invocation.

    With ``cache`` set (and no explicit ``workdir``), the compile is
    served from the content-addressed artifact cache when the same
    (source, compiler, flags) triple was compiled before — zero compiler
    invocations on a hit; on a miss the artifacts are moved into the
    cache atomically so later calls (from any process) hit.
    """
    if artifact not in _ARTIFACT_NAMES:
        raise ValueError(f"unknown artifact {artifact!r}")
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise CompilationError("no C compiler found (need gcc, cc, or clang)")

    with telemetry.span("compile") as compile_span:
        use_cache = cache is not None and workdir is None
        key = None
        if use_cache:
            start = time.perf_counter()
            key = cache.key(source, compiler, CFLAGS)
            entry = cache.lookup(key, names=(_ARTIFACT_NAMES[artifact],))
            if entry is not None:
                telemetry.counter_inc("cache.hits")
                compile_span.set(cache_hit=True)
                return CompiledSimulation(
                    binary=entry.binary,
                    shared=entry.shared,
                    source=entry.source,
                    layout=layout,
                    compile_seconds=time.perf_counter() - start,
                    cache_hit=True,
                    compiler=compiler,
                    cache=cache,
                    cache_key=key,
                )
            telemetry.counter_inc("cache.misses")
        compile_span.set(cache_hit=False)

        tmp = None
        if workdir is None:
            tmp = tempfile.TemporaryDirectory(prefix="accmos_")
            workdir = Path(tmp.name)
        workdir.mkdir(parents=True, exist_ok=True)
        c_path = workdir / "simulation.c"
        out_path = workdir / _ARTIFACT_NAMES[artifact]
        c_path.write_text(source)

        elapsed = _run_compiler(compiler, c_path, out_path, artifact)
        if use_cache:
            entry = cache.store(
                key,
                c_path,
                out_path if artifact == "binary" else None,
                shared_path=out_path if artifact == "shared" else None,
            )
            if tmp is not None:
                tmp.cleanup()
            return CompiledSimulation(
                binary=entry.binary,
                shared=entry.shared,
                source=entry.source,
                layout=layout,
                compile_seconds=elapsed,
                compiler=compiler,
                cache=cache,
                cache_key=key,
            )
        return CompiledSimulation(
            binary=out_path if artifact == "binary" else None,
            shared=out_path if artifact == "shared" else None,
            source=c_path,
            layout=layout,
            compile_seconds=elapsed,
            workdir=tmp,
            compiler=compiler,
        )


# ----------------------------------------------------------------------
# result parsing
# ----------------------------------------------------------------------
def _parse_value(text: str, dtype: DType):
    if dtype.is_float:
        return float.fromhex(text)
    return int(text)


@dataclass
class ParseTables:
    """Per-layout lookup tables the protocol parser needs on every line.

    Building them costs a few dict constructions per call; batch and
    server-mode parsing reuse one instance across all case frames
    instead of rebuilding per frame.
    """

    out_dtypes: dict
    mon_by_id: dict
    metric_by_name: dict

    @classmethod
    def for_layout(cls, layout: ProgramLayout) -> "ParseTables":
        return cls(
            out_dtypes=dict(layout.outports),
            mon_by_id={mon.mid: mon for mon in layout.monitors},
            metric_by_name={m.value: m for m in Metric},
        )


def parse_result(
    stdout: Union[str, Iterable[str]],
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options: SimulationOptions,
    *,
    engine: str = "accmos",
    tables: Optional[ParseTables] = None,
) -> SimulationResult:
    """Turn the protocol text into the shared result schema.

    ``stdout`` is the raw text or any iterable of protocol lines (batch
    frames and server-mode streams hand lines over directly — no
    join/re-split copy).  ``tables`` lets multi-frame callers hoist the
    per-layout lookup tables out of their per-case loop.
    """
    steps_run = 0
    halt_step = -1
    sim_seconds = 0.0
    deadline_exceeded = False
    outputs: dict[str, object] = {}
    checksums: dict[str, int] = {}
    bitmaps: dict[Metric, Bitmap] = {}
    monitored: dict[str, list] = {
        mon.path: [] for mon in layout.monitors
    }
    log = DiagnosticLog()
    for event in plan.static_warnings:
        log.add_static(event.path, event.kind, event.message)

    if tables is None:
        tables = ParseTables.for_layout(layout)
    out_dtypes = tables.out_dtypes
    mon_by_id = tables.mon_by_id
    metric_by_name = tables.metric_by_name

    lines = stdout.splitlines() if isinstance(stdout, str) else stdout
    for line in lines:
        parts = line.split()
        if not parts:
            continue
        tag = parts[0]
        if tag == "steps_run":
            steps_run = int(parts[1])
        elif tag == "halt":
            halt_step = int(parts[1])
        elif tag == "sim_seconds":
            sim_seconds = float(parts[1])
        elif tag == "checksum":
            checksums[parts[1]] = int(parts[2])
        elif tag == "output":
            outputs[parts[1]] = _parse_value(parts[2], out_dtypes[parts[1]])
        elif tag == "cov":
            metric = metric_by_name[parts[1]]
            n = int(parts[2]) if len(parts) > 2 else 0
            bitmaps[metric] = Bitmap.from_words(
                n, (int(word, 16) for word in parts[3:])
            )
        elif tag == "diag":
            slot, first, count = int(parts[1]), int(parts[2]), int(parts[3])
            path, kind, message = layout.diag_slots[slot]
            log.set_aggregate(path, kind, first, count, message)
        elif tag == "mon":
            mon = mon_by_id[int(parts[1])]
            step, raw = int(parts[2]), parts[3]
            monitored[mon.path].append((step, _parse_value(raw, mon.dtype)))
        elif tag == "timeout":
            # Batched programs flag an in-binary per-case deadline this
            # way instead of dying; the caller turns it into a timeout.
            deadline_exceeded = len(parts) > 1 and parts[1] != "0"
        else:
            raise SimulationError(f"unrecognized result line: {line!r}")

    coverage = None
    if plan.coverage_enabled:
        expected = {
            Metric.ACTOR: plan.points.n_actor,
            Metric.CONDITION: plan.points.n_condition,
            Metric.DECISION: plan.points.n_decision,
            Metric.MCDC: plan.points.n_mcdc,
        }
        for metric, size in expected.items():
            if metric not in bitmaps:
                bitmaps[metric] = Bitmap(size)
            elif len(bitmaps[metric]) != size:
                raise SimulationError(
                    f"coverage table size mismatch for {metric}: "
                    f"got {len(bitmaps[metric])}, expected {size}"
                )
        coverage = CoverageReport.from_bitmaps(plan.points, bitmaps)

    result = SimulationResult(
        engine=engine,
        model_name=prog.model.name,
        steps_requested=options.steps,
        steps_run=steps_run,
        wall_time=sim_seconds,
        outputs=outputs,
        checksums=checksums,
        coverage=coverage,
        diagnostics=log.events(),
        halted_at=None if halt_step < 0 else halt_step,
        monitored=monitored,
    )
    if deadline_exceeded:
        result.extra["deadline_exceeded"] = True
    return result


# ----------------------------------------------------------------------
# batch framing
# ----------------------------------------------------------------------
def split_case_frames(stdout: str) -> "list[list[str]]":
    """Split a batched run's stdout into per-case protocol sections.

    The reusable program prints ``case <i>`` before each case's records;
    everything before the first marker (there is nothing, normally) is
    discarded.  Each frame is the case's list of protocol lines, handed
    to :func:`parse_result` as-is — no string re-join/re-split copy.
    """
    frames: list[list[str]] = []
    current: Optional[list[str]] = None
    for line in stdout.splitlines():
        if line.startswith("case ") or line == "case":
            current = []
            frames.append(current)
        elif current is not None:
            current.append(line)
    return frames


def parse_batch_result(
    stdout: str,
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options_per_case: "list[SimulationOptions]",
    *,
    engine: str = "accmos",
) -> list[SimulationResult]:
    """Parse a batched run: one :class:`SimulationResult` per case frame.

    Raises :class:`SimulationError` when the binary produced a different
    number of frames than cases were submitted (it died mid-batch with a
    zero exit, which a healthy program cannot do).  Per-case deadline
    trips are reported via ``result.extra["deadline_exceeded"]``.
    """
    frames = split_case_frames(stdout)
    if len(frames) != len(options_per_case):
        raise SimulationError(
            f"batched simulation produced {len(frames)} result frame(s) "
            f"for {len(options_per_case)} submitted case(s)"
        )
    tables = ParseTables.for_layout(layout)
    return [
        parse_result(
            frame, prog, plan, layout, options, engine=engine, tables=tables
        )
        for frame, options in zip(frames, options_per_case)
    ]


# ----------------------------------------------------------------------
# server mode
# ----------------------------------------------------------------------
class ServerError(SimulationError):
    """A persistent ``--serve`` process crashed, desynced, or went quiet.

    Unlike a plain :class:`SimulationError` this is recoverable by
    design: the caller kills the handle, restarts or falls back to the
    spawn-per-batch path, and resubmits from the last completed case.
    """


class SimulationServer:
    """Handle on one warm ``--serve`` process of a compiled binary.

    The process is spawned once, prints a ``ready`` handshake, and then
    serves an unbounded stream of case records: :meth:`submit` writes
    one encoded descriptor record to its stdin, :meth:`read_frame`
    returns that case's protocol lines as soon as its ``done`` trailer
    arrives.  stdout is pumped by a background reader thread that
    assembles whole frames (``case`` header through ``done`` trailer)
    before enqueueing them — one queue hand-off per case, not per line,
    which keeps the warm-server path faster than respawning — so
    parsing overlaps the C execution of later cases and every read
    carries a wall-clock deadline: a wedged or dead server raises
    :class:`ServerError` instead of blocking forever.

    Frame indices are validated against the server's monotonic case
    counter; any mismatch (a desync — lines lost or a foreign process on
    the pipe) also raises :class:`ServerError`.
    """

    def __init__(
        self,
        compiled: CompiledSimulation,
        *,
        handshake_timeout: float = 10.0,
    ) -> None:
        self.compiled = compiled
        self.submitted = 0
        self.completed = 0
        self._closed = False
        # Events from the reader thread, one per *frame* (not per line):
        #   ("line", text)                    — a line outside any frame
        #   ("frame", header, body, trailer)  — one complete case frame
        #   None                              — stdout EOF
        self._events: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._stderr_tail: list[str] = []
        # An inproc-first handle may not have built the executable yet.
        binary = compiled.binary
        if binary is None:
            binary = compiled.ensure_binary()
        self._proc = subprocess.Popen(
            [str(binary), "--serve"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self._reader = threading.Thread(
            target=self._pump_stdout, name="accmos-server-reader", daemon=True
        )
        self._reader.start()
        self._err_reader = threading.Thread(
            target=self._pump_stderr, name="accmos-server-stderr", daemon=True
        )
        self._err_reader.start()
        # Any handshake failure — timeout, stdout EOF from a child that
        # died mid-spawn, or a wrong first line — must reap the process
        # and close all three pipes, or a flood of failed spawns leaks
        # file descriptors.
        try:
            kind, payload = self._next_event(
                handshake_timeout, context="handshake"
            )
            if kind != "line" or payload.strip() != "ready":
                raise ServerError(
                    f"server handshake expected 'ready', got {payload!r}"
                )
        except BaseException:
            self.kill()
            raise

    # -- background pumps ------------------------------------------------
    def _pump_stdout(self) -> None:
        # Assemble whole frames here so the consumer pays one queue
        # round-trip per case.  No index validation in this thread —
        # read_frame checks header/trailer against ``completed`` so a
        # desync surfaces on the caller's side as ServerError.
        header: Optional[str] = None
        body: list[str] = []
        try:
            for raw in self._proc.stdout:
                line = raw.rstrip("\n")
                if header is None:
                    if line.startswith("case "):
                        header = line
                        body = []
                    else:
                        self._events.put(("line", line))
                elif line.startswith("done "):
                    self._events.put(("frame", header, body, line))
                    header = None
                elif line.startswith("case "):
                    # New header with no trailer: flush the truncated
                    # frame (trailer None → desync at read time).
                    self._events.put(("frame", header, body, None))
                    header = line
                    body = []
                else:
                    body.append(line)
        except ValueError:  # pipe closed under us during shutdown
            pass
        if header is not None:
            self._events.put(("frame", header, body, None))
        self._events.put(None)

    def _pump_stderr(self) -> None:
        try:
            for line in self._proc.stderr:
                self._stderr_tail.append(line.rstrip("\n"))
                del self._stderr_tail[:-20]
        except ValueError:
            pass

    # -- liveness --------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closed and self._proc.poll() is None

    @property
    def pid(self) -> int:
        return self._proc.pid

    @property
    def pending(self) -> int:
        """Cases submitted whose result frames have not been read yet."""
        return self.submitted - self.completed

    def _death_detail(self) -> str:
        rc = self._proc.poll()
        detail = f" (exit {rc})" if rc is not None else ""
        if self._stderr_tail:
            tail = " | ".join(self._stderr_tail)[:500]
            detail += f"; stderr: {tail}"
        return detail

    def _next_event(self, timeout: Optional[float], *, context: str) -> tuple:
        try:
            event = self._events.get(timeout=timeout)
        except queue.Empty:
            raise ServerError(
                f"server produced no output within {timeout:g}s "
                f"during {context}{self._death_detail()}"
            ) from None
        if event is None:
            raise ServerError(
                f"server stdout closed during {context}{self._death_detail()}"
            )
        return event

    # -- protocol --------------------------------------------------------
    def submit(self, record: str) -> int:
        """Write one encoded case record; returns the case's index."""
        if self._closed:
            raise ServerError("submit on a closed server")
        try:
            self._proc.stdin.write(record)
            self._proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise ServerError(
                f"server rejected case submission: {exc}{self._death_detail()}"
            ) from exc
        index = self.submitted
        self.submitted += 1
        return index

    def read_frame(self, timeout: Optional[float] = None) -> "list[str]":
        """Protocol lines of the next completed case, in submit order.

        Blocks until the case's ``done`` trailer arrives (so the frame
        is complete and flushed), at most ``timeout`` seconds.  Header
        and trailer indices are checked against the number of frames
        already read; a mismatch means the stream desynced.
        """
        context = f"case {self.completed}"
        event = self._next_event(timeout, context=context)
        if event[0] != "frame":
            raise ServerError(
                f"server frame desync: expected 'case {self.completed}', "
                f"got {event[1]!r}"
            )
        _, header, body, trailer = event
        parts = header.split()
        if len(parts) != 2 or parts[1] != str(self.completed):
            raise ServerError(
                f"server frame desync: expected 'case {self.completed}', "
                f"got {header!r}"
            )
        if trailer is None:
            raise ServerError(
                f"server frame desync: {context} frame truncated "
                f"(no 'done' trailer){self._death_detail()}"
            )
        parts = trailer.split()
        if len(parts) != 2 or parts[1] != str(self.completed):
            raise ServerError(
                f"server frame desync: expected 'done {self.completed}', "
                f"got {trailer!r}"
            )
        self.completed += 1
        return body

    # -- shutdown --------------------------------------------------------
    def close(self, timeout: float = 2.0) -> None:
        """Graceful shutdown: close stdin (clean EOF), then reap."""
        if self._closed:
            return
        self._closed = True
        try:
            self._proc.stdin.close()
        except OSError:
            pass
        try:
            self._proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            try:
                self._proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                pass
        self._cleanup_pipes()

    def kill(self) -> None:
        """Hard stop — used on crash, desync, or deadline overrun."""
        if self._closed:
            return
        self._closed = True
        self._proc.kill()
        try:
            self._proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            pass
        self._cleanup_pipes()

    def _cleanup_pipes(self) -> None:
        for pipe in (self._proc.stdin, self._proc.stdout, self._proc.stderr):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass

"""gcc compilation, execution, and result parsing.

Compile flags matter for the bit-for-bit equivalence contract:

* ``-O3`` — the paper's optimization level;
* ``-ffp-contract=off`` — forbid fused multiply-add contraction, which
  would change float results relative to the Python reference;
* strict IEEE (gcc's default; never ``-ffast-math``).
"""

from __future__ import annotations

import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from shutil import which
from typing import TYPE_CHECKING, Optional

from repro import telemetry
from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import Metric
from repro.coverage.report import CoverageReport
from repro.diagnosis.events import DiagnosticLog
from repro.dtypes import DType
from repro.engines.base import SimulationOptions, SimulationResult
from repro.instrument.plan import InstrumentationPlan
from repro.model.errors import CompilationError, SimulationError, SimulationTimeout
from repro.codegen.compose import ProgramLayout
from repro.schedule.program import FlatProgram

if TYPE_CHECKING:  # avoids importing the runner package at module load
    from repro.runner.cache import ArtifactCache

CFLAGS = ["-O3", "-ffp-contract=off", "-std=c11"]


def find_c_compiler() -> Optional[str]:
    """The first available C compiler, or None."""
    for candidate in ("gcc", "cc", "clang"):
        path = which(candidate)
        if path:
            return path
    return None


@dataclass
class CompiledSimulation:
    """A compiled simulation binary plus everything to interpret its run."""

    binary: Path
    source: Path
    layout: ProgramLayout
    compile_seconds: float
    workdir: Optional[tempfile.TemporaryDirectory] = field(
        default=None, repr=False, compare=False
    )
    cache_hit: bool = False

    def execute(
        self,
        *,
        input_text: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
    ) -> str:
        """Run the binary; ``timeout_seconds`` kills it when exceeded.

        ``input_text`` is piped to the binary's stdin — the reusable
        (stimulus-agnostic) programs read their case descriptors there;
        legacy baked-in programs take no input and get /dev/null.
        """
        proc = subprocess.Popen(
            [str(self.binary)],
            stdin=subprocess.PIPE if input_text is not None else subprocess.DEVNULL,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            stdout, stderr = proc.communicate(
                input=input_text, timeout=timeout_seconds
            )
        except subprocess.TimeoutExpired:
            proc.kill()
            _, stderr = proc.communicate()
            telemetry.counter_inc("engine.accmos.timeouts")
            detail = ""
            if stderr and stderr.strip():
                detail = f"; stderr: {stderr.strip()[:500]}"
            raise SimulationTimeout(
                f"simulation binary {self.binary} exceeded its "
                f"{timeout_seconds:g}s wall-clock budget and was killed"
                f"{detail}"
            ) from None
        if proc.returncode != 0:
            raise SimulationError(
                f"simulation binary failed (exit {proc.returncode}): "
                f"{stderr[:2000]}"
            )
        return stdout


def compile_c_program(
    source: str,
    layout: ProgramLayout,
    *,
    workdir: Optional[Path] = None,
    compiler: Optional[str] = None,
    cache: "Optional[ArtifactCache]" = None,
) -> CompiledSimulation:
    """Write and compile a generated program; returns the binary handle.

    With ``cache`` set (and no explicit ``workdir``), the compile is
    served from the content-addressed artifact cache when the same
    (source, compiler, flags) triple was compiled before — zero compiler
    invocations on a hit; on a miss the artifacts are moved into the
    cache atomically so later calls (from any process) hit.
    """
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise CompilationError("no C compiler found (need gcc, cc, or clang)")

    with telemetry.span("compile") as compile_span:
        use_cache = cache is not None and workdir is None
        key = None
        if use_cache:
            start = time.perf_counter()
            key = cache.key(source, compiler, CFLAGS)
            entry = cache.lookup(key)
            if entry is not None:
                telemetry.counter_inc("cache.hits")
                compile_span.set(cache_hit=True)
                return CompiledSimulation(
                    binary=entry.binary,
                    source=entry.source,
                    layout=layout,
                    compile_seconds=time.perf_counter() - start,
                    cache_hit=True,
                )
            telemetry.counter_inc("cache.misses")
        compile_span.set(cache_hit=False)

        tmp = None
        if workdir is None:
            tmp = tempfile.TemporaryDirectory(prefix="accmos_")
            workdir = Path(tmp.name)
        workdir.mkdir(parents=True, exist_ok=True)
        c_path = workdir / "simulation.c"
        bin_path = workdir / "simulation"
        c_path.write_text(source)

        start = time.perf_counter()
        with telemetry.span("gcc", compiler=compiler):
            proc = subprocess.run(
                [compiler, *CFLAGS, "-o", str(bin_path), str(c_path), "-lm"],
                capture_output=True,
                text=True,
                check=False,
            )
        elapsed = time.perf_counter() - start
        telemetry.observe("compile.gcc_seconds", elapsed)
        if proc.returncode != 0:
            telemetry.counter_inc("compile.failures")
            raise CompilationError(
                f"{compiler} failed:\n{proc.stderr[:4000]}"
            )
        if use_cache:
            entry = cache.store(key, c_path, bin_path)
            if tmp is not None:
                tmp.cleanup()
            return CompiledSimulation(
                binary=entry.binary,
                source=entry.source,
                layout=layout,
                compile_seconds=elapsed,
            )
        return CompiledSimulation(
            binary=bin_path,
            source=c_path,
            layout=layout,
            compile_seconds=elapsed,
            workdir=tmp,
        )


# ----------------------------------------------------------------------
# result parsing
# ----------------------------------------------------------------------
def _parse_value(text: str, dtype: DType):
    if dtype.is_float:
        return float.fromhex(text)
    return int(text)


def parse_result(
    stdout: str,
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options: SimulationOptions,
    *,
    engine: str = "accmos",
) -> SimulationResult:
    """Turn the protocol text into the shared result schema."""
    steps_run = 0
    halt_step = -1
    sim_seconds = 0.0
    deadline_exceeded = False
    outputs: dict[str, object] = {}
    checksums: dict[str, int] = {}
    bitmaps: dict[Metric, Bitmap] = {}
    monitored: dict[str, list] = {
        mon.path: [] for mon in layout.monitors
    }
    log = DiagnosticLog()
    for event in plan.static_warnings:
        log.add_static(event.path, event.kind, event.message)

    out_dtypes = dict(layout.outports)
    mon_by_id = {mon.mid: mon for mon in layout.monitors}
    metric_by_name = {m.value: m for m in Metric}

    for line in stdout.splitlines():
        parts = line.split()
        if not parts:
            continue
        tag = parts[0]
        if tag == "steps_run":
            steps_run = int(parts[1])
        elif tag == "halt":
            halt_step = int(parts[1])
        elif tag == "sim_seconds":
            sim_seconds = float(parts[1])
        elif tag == "checksum":
            checksums[parts[1]] = int(parts[2])
        elif tag == "output":
            outputs[parts[1]] = _parse_value(parts[2], out_dtypes[parts[1]])
        elif tag == "cov":
            metric = metric_by_name[parts[1]]
            n = int(parts[2]) if len(parts) > 2 else 0
            bitmaps[metric] = Bitmap.from_words(
                n, (int(word, 16) for word in parts[3:])
            )
        elif tag == "diag":
            slot, first, count = int(parts[1]), int(parts[2]), int(parts[3])
            path, kind, message = layout.diag_slots[slot]
            log.set_aggregate(path, kind, first, count, message)
        elif tag == "mon":
            mon = mon_by_id[int(parts[1])]
            step, raw = int(parts[2]), parts[3]
            monitored[mon.path].append((step, _parse_value(raw, mon.dtype)))
        elif tag == "timeout":
            # Batched programs flag an in-binary per-case deadline this
            # way instead of dying; the caller turns it into a timeout.
            deadline_exceeded = len(parts) > 1 and parts[1] != "0"
        else:
            raise SimulationError(f"unrecognized result line: {line!r}")

    coverage = None
    if plan.coverage_enabled:
        expected = {
            Metric.ACTOR: plan.points.n_actor,
            Metric.CONDITION: plan.points.n_condition,
            Metric.DECISION: plan.points.n_decision,
            Metric.MCDC: plan.points.n_mcdc,
        }
        for metric, size in expected.items():
            if metric not in bitmaps:
                bitmaps[metric] = Bitmap(size)
            elif len(bitmaps[metric]) != size:
                raise SimulationError(
                    f"coverage table size mismatch for {metric}: "
                    f"got {len(bitmaps[metric])}, expected {size}"
                )
        coverage = CoverageReport.from_bitmaps(plan.points, bitmaps)

    result = SimulationResult(
        engine=engine,
        model_name=prog.model.name,
        steps_requested=options.steps,
        steps_run=steps_run,
        wall_time=sim_seconds,
        outputs=outputs,
        checksums=checksums,
        coverage=coverage,
        diagnostics=log.events(),
        halted_at=None if halt_step < 0 else halt_step,
        monitored=monitored,
    )
    if deadline_exceeded:
        result.extra["deadline_exceeded"] = True
    return result


# ----------------------------------------------------------------------
# batch framing
# ----------------------------------------------------------------------
def split_case_frames(stdout: str) -> list[str]:
    """Split a batched run's stdout into per-case protocol sections.

    The reusable program prints ``case <i>`` before each case's records;
    everything before the first marker (there is nothing, normally) is
    discarded.
    """
    frames: list[str] = []
    current: Optional[list[str]] = None
    for line in stdout.splitlines():
        if line.startswith("case ") or line == "case":
            if current is not None:
                frames.append("\n".join(current))
            current = []
        elif current is not None:
            current.append(line)
    if current is not None:
        frames.append("\n".join(current))
    return frames


def parse_batch_result(
    stdout: str,
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options_per_case: "list[SimulationOptions]",
    *,
    engine: str = "accmos",
) -> list[SimulationResult]:
    """Parse a batched run: one :class:`SimulationResult` per case frame.

    Raises :class:`SimulationError` when the binary produced a different
    number of frames than cases were submitted (it died mid-batch with a
    zero exit, which a healthy program cannot do).  Per-case deadline
    trips are reported via ``result.extra["deadline_exceeded"]``.
    """
    frames = split_case_frames(stdout)
    if len(frames) != len(options_per_case):
        raise SimulationError(
            f"batched simulation produced {len(frames)} result frame(s) "
            f"for {len(options_per_case)} submitted case(s)"
        )
    return [
        parse_result(frame, prog, plan, layout, options, engine=engine)
        for frame, options in zip(frames, options_per_case)
    ]

"""Simulation code composition (paper §3.3, *Simulation Code Composition*).

Assembles the complete C program: runtime prelude, global state (signals,
actor states, stores, coverage tables, diagnosis slots, monitors,
checksums), then ``main`` with test-case import, the simulation loop in
execution order with every actor's instrumentation inlined at its
position, the state-update phase, and the result-output protocol.

The result protocol is plain text on stdout, one record per line::

    steps_run 12345
    halt -1
    sim_seconds 0.123456789
    checksum <outport> <u64>
    output <outport> <int or %a hex-float>
    cov <metric> <n_points> <hex word> ...   (64 points per word, LSB first)
    diag <slot> <first_step> <count>
    mon <monitor-id> <step> <value>

Slot/monitor indices are resolved back to actor paths by the
:class:`ProgramLayout` the generator returns alongside the source text.

Two program shapes share everything above:

* :func:`generate_c_program` — the legacy shape: stimuli and step count
  baked in as constants, one process run per case;
* :func:`generate_reusable_c_program` — the compile-once shape: the
  source depends only on ``(FlatProgram, InstrumentationPlan)`` plus the
  structural options, reads stimulus descriptors + per-case step counts
  from stdin (see :mod:`repro.codegen.descriptor`), and runs any number
  of cases back to back, each result section framed by a ``case <i>``
  line with full state/coverage/diagnostic reset in between.  Launched
  with ``--serve`` the same binary is a persistent simulation server:
  a ``ready`` handshake, then one flushed ``case <i> ... done <i>``
  frame per stdin record until stdin closes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.diagnosis.custom import CustomDiagnosis
from repro.diagnosis.events import FLAG_KINDS, DiagnosticKind
from repro.dtypes import DType
from repro.engines.base import SimulationOptions
from repro.instrument.plan import InstrumentationPlan
from repro.model.errors import CodegenError
from repro.codegen.cexpr import svar, value_literal
from repro.codegen.runtime import runtime_header, stimulus_runtime
from repro.codegen.templates import (
    EmitContext,
    emit_actor_output,
    emit_actor_update,
    state_reset_statements,
)
from repro.actors.math_ops import int_param
from repro.actors.sources import LCG_INC, LCG_MUL
from repro.dtypes import coerce_float
from repro.schedule.program import EvalGuard, FlatProgram
from repro.stimuli.base import (
    STIM_KIND_CONSTANT,
    STIM_KIND_INT_RANDOM,
    STIM_KIND_PULSE,
    STIM_KIND_RAMP,
    STIM_KIND_SEQUENCE,
    STIM_KIND_SINE,
    STIM_KIND_STEP,
    STIM_KIND_UNIFORM,
    Stimulus,
    c_double_literal,
)

_FLAG_VARS = {
    "overflow": "f_ov",
    "div_by_zero": "f_dz",
    "precision_loss": "f_pl",
    "non_finite": "f_nf",
    "out_of_bounds": "f_ob",
}


@dataclass
class MonitorLayout:
    mid: int
    path: str
    dtype: DType
    value_var: str


@dataclass
class ProgramLayout:
    """Everything the result parser needs to interpret the protocol."""

    diag_slots: list[tuple[str, DiagnosticKind, str]] = field(default_factory=list)
    monitors: list[MonitorLayout] = field(default_factory=list)
    outports: list[tuple[str, DType]] = field(default_factory=list)


def _substitute_custom_predicate(diag: CustomDiagnosis, fa, prog) -> str:
    """Rewrite in0/out0 tokens of a C predicate to signal variables."""
    if diag.c_predicate is None:
        raise CodegenError(
            f"custom diagnosis at {diag.actor_path!r} has no C predicate; "
            f"AccMoS needs one (the Python predicate only serves the "
            f"interpreted engines)"
        )

    def replace(match: re.Match) -> str:
        kind, index = match.group(1), int(match.group(2))
        sids = fa.input_sids if kind == "in" else fa.output_sids
        if index >= len(sids):
            raise CodegenError(
                f"custom diagnosis at {diag.actor_path!r}: no {kind}{index}"
            )
        return svar(sids[index])

    return re.sub(r"\b(in|out)(\d+)\b", replace, diag.c_predicate)


def generate_c_program(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> tuple[str, ProgramLayout]:
    """Generate the legacy (baked-in stimuli) C source: ``(source, layout)``."""
    return _generate(prog, plan, options, stimuli=stimuli)


def generate_reusable_c_program(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    options: SimulationOptions,
) -> tuple[str, ProgramLayout]:
    """Generate the stimulus-agnostic, batch-capable C source.

    The text depends only on the program, the plan, and the *structural*
    options (coverage/diagnostics/collect/diagnose/custom via the plan,
    plus ``halt_on``/``monitor_limit``/``checksum``) — never on stimuli,
    ``steps``, or ``time_budget``, which arrive per case on stdin.  The
    artifact-cache key therefore stays constant across an entire seed
    campaign: one gcc invocation serves every case.
    """
    return _generate(prog, plan, options, stimuli=None)


def _generate(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    options: SimulationOptions,
    stimuli: Optional[Mapping[str, Stimulus]],
) -> tuple[str, ProgramLayout]:
    reusable = stimuli is None
    ctx = EmitContext(prog=prog, plan=plan)
    layout = ProgramLayout()
    halt_kinds = options.halt_on or frozenset()
    use_halt_label = bool(halt_kinds)

    # ---- diagnosis slot assignment (flat order, deterministic) ----
    slot_of: dict[tuple[int, str], int] = {}
    custom_slot_of: dict[tuple[int, int], int] = {}
    for inst in plan.actors:
        for kind in sorted(inst.diagnose_kinds, key=lambda k: k.value):
            slot_of[(inst.actor_index, kind.value)] = len(layout.diag_slots)
            layout.diag_slots.append((inst.path, kind, ""))
        for j, diag in enumerate(inst.custom):
            custom_slot_of[(inst.actor_index, j)] = len(layout.diag_slots)
            layout.diag_slots.append((inst.path, DiagnosticKind.CUSTOM, diag.message))

    # ---- monitors ----
    for inst in plan.actors:
        if not inst.collect:
            continue
        fa = prog.actors[inst.actor_index]
        if fa.output_sids:
            sid = fa.output_sids[0]
        elif fa.input_sids:
            sid = fa.input_sids[0]
        else:
            continue
        layout.monitors.append(
            MonitorLayout(
                mid=len(layout.monitors),
                path=inst.path,
                dtype=prog.signals[sid].dtype,
                value_var=svar(sid),
            )
        )

    layout.outports = [(b.name, b.dtype) for b in prog.outports]

    # ---- per-node body (fills ctx.decls as templates declare state) ----
    step_body = _emit_step_body(
        ctx, prog, plan, slot_of, custom_slot_of, layout, halt_kinds, options
    )
    update_body = _emit_update_body(ctx, prog)
    if reusable:
        stim_body = _emit_descriptor_stimuli(prog)
        stim_decls = [
            f"#define ACC_NPORTS {len(prog.inports)}",
            stimulus_runtime().rstrip(),
        ]
    else:
        stim_body, stim_decls = _emit_stimuli(prog, stimuli)

    # ---- globals ----
    globals_: list[str] = []
    globals_.append("/* ---- signals (persistent across steps) ---- */")
    for sig in prog.signals:
        globals_.append(f"static {sig.dtype.c_name} {svar(sig.sid)}; /* {sig.name} */")
    globals_.append("/* ---- guards ---- */")
    for guard in prog.guards:
        globals_.append(f"static uint8_t g{guard.gid}; /* {guard.path} */")
    globals_.append("/* ---- data stores ---- */")
    store_inits: list[tuple[str, str]] = []
    for info in prog.stores.values():
        if info.dtype.is_float:
            init = value_literal(coerce_float(float(info.initial), info.dtype), info.dtype)
        else:
            init = value_literal(int_param(info.initial, info.dtype), info.dtype)
        store_inits.append((f"store_{info.name}", init))
        globals_.append(f"static {info.dtype.c_name} store_{info.name} = {init};")
    globals_.append("/* ---- actor state ---- */")
    globals_.extend(ctx.decls)
    globals_.append("/* ---- stimuli state ---- */")
    globals_.extend(stim_decls)

    points = plan.points
    if plan.coverage_enabled:
        globals_.append("/* ---- coverage bitmaps ---- */")
        globals_.append(f"static uint8_t cov_actor[{max(1, points.n_actor)}];")
        globals_.append(f"static uint8_t cov_cond[{max(1, points.n_condition)}];")
        globals_.append(f"static uint8_t cov_dec[{max(1, points.n_decision)}];")
        globals_.append(f"static uint8_t cov_mcdc[{max(1, points.n_mcdc)}];")

    n_slots = max(1, len(layout.diag_slots))
    globals_.append("/* ---- diagnosis slots ---- */")
    globals_.append(f"static int64_t diag_first[{n_slots}];")
    globals_.append(f"static uint64_t diag_count[{n_slots}];")
    globals_.append(
        "#define ACC_DIAG(k) do { if (diag_first[k] < 0) diag_first[k] = step; "
        "diag_count[k]++; } while (0)"
    )

    globals_.append("/* ---- signal monitors ---- */")
    mon_limit = max(1, options.monitor_limit)
    for mon in layout.monitors:
        globals_.append(f"static int64_t mon{mon.mid}_step[{mon_limit}];")
        globals_.append(f"static {mon.dtype.c_name} mon{mon.mid}_val[{mon_limit}];")
        globals_.append(f"static int mon{mon.mid}_n;")

    globals_.append("/* ---- output checksums ---- */")
    for i, _ in enumerate(prog.outports):
        globals_.append(f"static uint64_t chk{i};")

    if reusable:
        from repro.inproc.abi import ABI_VERSION, result_buffer_size

        reset_fn = _emit_case_reset(
            prog, plan, layout, ctx, store_inits, globals_
        )
        sim_fn = _emit_sim_case_fn(
            prog, options,
            stim_body=stim_body, step_body=step_body,
            update_body=update_body, use_halt_label=use_halt_label,
        )
        main_lines = _emit_batch_main(prog, plan, layout, options)
        lib_fn = _emit_lib_exports(
            prog, plan, layout, options,
            abi_version=ABI_VERSION,
            result_size=result_buffer_size(layout, plan, options),
        )
        chunks = [
            runtime_header(), "\n".join(globals_), "", reset_fn, "",
            sim_fn, "", "\n".join(main_lines), "", lib_fn, "",
        ]
        return "\n".join(chunks), layout

    # ---- main (legacy: one baked-in case per process run) ----
    main_lines: list[str] = []
    main_lines.append("int main(void) {")
    main_lines.append("    int64_t halt_step = -1;")
    main_lines.append("    int64_t steps_run = 0;")
    main_lines.append("    struct timespec _t0, _t1;")
    main_lines.append("    int64_t step;")
    for i in range(max(1, len(layout.diag_slots))):
        main_lines.append(f"    diag_first[{i}] = -1;")
    main_lines.append("    clock_gettime(CLOCK_MONOTONIC, &_t0);")
    main_lines.append(f"    for (step = 0; step < {options.steps}LL; step++) {{")
    if options.time_budget is not None:
        main_lines.append("        if ((step & 511) == 0) {")
        main_lines.append("            clock_gettime(CLOCK_MONOTONIC, &_t1);")
        main_lines.append(
            "            if ((double)(_t1.tv_sec - _t0.tv_sec) + "
            "1e-9 * (double)(_t1.tv_nsec - _t0.tv_nsec) >= "
            f"{options.time_budget!r}) break;"
        )
        main_lines.append("        }")
    main_lines.append("        /* ---- test case import ---- */")
    main_lines.append(_indent(stim_body, 8))
    main_lines.append("        /* ---- model step (execution order) ---- */")
    main_lines.append(_indent(step_body, 8))
    main_lines.append("        /* ---- state update phase ---- */")
    main_lines.append(_indent(update_body, 8))
    if options.checksum and prog.outports:
        main_lines.append("        /* ---- output checksums ---- */")
        for i, binding in enumerate(prog.outports):
            main_lines.append(
                f"        ACC_CHK(chk{i}, {_bits_expr(svar(binding.sid), binding.dtype)});"
            )
    main_lines.append("        steps_run = step + 1;")
    if use_halt_label:
        main_lines.append("        continue;")
        main_lines.append("    sim_halt:")
        main_lines.append("        halt_step = step;")
        main_lines.append("        steps_run = step + 1;")
        main_lines.append("        break;")
    main_lines.append("    }")
    main_lines.append("    clock_gettime(CLOCK_MONOTONIC, &_t1);")
    main_lines.append(
        "    double _elapsed = (double)(_t1.tv_sec - _t0.tv_sec) + "
        "1e-9 * (double)(_t1.tv_nsec - _t0.tv_nsec);"
    )
    main_lines.append(_indent(_emit_report(prog, plan, layout, options), 4))
    main_lines.append("    return 0;")
    main_lines.append("}")

    source = "\n".join(
        [runtime_header(), "\n".join(globals_), "", "\n".join(main_lines), ""]
    )
    return source, layout


# ----------------------------------------------------------------------
# pieces
# ----------------------------------------------------------------------
def _indent(code: str, by: int) -> str:
    pad = " " * by
    return "\n".join(pad + line if line.strip() else line for line in code.split("\n"))


def _bits_expr(var: str, dtype: DType) -> str:
    if dtype is DType.F64:
        return f"acc_bits_f64({var})"
    if dtype is DType.F32:
        return f"acc_bits_f32({var})"
    return f"(uint64_t)(int64_t){var}"


def _emit_stimuli(prog: FlatProgram, stimuli: Mapping[str, Stimulus]):
    body: list[str] = []
    decls: list[str] = []
    for i, binding in enumerate(prog.inports):
        stim = stimuli[binding.name]
        prefix = f"stim{i}"
        decl = stim.c_decls(prefix)
        if decl:
            decls.append(decl)
        body.append(stim.c_step(svar(binding.sid), binding.dtype, prefix))
    return "\n".join(body), decls


def _emit_descriptor_stimuli(prog: FlatProgram) -> str:
    """Per-port stimulus interpretation from runtime descriptors.

    Each port gets a switch specialized on its dtype at codegen time, so
    the int-vs-float slot selection — and therefore every C conversion —
    matches what the baked-in emitters would have produced for the same
    stimulus, keeping the streams bit-identical.
    """
    adv = f"_st->state = _st->state * {LCG_MUL}ULL + {LCG_INC}ULL;"
    scale = c_double_literal(1.0 / 9007199254740992.0)
    lines: list[str] = []
    for i, binding in enumerate(prog.inports):
        t = binding.dtype.c_name
        target = svar(binding.sid)
        floaty = binding.dtype.is_float
        v0 = "_st->fv0" if floaty else "_st->iv0"
        v1 = "_st->fv1" if floaty else "_st->iv1"
        lines.append(f"{{ acc_stim *_st = &acc_stims[{i}]; /* {binding.name} */")
        lines.append("switch ((int)_st->kind) {")
        lines.append(
            f"case {STIM_KIND_CONSTANT}: {target} = ({t}){v0}; break;"
        )
        # Table reads stay in separate if/else branches: a ?: would unify
        # the operand types to double and round int64 values > 2**53.
        lines.append(
            f"case {STIM_KIND_SEQUENCE}: {{ long long _k = step % _st->tab_len; "
            f"if (_st->tab_is_float) {target} = ({t})_st->tab_f[_k]; "
            f"else {target} = ({t})_st->tab_i[_k]; }} break;"
        )
        lines.append(
            f"case {STIM_KIND_RAMP}: "
            f"{target} = ({t})(_st->f0 + _st->f1 * (double)step); break;"
        )
        lines.append(
            f"case {STIM_KIND_SINE}: {target} = ({t})(_st->f0 * "
            f"sin(_st->f1 * (double)step + _st->f2) + _st->f3); break;"
        )
        lines.append(
            f"case {STIM_KIND_STEP}: {target} = (step < _st->i0) ? "
            f"({t}){v0} : ({t}){v1}; break;"
        )
        lines.append(
            f"case {STIM_KIND_PULSE}: {target} = ((step % _st->i0) < _st->i1) ? "
            f"({t}){v0} : ({t}){v1}; break;"
        )
        lines.append(
            f"case {STIM_KIND_UNIFORM}: {{ unsigned long long _r = _st->state; "
            f"{adv} {target} = ({t})(_st->f0 + ((double)(_r >> 11) * {scale}) * "
            f"(_st->f1 - _st->f0)); }} break;"
        )
        lines.append(
            f"case {STIM_KIND_INT_RANDOM}: {{ unsigned long long _r = _st->state; "
            f"{adv} {target} = ({t})(_st->i0 + "
            f"(long long)((_r >> 33) % _st->u0)); }} break;"
        )
        lines.append(f"default: {target} = ({t})0; break;")
        lines.append("} }")
    return "\n".join(lines) if lines else "/* no inports */"


def _emit_case_reset(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    ctx: EmitContext,
    store_inits: list[tuple[str, str]],
    globals_: list[str],
) -> str:
    """``acc_case_reset()``: restore every global to its load-time value
    so case N+1 of a batch sees exactly the state a fresh process would.
    Appends the shadow ``const`` initializer copies for state arrays to
    ``globals_``.
    """
    shadows, state_resets = state_reset_statements(ctx.decls)
    if shadows:
        globals_.append("/* ---- state-array initial images (batch reset) ---- */")
        globals_.extend(shadows)

    body: list[str] = []
    body.append("/* signals */")
    for sig in prog.signals:
        body.append(f"{svar(sig.sid)} = 0;")
    for guard in prog.guards:
        body.append(f"g{guard.gid} = 0;")
    if store_inits:
        body.append("/* data stores */")
        for name, init in store_inits:
            body.append(f"{name} = {init};")
    if state_resets:
        body.append("/* actor state */")
        body.extend(state_resets)
    if plan.coverage_enabled:
        body.append("/* coverage */")
        for array in ("cov_actor", "cov_cond", "cov_dec", "cov_mcdc"):
            body.append(f"memset({array}, 0, sizeof({array}));")
    n_slots = max(1, len(layout.diag_slots))
    body.append("/* diagnosis slots */")
    body.append(
        f"for (int _i = 0; _i < {n_slots}; _i++) "
        "{ diag_first[_i] = -1; diag_count[_i] = 0; }"
    )
    if layout.monitors:
        body.append("/* monitors */")
        for mon in layout.monitors:
            body.append(f"mon{mon.mid}_n = 0;")
    if prog.outports:
        body.append("/* checksums */")
        for i, _ in enumerate(prog.outports):
            body.append(f"chk{i} = 0;")
    return (
        "static void acc_case_reset(void) {\n"
        + _indent("\n".join(body), 4)
        + "\n}"
    )


def _emit_sim_case_fn(
    prog: FlatProgram,
    options: SimulationOptions,
    *,
    stim_body: str,
    step_body: str,
    update_body: str,
    use_halt_label: bool,
) -> str:
    """``acc_sim_case()``: one case end to end — reset, simulation loop,
    budget/deadline checks, timings.  Shared verbatim by the stdin-driven
    ``main`` and the exported in-process entry point, so the two paths
    cannot diverge.  Returns 1 when the per-case deadline tripped.
    """
    lines: list[str] = []
    lines.append(
        "static int acc_sim_case(long long _case_steps, double _case_budget, "
        "double _case_deadline,"
    )
    lines.append(
        "                        int64_t *_out_steps_run, "
        "int64_t *_out_halt_step, double *_out_elapsed) {"
    )
    lines.append("    int64_t halt_step = -1;")
    lines.append("    int64_t steps_run = 0;")
    lines.append("    int _case_timed_out = 0;")
    lines.append("    int64_t step;")
    lines.append("    struct timespec _t0, _t1;")
    lines.append("    acc_case_reset();")
    lines.append("    clock_gettime(CLOCK_MONOTONIC, &_t0);")
    lines.append("    for (step = 0; step < (int64_t)_case_steps; step++) {")
    lines.append(
        "        if ((_case_budget > 0.0 || _case_deadline > 0.0) && "
        "(step & 511) == 0) {"
    )
    lines.append("            clock_gettime(CLOCK_MONOTONIC, &_t1);")
    lines.append(
        "            double _el = (double)(_t1.tv_sec - _t0.tv_sec) + "
        "1e-9 * (double)(_t1.tv_nsec - _t0.tv_nsec);"
    )
    lines.append(
        "            if (_case_deadline > 0.0 && _el >= _case_deadline) "
        "{ _case_timed_out = 1; break; }"
    )
    lines.append(
        "            if (_case_budget > 0.0 && _el >= _case_budget) break;"
    )
    lines.append("        }")
    lines.append("        /* ---- test case import (descriptors) ---- */")
    lines.append(_indent(stim_body, 8))
    lines.append("        /* ---- model step (execution order) ---- */")
    lines.append(_indent(step_body, 8))
    lines.append("        /* ---- state update phase ---- */")
    lines.append(_indent(update_body, 8))
    if options.checksum and prog.outports:
        lines.append("        /* ---- output checksums ---- */")
        for i, binding in enumerate(prog.outports):
            lines.append(
                f"        ACC_CHK(chk{i}, "
                f"{_bits_expr(svar(binding.sid), binding.dtype)});"
            )
    lines.append("        steps_run = step + 1;")
    if use_halt_label:
        lines.append("        continue;")
        lines.append("    sim_halt:")
        lines.append("        halt_step = step;")
        lines.append("        steps_run = step + 1;")
        lines.append("        break;")
    lines.append("    }")
    lines.append("    clock_gettime(CLOCK_MONOTONIC, &_t1);")
    lines.append(
        "    *_out_elapsed = (double)(_t1.tv_sec - _t0.tv_sec) + "
        "1e-9 * (double)(_t1.tv_nsec - _t0.tv_nsec);"
    )
    lines.append("    *_out_steps_run = steps_run;")
    lines.append("    *_out_halt_step = halt_step;")
    lines.append("    return _case_timed_out;")
    lines.append("}")
    return "\n".join(lines)


def _emit_batch_main(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options: SimulationOptions,
) -> list[str]:
    """``main`` for the reusable program: loop over stdin case records.

    Invoked with ``--serve`` the same loop becomes a persistent server:
    it prints a ``ready`` handshake up front and flushes stdout after
    every case's ``done <i>`` trailer, so a host process can stream case
    records in and parse each result frame as soon as it completes —
    one warm process, zero respawns, until stdin closes.
    """
    lines: list[str] = []
    lines.append("int main(int argc, char **argv) {")
    lines.append("    long long _case_steps;")
    lines.append("    double _case_budget, _case_deadline;")
    lines.append("    int _case_index = 0;")
    lines.append("    int _rc;")
    lines.append("    int _serve = acc_serve_mode(argc, argv);")
    lines.append('    if (_serve) { printf("ready\\n"); fflush(stdout); }')
    lines.append(
        "    while ((_rc = acc_read_case(&_case_steps, &_case_budget, "
        "&_case_deadline)) == 1) {"
    )
    lines.append("        int64_t steps_run, halt_step;")
    lines.append("        double _elapsed;")
    lines.append('        printf("case %d\\n", _case_index);')
    lines.append(
        "        int _case_timed_out = acc_sim_case(_case_steps, "
        "_case_budget, _case_deadline,"
    )
    lines.append(
        "                                            &steps_run, &halt_step, "
        "&_elapsed);"
    )
    lines.append(_indent(_emit_report(prog, plan, layout, options), 8))
    lines.append(
        '        if (_case_timed_out) printf("timeout 1\\n");'
    )
    lines.append(
        '        if (_serve) { printf("done %d\\n", _case_index); '
        "fflush(stdout); }"
    )
    lines.append("        _case_index++;")
    lines.append("    }")
    lines.append("    if (_rc < 0) {")
    lines.append(
        '        fprintf(stderr, "accmos: malformed stimulus descriptor '
        'input\\n");'
    )
    lines.append("        return 2;")
    lines.append("    }")
    lines.append("    return 0;")
    lines.append("}")
    return lines


def _emit_binary_report(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options: SimulationOptions,
) -> str:
    """The packed-result body of ``acc_lib_run_case``: every 8-byte word
    the text protocol would print, in the fixed order ``inproc.abi``
    decodes — checksums, output bits, coverage words, diagnosis slots,
    monitor samples.  Floats travel as canonical IEEE bits (same
    ``acc_bits_*`` NaN canonicalization the checksums use).
    """
    lines: list[str] = []
    if options.checksum:
        for i, _binding in enumerate(prog.outports):
            lines.append(f"acc_put_u((unsigned long long)chk{i});")
    for binding in prog.outports:
        var = svar(binding.sid)
        if binding.dtype.is_float:
            lines.append(f"acc_put_u(acc_bits_f64((double){var}));")
        else:
            lines.append(
                f"acc_put_u((unsigned long long)(uint64_t)(int64_t){var});"
            )
    if plan.coverage_enabled:
        points = plan.points
        for array, n in (
            ("cov_actor", points.n_actor),
            ("cov_cond", points.n_condition),
            ("cov_dec", points.n_decision),
            ("cov_mcdc", points.n_mcdc),
        ):
            lines.append(f"for (int _i = 0; _i < {n}; _i += 64) {{")
            lines.append("    uint64_t _w = 0;")
            lines.append(f"    for (int _b = 0; _b < 64 && _i + _b < {n}; _b++)")
            lines.append(f"        _w |= (uint64_t)({array}[_i + _b] & 1) << _b;")
            lines.append("    acc_put_u((unsigned long long)_w);")
            lines.append("}")
    for slot in range(len(layout.diag_slots)):
        lines.append(f"acc_put_i((long long)diag_first[{slot}]);")
        lines.append(f"acc_put_u((unsigned long long)diag_count[{slot}]);")
    for mon in layout.monitors:
        if mon.dtype.is_float:
            value = f"acc_bits_f64((double)mon{mon.mid}_val[_i])"
        else:
            value = (
                f"(unsigned long long)(uint64_t)(int64_t)mon{mon.mid}_val[_i]"
            )
        lines.append(f"acc_put_u((unsigned long long)mon{mon.mid}_n);")
        lines.append(f"for (int _i = 0; _i < mon{mon.mid}_n; _i++) {{")
        lines.append(f"    acc_put_i((long long)mon{mon.mid}_step[_i]);")
        lines.append(f"    acc_put_u({value});")
        lines.append("}")
    return "\n".join(lines) if lines else "/* header only */"


def _emit_lib_exports(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options: SimulationOptions,
    *,
    abi_version: int,
    result_size: int,
) -> str:
    """The in-process entry points (``repro.inproc``): same reusable
    source compiled with ``-shared -fPIC`` becomes a loadable engine.

    ``acc_lib_run_case`` reads one packed binary case record and fills a
    caller-provided result buffer — no stdio on either side.  Returns
    0 on success, -1 for a malformed record (including trailing bytes),
    -2 for a port-count mismatch, -3 when the result buffer is smaller
    than ``acc_lib_result_size()``.  A tripped per-case deadline is a
    *success* with result flag bit 0 set, mirroring the text protocol's
    ``timeout 1`` trailer.  ``acc_lib_init`` returns 0 on success — the
    loader treats any non-zero init status as a fatal fault and refuses
    the instance (the ABI version travels via ``acc_lib_abi_version``).
    """
    lines: list[str] = []
    lines.append("/* ---- in-process shared-library ABI (repro.inproc) ---- */")
    lines.append(f"#define ACC_LIB_ABI_VERSION {abi_version}")
    lines.append(f"#define ACC_LIB_RESULT_SIZE {result_size}LL")
    lines.append("")
    lines.append("static unsigned char *acc_wp;")
    lines.append(
        "static void acc_put_i(long long v) { memcpy(acc_wp, &v, 8); "
        "acc_wp += 8; }"
    )
    lines.append(
        "static void acc_put_u(unsigned long long v) { memcpy(acc_wp, &v, 8); "
        "acc_wp += 8; }"
    )
    lines.append(
        "static void acc_put_f(double v) { memcpy(acc_wp, &v, 8); "
        "acc_wp += 8; }"
    )
    lines.append("")
    lines.append("int acc_lib_abi_version(void) { return ACC_LIB_ABI_VERSION; }")
    lines.append(
        "long long acc_lib_result_size(void) { return ACC_LIB_RESULT_SIZE; }"
    )
    lines.append("void acc_lib_reset(void) { acc_case_reset(); }")
    lines.append(
        "int acc_lib_init(void) { acc_case_reset(); return 0; }"
    )
    lines.append("")
    lines.append(
        "int acc_lib_run_case(const unsigned char *record, "
        "long long record_len,"
    )
    lines.append(
        "                     unsigned char *result, long long result_len) {"
    )
    lines.append("    long long _case_steps;")
    lines.append("    double _case_budget, _case_deadline;")
    lines.append("    int64_t steps_run, halt_step;")
    lines.append("    double _elapsed;")
    lines.append(
        "    acc_cur _c = { record, "
        "record + (record_len > 0 ? record_len : 0) };"
    )
    lines.append(
        "    int _rc = acc_read_case_bin(&_c, &_case_steps, &_case_budget, "
        "&_case_deadline);"
    )
    lines.append("    if (_rc != 1) return _rc == -2 ? -2 : -1;")
    lines.append("    if (_c.p != _c.end) return -1;")
    lines.append("    if (result_len < ACC_LIB_RESULT_SIZE) return -3;")
    lines.append(
        "    int _case_timed_out = acc_sim_case(_case_steps, _case_budget, "
        "_case_deadline,"
    )
    lines.append(
        "                                       &steps_run, &halt_step, "
        "&_elapsed);"
    )
    lines.append("    acc_wp = result;")
    lines.append("    acc_put_i((long long)steps_run);")
    lines.append("    acc_put_i((long long)halt_step);")
    lines.append("    acc_put_f(_elapsed);")
    lines.append("    acc_put_u(_case_timed_out ? 1ULL : 0ULL);")
    lines.append(_indent(_emit_binary_report(prog, plan, layout, options), 4))
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines)


def _mcdc_block(op: str, truth_exprs: list[str], base: int) -> str:
    """Inline masking MC/DC; mirrors coverage.mcdc.mcdc_sides."""
    n = len(truth_exprs)
    if op in ("AND", "NAND"):
        count = " + ".join(f"(!{t})" for t in truth_exprs)
        all_hits = " ".join(f"cov_mcdc[{base + 2 * i + 1}] = 1;" for i in range(n))
        chain = []
        for i, t in enumerate(truth_exprs):
            kw = "if" if i == 0 else "else if"
            chain.append(f"{kw} (!{t}) cov_mcdc[{base + 2 * i}] = 1;")
        return (
            f"{{ int _nf2 = {count}; "
            f"if (_nf2 == 0) {{ {all_hits} }} "
            f"else if (_nf2 == 1) {{ {' '.join(chain)} }} }}"
        )
    if op in ("OR", "NOR"):
        count = " + ".join(f"({t})" for t in truth_exprs)
        all_hits = " ".join(f"cov_mcdc[{base + 2 * i}] = 1;" for i in range(n))
        chain = []
        for i, t in enumerate(truth_exprs):
            kw = "if" if i == 0 else "else if"
            chain.append(f"{kw} ({t}) cov_mcdc[{base + 2 * i + 1}] = 1;")
        return (
            f"{{ int _nt2 = {count}; "
            f"if (_nt2 == 0) {{ {all_hits} }} "
            f"else if (_nt2 == 1) {{ {' '.join(chain)} }} }}"
        )
    if op == "XOR":
        return " ".join(
            f"cov_mcdc[{base + 2 * i} + ({t} ? 1 : 0)] = 1;"
            for i, t in enumerate(truth_exprs)
        )
    return ""


def _emit_step_body(
    ctx: EmitContext,
    prog: FlatProgram,
    plan: InstrumentationPlan,
    slot_of: dict,
    custom_slot_of: dict,
    layout: ProgramLayout,
    halt_kinds: frozenset,
    options: SimulationOptions,
) -> str:
    monitor_by_index = {m.path: m for m in layout.monitors}
    lines: list[str] = []
    for node in prog.order:
        if isinstance(node, EvalGuard):
            guard = prog.guards[node.gid]
            parent = f"g{guard.parent} && " if guard.parent is not None else ""
            lines.append(
                f"g{node.gid} = (uint8_t)({parent}({svar(guard.signal)} > 0));"
            )
            continue

        fa = prog.actors[node.actor_index]
        inst = plan.actors[node.actor_index]
        block: list[str] = [f"/* {fa.path} ({fa.block_type}) */"]
        block.append("FLAGS_RESET();")
        block.append(emit_actor_output(ctx, fa))

        if plan.coverage_enabled:
            block.append(f"cov_actor[{inst.actor_point}] = 1;")
            if inst.decision_base is not None:
                out = svar(fa.output_sids[0])
                block.append(
                    f"cov_dec[{inst.decision_base} + ({out} != 0 ? 1 : 0)] = 1;"
                )
            if inst.mcdc_base is not None:
                truths = [f"({svar(s)} != 0)" for s in fa.input_sids]
                block.append(
                    _mcdc_block(inst.logic_op, truths, inst.mcdc_base[0])
                )

        if plan.diagnostics_enabled:
            # FLAG_KINDS order, matching the interpreted engine's checks.
            for flag_name, kind in FLAG_KINDS:
                if kind not in inst.diagnose_kinds:
                    continue
                slot = slot_of[(fa.index, kind.value)]
                flag = _FLAG_VARS[flag_name]
                halt = " goto sim_halt;" if kind in halt_kinds else ""
                block.append(f"if ({flag}) {{ ACC_DIAG({slot});{halt} }}")
            for j, diag in enumerate(inst.custom):
                slot = custom_slot_of[(fa.index, j)]
                pred = _substitute_custom_predicate(diag, fa, prog)
                halt = (
                    " goto sim_halt;" if DiagnosticKind.CUSTOM in halt_kinds else ""
                )
                block.append(f"if ({pred}) {{ ACC_DIAG({slot});{halt} }}")

        if inst.collect and inst.path in monitor_by_index:
            mon = monitor_by_index[inst.path]
            limit = max(1, options.monitor_limit)
            block.append(
                f"if (mon{mon.mid}_n < {limit}) {{ "
                f"mon{mon.mid}_step[mon{mon.mid}_n] = step; "
                f"mon{mon.mid}_val[mon{mon.mid}_n] = {mon.value_var}; "
                f"mon{mon.mid}_n++; }}"
            )

        body = "\n".join(b for b in block if b)
        if fa.guard is not None:
            lines.append(f"if (g{fa.guard}) {{\n{_indent(body, 4)}\n}}")
        else:
            lines.append(body)
    return "\n".join(lines)


def _flag_for(kind: DiagnosticKind) -> str:
    for flag_name, flag_kind in FLAG_KINDS:
        if flag_kind is kind:
            return flag_name
    raise CodegenError(f"kind {kind} has no runtime flag")


def _emit_update_body(ctx: EmitContext, prog: FlatProgram) -> str:
    lines = []
    for node in prog.order:
        if isinstance(node, EvalGuard):
            continue
        fa = prog.actors[node.actor_index]
        update = emit_actor_update(ctx, fa)
        if not update:
            continue
        if fa.guard is not None:
            lines.append(f"if (g{fa.guard}) {{ {update} }}")
        else:
            lines.append(update)
    return "\n".join(lines) if lines else "/* no stateful actors */"


def _emit_report(
    prog: FlatProgram,
    plan: InstrumentationPlan,
    layout: ProgramLayout,
    options: SimulationOptions,
) -> str:
    lines: list[str] = []
    lines.append('printf("steps_run %lld\\n", (long long)steps_run);')
    lines.append('printf("halt %lld\\n", (long long)halt_step);')
    lines.append('printf("sim_seconds %.9f\\n", _elapsed);')
    for i, binding in enumerate(prog.outports):
        if options.checksum:
            lines.append(
                f'printf("checksum {binding.name} %llu\\n", '
                f"(unsigned long long)chk{i});"
            )
        var = svar(binding.sid)
        if binding.dtype.is_float:
            lines.append(f'printf("output {binding.name} %a\\n", (double){var});')
        elif binding.dtype.is_signed:
            lines.append(
                f'printf("output {binding.name} %lld\\n", (long long){var});'
            )
        else:
            lines.append(
                f'printf("output {binding.name} %llu\\n", '
                f"(unsigned long long){var});"
            )
    if plan.coverage_enabled:
        points = plan.points
        # Bitmaps travel as 64-point hex words (LSB = lowest point index):
        # 64x fewer bytes and parse iterations than one ASCII 0/1 per point.
        for metric, array, n in (
            ("actor", "cov_actor", points.n_actor),
            ("condition", "cov_cond", points.n_condition),
            ("decision", "cov_dec", points.n_decision),
            ("mcdc", "cov_mcdc", points.n_mcdc),
        ):
            lines.append(f'printf("cov {metric} {n}");')
            lines.append(f"for (int _i = 0; _i < {n}; _i += 64) {{")
            lines.append("    uint64_t _w = 0;")
            lines.append(
                f"    for (int _b = 0; _b < 64 && _i + _b < {n}; _b++)"
            )
            lines.append(
                f"        _w |= (uint64_t)({array}[_i + _b] & 1) << _b;"
            )
            lines.append('    printf(" %llx", (unsigned long long)_w);')
            lines.append("}")
            lines.append("putchar('\\n');")
    for slot in range(len(layout.diag_slots)):
        lines.append(
            f"if (diag_first[{slot}] >= 0) "
            f'printf("diag {slot} %lld %llu\\n", '
            f"(long long)diag_first[{slot}], "
            f"(unsigned long long)diag_count[{slot}]);"
        )
    for mon in layout.monitors:
        if mon.dtype.is_float:
            value_fmt, value_cast = "%a", "(double)"
        elif mon.dtype.is_signed:
            value_fmt, value_cast = "%lld", "(long long)"
        else:
            value_fmt, value_cast = "%llu", "(unsigned long long)"
        lines.append(
            f"for (int _i = 0; _i < mon{mon.mid}_n; _i++) "
            f'printf("mon {mon.mid} %lld {value_fmt}\\n", '
            f"(long long)mon{mon.mid}_step[_i], {value_cast}mon{mon.mid}_val[_i]);"
        )
    return "\n".join(lines)

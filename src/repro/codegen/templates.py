"""The actor code template library (paper §3.3, *Actor Translation*).

One emitter per block type.  Each produces the C for an actor's *output*
phase (and, for stateful actors, its state declarations and *update* phase)
that reproduces the corresponding Python semantics in
:mod:`repro.actors` bit for bit:

* integer work goes through the ``acc_*`` checked helpers of the runtime
  prelude (wrap + flag, same as ``checked_*``);
* ``f64`` arithmetic is plain double expressions in the same operation
  order as the Python reference;
* ``f32`` arithmetic is computed in double and narrowed per operation —
  exactly what the Python reference does (every f32 intermediate passes
  through ``coerce_float``), and immune to double-rounding divergence;
* transcendentals call libm (the same libm CPython uses) with the Python
  helpers' domain guards inlined.

Branch actors (Switch, MultiportSwitch) also emit their own condition
coverage inside each branch, mirroring Algorithm 1's ``instConditionCov``;
all other instrumentation is composed around the actor block by
:mod:`repro.codegen.compose`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.actors.math_ops import int_param
from repro.dtypes import DType, coerce_float
from repro.instrument.plan import ActorInstrumentation, InstrumentationPlan
from repro.model.errors import CodegenError
from repro.codegen.cexpr import emit_cast, state_var, svar, value_literal
from repro.schedule.program import FlatActor, FlatProgram
from repro.stimuli.base import c_double_literal


@dataclass
class EmitContext:
    """Shared state the emitters need."""

    prog: FlatProgram
    plan: InstrumentationPlan
    decls: list[str] = field(default_factory=list)  # global declarations

    def in_dtype(self, fa: FlatActor, i: int) -> DType:
        return self.prog.signals[fa.input_sids[i]].dtype

    def out_dtype(self, fa: FlatActor, i: int = 0) -> DType:
        return self.prog.signals[fa.output_sids[i]].dtype

    def in_var(self, fa: FlatActor, i: int) -> str:
        return svar(fa.input_sids[i])

    def out_var(self, fa: FlatActor, i: int = 0) -> str:
        return svar(fa.output_sids[i])

    def declare(self, text: str) -> None:
        self.decls.append(text)

    def inst(self, fa: FlatActor) -> ActorInstrumentation:
        return self.plan.actors[fa.index]


# Every state declaration an emitter can produce matches one of these
# shapes; ``state_reset_statements`` depends on that closed set to derive
# the per-case reset of the reusable (batched) program.
_DECL_ARRAY_RE = re.compile(
    r"^static\s+(?P<type>\w+)\s+(?P<name>\w+)\[(?P<len>\d+)\]\s*=\s*"
    r"(?P<init>\{.*\})\s*;$"
)
_DECL_SCALAR_INIT_RE = re.compile(
    r"^static\s+(?P<type>\w+)\s+(?P<name>\w+)\s*=\s*(?P<init>[^;]+);$"
)
_DECL_PLAIN_RE = re.compile(
    r"^static\s+(?P<type>\w+)\s+(?P<names>\w+(?:\s*,\s*\w+)*)\s*;$"
)


def state_reset_statements(decls: list[str]) -> tuple[list[str], list[str]]:
    """Derive per-case reinitialization for actor-state declarations.

    Returns ``(shadow_decls, reset_stmts)``: extra globals (a ``const``
    copy of every initialized state array, so a ``memcpy`` restores it)
    and the statements putting each mutable state back to its declared
    initial value.  ``static const`` tables are immutable and skipped.
    """
    shadows: list[str] = []
    resets: list[str] = []
    for decl in decls:
        if decl.startswith("static const "):
            continue
        m = _DECL_ARRAY_RE.match(decl)
        if m:
            shadows.append(
                f"static const {m['type']} {m['name']}_init"
                f"[{m['len']}] = {m['init']};"
            )
            resets.append(
                f"memcpy({m['name']}, {m['name']}_init, sizeof({m['name']}));"
            )
            continue
        m = _DECL_SCALAR_INIT_RE.match(decl)
        if m:
            resets.append(f"{m['name']} = {m['init'].strip()};")
            continue
        m = _DECL_PLAIN_RE.match(decl)
        if m:
            for name in m["names"].split(","):
                resets.append(f"{name.strip()} = 0;")
            continue
        raise CodegenError(
            f"cannot derive a per-case reset for state declaration {decl!r}"
        )
    return shadows, resets


# ----------------------------------------------------------------------
# shared expression builders
# ----------------------------------------------------------------------
def _cast_in(ctx: EmitContext, fa: FlatActor, i: int, target: DType) -> str:
    """Checked cast of input i into the compute dtype."""
    return emit_cast(ctx.in_var(fa, i), ctx.in_dtype(fa, i), target)


def _fop(a: str, op: str, b: str, dtype: DType) -> str:
    """One float operation in the reference's rounding discipline."""
    if dtype is DType.F32:
        return f"(float)((double){a} {op} (double){b})"
    return f"({a} {op} {b})"


def _fin(ctx: EmitContext, fa: FlatActor, i: int, dtype: DType) -> str:
    """coerce_float(float(input_i), dtype) as a C expression."""
    src = ctx.in_dtype(fa, i)
    if src is dtype:
        return ctx.in_var(fa, i)
    return f"({dtype.c_name}){ctx.in_var(fa, i)}"


def _to_double(ctx: EmitContext, fa: FlatActor, i: int) -> str:
    if ctx.in_dtype(fa, i) is DType.F64:
        return ctx.in_var(fa, i)
    return f"(double){ctx.in_var(fa, i)}"


def _nf_check(out: str) -> str:
    return f"if (!isfinite((double){out})) f_nf = 1;"


def _narrow(expr: str, dtype: DType) -> str:
    """Narrow a double expression into the output float type."""
    if dtype is DType.F32:
        return f"(float)({expr})"
    return f"({expr})"


def _compare_const(var: str, var_dtype: DType, op: str, const) -> str:
    """Exact comparison of a signal against a Python-number constant."""
    if var_dtype.is_float or isinstance(const, float):
        return f"((double){var} {op} {c_double_literal(float(const))})"
    return f"((__int128){var} {op} (__int128)({int(const)}LL))"


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
def emit_inport(ctx, fa):
    return ""  # test-case import assigned the signal at the top of the step


def emit_constant(ctx, fa):
    dtype = ctx.out_dtype(fa)
    raw = fa.actor.params["value"]
    if dtype.is_float:
        value = coerce_float(float(raw), dtype)
    else:
        value = int_param(raw, dtype)
    return f"{ctx.out_var(fa)} = {value_literal(value, dtype)};"


def emit_ground(ctx, fa):
    dtype = ctx.out_dtype(fa)
    return f"{ctx.out_var(fa)} = {value_literal(0, dtype)};"


def _counter_state(ctx, fa) -> str:
    st = state_var(fa.index, "_n")
    ctx.declare(f"static int64_t {st} = 0;")
    return st


def emit_clock(ctx, fa):
    st = _counter_state(ctx, fa)
    dtype = ctx.out_dtype(fa)
    dt_lit = c_double_literal(ctx.prog.dt)
    return f"{ctx.out_var(fa)} = {_narrow(f'(double){st} * {dt_lit}', dtype)};"


def emit_counter(ctx, fa):
    st = state_var(fa.index, "_n")
    ctx.declare(f"static int64_t {st} = 0;")
    dtype = ctx.out_dtype(fa)
    return f"{ctx.out_var(fa)} = ({dtype.c_name}){st};"


def emit_sinewave(ctx, fa):
    st = _counter_state(ctx, fa)
    dtype = ctx.out_dtype(fa)
    p = fa.actor.params
    import math

    w = 2.0 * math.pi * float(p["frequency"]) * ctx.prog.dt
    amp = c_double_literal(float(p.get("amplitude", 1.0)))
    ph = c_double_literal(float(p.get("phase", 0.0)))
    bias = c_double_literal(float(p.get("bias", 0.0)))
    expr = f"{amp} * sin({c_double_literal(w)} * (double){st} + {ph}) + {bias}"
    return f"{ctx.out_var(fa)} = {_narrow(expr, dtype)};"


def emit_rampsource(ctx, fa):
    st = _counter_state(ctx, fa)
    dtype = ctx.out_dtype(fa)
    k = c_double_literal(float(fa.actor.params["slope"]) * ctx.prog.dt)
    start = c_double_literal(float(fa.actor.params.get("start", 0.0)))
    return f"{ctx.out_var(fa)} = {_narrow(f'{start} + {k} * (double){st}', dtype)};"


def emit_stepsource(ctx, fa):
    st = _counter_state(ctx, fa)
    dtype = ctx.out_dtype(fa)
    before = fa.actor.params.get("before", 0.0)
    after = fa.actor.params.get("after", 1.0)
    if dtype.is_float:
        b = value_literal(coerce_float(float(before), dtype), dtype)
        a = value_literal(coerce_float(float(after), dtype), dtype)
    else:
        b = value_literal(int_param(before, dtype), dtype)
        a = value_literal(int_param(after, dtype), dtype)
    return f"{ctx.out_var(fa)} = ({st} < {fa.actor.params['at']}) ? {b} : {a};"


def emit_pulsegenerator(ctx, fa):
    st = _counter_state(ctx, fa)
    dtype = ctx.out_dtype(fa)
    amplitude = fa.actor.params.get("amplitude", 1.0)
    if dtype.is_float:
        high = value_literal(coerce_float(float(amplitude), dtype), dtype)
        low = value_literal(0.0, dtype)
    else:
        high = value_literal(int_param(amplitude, dtype), dtype)
        low = value_literal(0, dtype)
    period, duty = fa.actor.params["period"], fa.actor.params["duty"]
    return (
        f"{ctx.out_var(fa)} = (({st} % {period}) < {duty}) ? {high} : {low};"
    )


def emit_randomsource(ctx, fa):
    from repro.actors.sources import lcg_next

    st = state_var(fa.index, "_s")
    seed = fa.actor.params.get("seed", 1) & 0xFFFFFFFFFFFFFFFF
    ctx.declare(f"static uint64_t {st} = {lcg_next(seed)}ULL;")
    dtype = ctx.out_dtype(fa)
    p = fa.actor.params
    if p.get("dist", "uniform") == "uniform":
        lo = c_double_literal(float(p.get("lo", 0)))
        hi = c_double_literal(float(p.get("hi", 1)))
        scale = c_double_literal(1.0 / 9007199254740992.0)
        expr = f"{lo} + ((double)({st} >> 11) * {scale}) * ({hi} - {lo})"
        return f"{ctx.out_var(fa)} = {_narrow(expr, dtype)};"
    lo, hi = int(p.get("lo", 0)), int(p.get("hi", 1))
    span = hi - lo + 1
    return (
        f"{ctx.out_var(fa)} = ({dtype.c_name})"
        f"({lo}LL + (int64_t)(({st} >> 33) % {span}ULL));"
    )


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def emit_sum(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    signs = fa.actor.operator
    lines = []
    if dtype.is_float:
        first = _fin(ctx, fa, 0, dtype)
        if signs[0] == "+":
            lines.append(f"{t} _acc = {first};")
        else:
            lines.append(f"{t} _acc = -({first});")
        for i in range(1, fa.actor.n_inputs):
            lines.append(
                f"_acc = {_fop('_acc', signs[i], _fin(ctx, fa, i, dtype), dtype)};"
            )
        lines.append(f"{ctx.out_var(fa)} = _acc;")
        lines.append(_nf_check(ctx.out_var(fa)))
    else:
        s = dtype.short_name
        first = _cast_in(ctx, fa, 0, dtype)
        if signs[0] == "+":
            lines.append(f"{t} _acc = {first};")
        else:
            lines.append(f"{t} _acc = acc_sub_{s}(({t})0, {first});")
        for i in range(1, fa.actor.n_inputs):
            op = "add" if signs[i] == "+" else "sub"
            lines.append(f"_acc = acc_{op}_{s}(_acc, {_cast_in(ctx, fa, i, dtype)});")
        lines.append(f"{ctx.out_var(fa)} = _acc;")
    return "{ " + " ".join(lines) + " }"


def emit_product(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    ops = fa.actor.operator
    lines = []
    if dtype.is_float:
        one = "1.0f" if dtype is DType.F32 else "1.0"
        first = _fin(ctx, fa, 0, dtype)
        if ops[0] == "*":
            lines.append(f"{t} _acc = {_fop(one, '*', first, dtype)};")
        else:
            lines.append(f"{t} _acc = {_fdiv(one, first, dtype)};")
        for i in range(1, fa.actor.n_inputs):
            operand = _fin(ctx, fa, i, dtype)
            if ops[i] == "*":
                lines.append(f"_acc = {_fop('_acc', '*', operand, dtype)};")
            else:
                lines.append(f"_acc = {_fdiv('_acc', operand, dtype)};")
        lines.append(f"{ctx.out_var(fa)} = _acc;")
        lines.append(_nf_check(ctx.out_var(fa)))
    else:
        s = dtype.short_name
        first = _cast_in(ctx, fa, 0, dtype)
        if ops[0] == "*":
            lines.append(f"{t} _acc = {first};")
        else:
            lines.append(f"{t} _acc = acc_div_{s}(({t})1, {first});")
        for i in range(1, fa.actor.n_inputs):
            fn = "mul" if ops[i] == "*" else "div"
            lines.append(f"_acc = acc_{fn}_{s}(_acc, {_cast_in(ctx, fa, i, dtype)});")
        lines.append(f"{ctx.out_var(fa)} = _acc;")
    return "{ " + " ".join(lines) + " }"


def _fdiv(a: str, b: str, dtype: DType) -> str:
    """Float division through the guarded helper (mirrors checked_div)."""
    if dtype is DType.F32:
        return f"(float)acc_div_f64((double){a}, (double){b})"
    return f"acc_div_f64({a}, {b})"


def emit_gain(ctx, fa):
    dtype = ctx.out_dtype(fa)
    gain = fa.actor.params["gain"]
    out = ctx.out_var(fa)
    if dtype.is_float:
        k = value_literal(coerce_float(float(gain), dtype), dtype)
        return f"{out} = {_fop(_fin(ctx, fa, 0, dtype), '*', k, dtype)};\n{_nf_check(out)}"
    if isinstance(gain, float):
        expr = f"{_to_double(ctx, fa, 0)} * {c_double_literal(gain)}"
        return f"{out} = acc_cast_f64_{dtype.short_name}({expr});"
    k = value_literal(int_param(gain, dtype), dtype)
    return (
        f"{out} = acc_mul_{dtype.short_name}({_cast_in(ctx, fa, 0, dtype)}, {k});"
    )


def emit_bias(ctx, fa):
    dtype = ctx.out_dtype(fa)
    bias = fa.actor.params["bias"]
    out = ctx.out_var(fa)
    if dtype.is_float:
        b = value_literal(coerce_float(float(bias), dtype), dtype)
        return f"{out} = {_fop(_fin(ctx, fa, 0, dtype), '+', b, dtype)};\n{_nf_check(out)}"
    if isinstance(bias, float):
        expr = f"{_to_double(ctx, fa, 0)} + {c_double_literal(bias)}"
        return f"{out} = acc_cast_f64_{dtype.short_name}({expr});"
    b = value_literal(int_param(bias, dtype), dtype)
    return (
        f"{out} = acc_add_{dtype.short_name}({_cast_in(ctx, fa, 0, dtype)}, {b});"
    )


def emit_abs(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    if dtype.is_float:
        expr = f"fabs({_to_double(ctx, fa, 0)})"
        return f"{out} = {_narrow(expr, dtype)};\n{_nf_check(out)}"
    t, s = dtype.c_name, dtype.short_name
    return (
        f"{{ {t} _x = {_cast_in(ctx, fa, 0, dtype)}; "
        f"{out} = (_x < 0) ? acc_neg_{s}(_x) : _x; }}"
    )


def emit_unaryminus(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    if dtype.is_float:
        # Direct negation (sign-bit flip), matching the Python reference.
        return (
            f"{out} = -({_fin(ctx, fa, 0, dtype)});\n"
            f"{_nf_check(out)}"
        )
    return f"{out} = acc_neg_{dtype.short_name}({_cast_in(ctx, fa, 0, dtype)});"


def emit_signum(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    x = ctx.in_var(fa, 0)
    sign = f"(({x} > 0) - ({x} < 0))"
    if dtype.is_float:
        return f"{out} = {_narrow(f'(double){sign}', dtype)};"
    return f"{out} = ({dtype.c_name}){sign};"


def emit_sqrt(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    return (
        f"{{ double _v = {_to_double(ctx, fa, 0)}; "
        f"{out} = {_narrow('_v >= 0.0 ? sqrt(_v) : (0.0/0.0)', dtype)}; }}\n"
        f"{_nf_check(out)}"
    )


_MATH_EXPRS: dict[str, str] = {
    "exp": "exp(_v)",
    "log": "(_v > 0.0 ? log(_v) : (_v == 0.0 ? -(1.0/0.0) : (0.0/0.0)))",
    "log10": "(_v > 0.0 ? log10(_v) : (_v == 0.0 ? -(1.0/0.0) : (0.0/0.0)))",
    "sin": "sin(_v)",
    "cos": "cos(_v)",
    "tan": "tan(_v)",
    "asin": "((_v >= -1.0 && _v <= 1.0) ? asin(_v) : (0.0/0.0))",
    "acos": "((_v >= -1.0 && _v <= 1.0) ? acos(_v) : (0.0/0.0))",
    "atan": "atan(_v)",
    "sinh": "sinh(_v)",
    "cosh": "cosh(_v)",
    "tanh": "tanh(_v)",
    "square": "(_v * _v)",
    "reciprocal": "(_v == 0.0 ? (1.0/0.0) : (1.0/_v))",
    "pow10": "pow(10.0, _v)",
}


def emit_math(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    op = fa.actor.operator
    lines = [f"double _v = {_to_double(ctx, fa, 0)};"]
    if op == "reciprocal":
        lines.append("if (_v == 0.0) f_dz = 1;")
    lines.append(f"{out} = {_narrow(_MATH_EXPRS[op], dtype)};")
    return "{ " + " ".join(lines) + " }\n" + _nf_check(out)


def emit_minmax(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    cmp = "<" if fa.actor.operator == "min" else ">"
    if dtype.is_float:
        first = _fin(ctx, fa, 0, dtype)
        operands = [_fin(ctx, fa, i, dtype) for i in range(1, fa.actor.n_inputs)]
    else:
        first = _cast_in(ctx, fa, 0, dtype)
        operands = [
            _cast_in(ctx, fa, i, dtype) for i in range(1, fa.actor.n_inputs)
        ]
    lines = [f"{t} _m = {first};"]
    for operand in operands:
        lines.append(f"{{ {t} _c = {operand}; if (_c {cmp} _m) _m = _c; }}")
    lines.append(f"{ctx.out_var(fa)} = _m;")
    return "{ " + " ".join(lines) + " }"


def emit_mod(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    if dtype.is_float:
        a, b = _to_double(ctx, fa, 0), _to_double(ctx, fa, 1)
        return (
            f"{{ double _b = {b}; "
            f"if (_b == 0.0) {{ f_dz = 1; {out} = {_narrow('0.0/0.0', dtype)}; }} "
            f"else {{ {out} = {_narrow(f'fmod({a}, _b)', dtype)}; "
            f"{_nf_check(out)} }} }}"
        )
    return (
        f"{out} = acc_mod_{dtype.short_name}("
        f"{_cast_in(ctx, fa, 0, dtype)}, {_cast_in(ctx, fa, 1, dtype)});"
    )


_ROUNDING_EXPRS = {
    "floor": "floor(_v)",
    "ceil": "ceil(_v)",
    "round": "acc_round(_v)",
    "fix": "trunc(_v)",
}


def emit_rounding(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    return (
        f"{{ double _v = {_to_double(ctx, fa, 0)}; "
        f"{out} = {_narrow(_ROUNDING_EXPRS[fa.actor.operator], dtype)}; }}\n"
        f"{_nf_check(out)}"
    )


def emit_saturation(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    out = ctx.out_var(fa)
    lower, upper = fa.actor.params["lower"], fa.actor.params["upper"]
    if dtype.is_float:
        lo = value_literal(coerce_float(float(lower), dtype), dtype)
        hi = value_literal(coerce_float(float(upper), dtype), dtype)
        x = _fin(ctx, fa, 0, dtype)
    else:
        lo = value_literal(int_param(lower, dtype), dtype)
        hi = value_literal(int_param(upper, dtype), dtype)
        x = _cast_in(ctx, fa, 0, dtype)
    return (
        f"{{ {t} _x = {x}; "
        f"{out} = (_x < {lo}) ? {lo} : ((_x > {hi}) ? {hi} : _x); }}"
    )


def emit_deadzone(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    out = ctx.out_var(fa)
    start = value_literal(coerce_float(float(fa.actor.params["start"]), dtype), dtype)
    end = value_literal(coerce_float(float(fa.actor.params["end"]), dtype), dtype)
    zero = "0.0f" if dtype is DType.F32 else "0.0"
    return (
        f"{{ {t} _x = {_fin(ctx, fa, 0, dtype)}; "
        f"if (_x < {start}) {out} = {_fop('_x', '-', start, dtype)}; "
        f"else if (_x > {end}) {out} = {_fop('_x', '-', end, dtype)}; "
        f"else {out} = {zero}; }}\n"
        f"{_nf_check(out)}"
    )


def emit_quantizer(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    q = c_double_literal(float(fa.actor.params["interval"]))
    expr = f"{q} * acc_round({_to_double(ctx, fa, 0)} / {q})"
    return f"{out} = {_narrow(expr, dtype)};\n{_nf_check(out)}"


def emit_polynomial(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    lines = [f"double _x = {_to_double(ctx, fa, 0)};", "double _a = 0.0;"]
    for c in fa.actor.params["coeffs"]:
        lines.append(f"_a = _a * _x + {c_double_literal(float(c))};")
    lines.append(f"{out} = {_narrow('_a', dtype)};")
    return "{ " + " ".join(lines) + " }\n" + _nf_check(out)


def emit_power(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    a, b = _to_double(ctx, fa, 0), _to_double(ctx, fa, 1)
    return (
        f"{{ double _a = {a}; double _b = {b}; "
        f"{out} = {_narrow('(_a == 0.0 && _b < 0.0) ? (1.0/0.0) : pow(_a, _b)', dtype)}; }}\n"
        f"{_nf_check(out)}"
    )


def emit_bitwise(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    out = ctx.out_var(fa)
    op = fa.actor.operator
    if op == "NOT":
        return f"{out} = ({t})~{_cast_in(ctx, fa, 0, dtype)};"
    c_op = {"AND": "&", "OR": "|", "XOR": "^"}[op]
    lines = [f"{t} _a = {_cast_in(ctx, fa, 0, dtype)};"]
    for i in range(1, fa.actor.n_inputs):
        lines.append(f"_a = ({t})(_a {c_op} {_cast_in(ctx, fa, i, dtype)});")
    lines.append(f"{out} = _a;")
    return "{ " + " ".join(lines) + " }"


def emit_shift(ctx, fa):
    dtype = ctx.out_dtype(fa)
    t, out = dtype.c_name, ctx.out_var(fa)
    amount = fa.actor.params["amount"]
    x = _cast_in(ctx, fa, 0, dtype)
    if fa.actor.operator == ">>":
        return f"{out} = ({t})(({x}) >> {amount});"
    # Left shift = exact multiply by 2**amount, wrapped, like checked_mul.
    return (
        f"{{ __int128 _e = (__int128)({x}) << {amount}; "
        f"{out} = ({t})_e; if ((__int128){out} != _e) f_ov = 1; }}"
    )


def emit_datatypeconversion(ctx, fa):
    dtype = ctx.out_dtype(fa)
    return f"{ctx.out_var(fa)} = {_cast_in(ctx, fa, 0, dtype)};"


# ----------------------------------------------------------------------
# logic / relational
# ----------------------------------------------------------------------
def _compare_signals(ctx, fa, op: str) -> str:
    a_dt, b_dt = ctx.in_dtype(fa, 0), ctx.in_dtype(fa, 1)
    a, b = ctx.in_var(fa, 0), ctx.in_var(fa, 1)
    if a_dt.is_float or b_dt.is_float:
        return f"((double){a} {op} (double){b})"
    return f"((__int128){a} {op} (__int128){b})"


def emit_relationaloperator(ctx, fa):
    return f"{ctx.out_var(fa)} = (uint8_t){_compare_signals(ctx, fa, fa.actor.operator)};"


def emit_logic(ctx, fa):
    out = ctx.out_var(fa)
    n = fa.actor.n_inputs
    truths = [f"({ctx.in_var(fa, i)} != 0)" for i in range(n)]
    op = fa.actor.operator
    if op == "NOT":
        expr = f"!{truths[0]}"
    elif op == "AND":
        expr = " && ".join(truths)
    elif op == "OR":
        expr = " || ".join(truths)
    elif op == "NAND":
        expr = f"!({' && '.join(truths)})"
    elif op == "NOR":
        expr = f"!({' || '.join(truths)})"
    else:  # XOR: odd number of true inputs
        expr = f"((({' + '.join(truths)}) % 2) == 1)"
    return f"{out} = (uint8_t)({expr});"


def emit_comparetoconstant(ctx, fa):
    cond = _compare_const(
        ctx.in_var(fa, 0), ctx.in_dtype(fa, 0),
        fa.actor.operator, fa.actor.params["constant"],
    )
    return f"{ctx.out_var(fa)} = (uint8_t){cond};"


def emit_comparetozero(ctx, fa):
    cond = _compare_const(ctx.in_var(fa, 0), ctx.in_dtype(fa, 0), fa.actor.operator, 0)
    return f"{ctx.out_var(fa)} = (uint8_t){cond};"


# ----------------------------------------------------------------------
# control
# ----------------------------------------------------------------------
def _cond_hit(ctx, fa, branch: int) -> str:
    inst = ctx.inst(fa)
    if inst.condition_base is None:
        return ""
    return f"cov_cond[{inst.condition_base[0] + branch}] = 1; "


def emit_switch(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    threshold = fa.actor.params.get("threshold", 0)
    cond = _compare_const(ctx.in_var(fa, 1), ctx.in_dtype(fa, 1), ">=", threshold)

    def branch_value(i: int) -> str:
        if dtype.is_float:
            return _fin(ctx, fa, i, dtype)
        return _cast_in(ctx, fa, i, dtype)

    return (
        f"if {cond} {{ {_cond_hit(ctx, fa, 0)}{out} = {branch_value(0)}; }} "
        f"else {{ {_cond_hit(ctx, fa, 1)}{out} = {branch_value(2)}; }}"
    )


def emit_multiportswitch(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    n = fa.actor.n_inputs - 1
    ctrl = ctx.in_var(fa, 0)
    ctrl_dt = ctx.in_dtype(fa, 0)
    ctrl_expr = f"(int64_t){ctrl}" if not ctrl_dt.is_float else f"(int64_t)(double){ctrl}"
    cases = []
    for i in range(n):
        if dtype.is_float:
            value = _fin(ctx, fa, 1 + i, dtype)
        else:
            value = _cast_in(ctx, fa, 1 + i, dtype)
        cases.append(
            f"case {i}: {_cond_hit(ctx, fa, i)}{out} = {value}; break;"
        )
    return (
        f"{{ int64_t _i = {ctrl_expr}; "
        f"if (_i < 0) {{ _i = 0; f_ob = 1; }} "
        f"else if (_i >= {n}) {{ _i = {n - 1}; f_ob = 1; }} "
        f"switch (_i) {{ {' '.join(cases)} }} }}"
    )


def emit_relay(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    initial = 1 if fa.actor.params.get("initial_on", False) else 0
    ctx.declare(f"static int {st} = {initial};")
    p = fa.actor.params
    if dtype.is_float:
        on_value = value_literal(coerce_float(float(p["on_value"]), dtype), dtype)
        off_value = value_literal(coerce_float(float(p["off_value"]), dtype), dtype)
    else:
        on_value = value_literal(int_param(p["on_value"], dtype), dtype)
        off_value = value_literal(int_param(p["off_value"], dtype), dtype)
    u = ctx.in_var(fa, 0)
    u_dt = ctx.in_dtype(fa, 0)
    rises = _compare_const(u, u_dt, ">=", p["on_threshold"])
    falls = _compare_const(u, u_dt, "<=", p["off_threshold"])
    out = ctx.out_var(fa)
    return (
        f"{{ int _ns; if {rises} _ns = 1; else if {falls} _ns = 0; "
        f"else _ns = {st}; "
        f"if (_ns) {{ {_cond_hit(ctx, fa, 0)}{out} = {on_value}; }} "
        f"else {{ {_cond_hit(ctx, fa, 1)}{out} = {off_value}; }} }}"
    )


def update_relay(ctx, fa):
    st = state_var(fa.index)
    u = ctx.in_var(fa, 0)
    u_dt = ctx.in_dtype(fa, 0)
    p = fa.actor.params
    rises = _compare_const(u, u_dt, ">=", p["on_threshold"])
    falls = _compare_const(u, u_dt, "<=", p["off_threshold"])
    return f"if {rises} {st} = 1; else if {falls} {st} = 0;"


def emit_merge(ctx, fa):
    dtype = ctx.out_dtype(fa)
    out = ctx.out_var(fa)
    lines = []
    for i, gid in enumerate(fa.merge_src_guards or ()):
        if dtype.is_float:
            value = _fin(ctx, fa, i, dtype)
        else:
            value = _cast_in(ctx, fa, i, dtype)
        if gid is None:
            lines.append(f"{out} = {value};")
        else:
            lines.append(f"if (g{gid}) {out} = {value};")
    return " ".join(lines)


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------
def _initial_literal(fa: FlatActor, dtype: DType, key: str = "initial", default=0) -> str:
    raw = fa.actor.params.get(key, default)
    if dtype.is_float:
        return value_literal(coerce_float(float(raw), dtype), dtype)
    return value_literal(int_param(raw, dtype), dtype)


def emit_unitdelay(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(f"static {dtype.c_name} {st} = {_initial_literal(fa, dtype)};")
    return f"{ctx.out_var(fa)} = {st};"


def update_unitdelay(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    src = ctx.in_dtype(fa, 0)
    if dtype.is_float:
        return f"{st} = {_fin(ctx, fa, 0, dtype)};"
    return f"{st} = {emit_cast(ctx.in_var(fa, 0), src, dtype)};"


def emit_delay(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    length = fa.actor.params["length"]
    init = _initial_literal(fa, dtype)
    initializer = ", ".join([init] * length)
    ctx.declare(f"static {dtype.c_name} {st}_buf[{length}] = {{{initializer}}};")
    ctx.declare(f"static int {st}_i = 0;")
    return f"{ctx.out_var(fa)} = {st}_buf[{st}_i];"


def update_delay(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    length = fa.actor.params["length"]
    src = ctx.in_dtype(fa, 0)
    if dtype.is_float:
        stored = _fin(ctx, fa, 0, dtype)
    else:
        stored = emit_cast(ctx.in_var(fa, 0), src, dtype)
    return (
        f"{st}_buf[{st}_i] = {stored}; "
        f"{st}_i = ({st}_i + 1 == {length}) ? 0 : {st}_i + 1;"
    )


def emit_accumulator(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(f"static {dtype.c_name} {st} = {_initial_literal(fa, dtype)};")
    out = ctx.out_var(fa)
    if dtype.is_float:
        return (
            f"{out} = {_fop(st, '+', _fin(ctx, fa, 0, dtype), dtype)};"
        )
    return f"{out} = acc_add_{dtype.short_name}({st}, {_cast_in(ctx, fa, 0, dtype)});"


def update_accumulator(ctx, fa):
    return f"{state_var(fa.index)} = {ctx.out_var(fa)};"


def emit_discreteintegrator(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(
        f"static {dtype.c_name} {st} = {_initial_literal(fa, dtype, default=0.0)};"
    )
    return f"{ctx.out_var(fa)} = {st};"


def update_discreteintegrator(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    gain = float(fa.actor.params.get("gain", 1.0))
    k = value_literal(coerce_float(gain * ctx.prog.dt, dtype), dtype)
    u = _fin(ctx, fa, 0, dtype)
    ku = _fop(k, "*", u, dtype)
    return f"{st} = {_fop(st, '+', ku, dtype)};"


def emit_discretefilter(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(
        f"static {dtype.c_name} {st} = {_initial_literal(fa, dtype, default=0.0)};"
    )
    b0 = value_literal(coerce_float(float(fa.actor.params["b0"]), dtype), dtype)
    a1 = value_literal(coerce_float(float(fa.actor.params["a1"]), dtype), dtype)
    u = _fin(ctx, fa, 0, dtype)
    t1 = _fop(b0, "*", u, dtype)
    t2 = _fop(a1, "*", st, dtype)
    t = dtype.c_name
    return (
        f"{{ {t} _t1 = {t1}; {t} _t2 = {t2}; "
        f"{ctx.out_var(fa)} = {_fop('_t1', '+', '_t2', dtype)}; }}"
    )


def update_discretefilter(ctx, fa):
    return f"{state_var(fa.index)} = {ctx.out_var(fa)};"


def emit_discretederivative(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(
        f"static {dtype.c_name} {st} = {_initial_literal(fa, dtype, default=0.0)};"
    )
    inv_dt = value_literal(coerce_float(1.0 / ctx.prog.dt, dtype), dtype)
    u = _fin(ctx, fa, 0, dtype)
    diff = _fop(u, "-", st, dtype)
    t = dtype.c_name
    return (
        f"{{ {t} _d = {diff}; "
        f"{ctx.out_var(fa)} = {_fop('_d', '*', inv_dt, dtype)}; }}"
    )


def update_discretederivative(ctx, fa):
    dtype = ctx.out_dtype(fa)
    return f"{state_var(fa.index)} = {_fin(ctx, fa, 0, dtype)};"


def emit_ratelimiter(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(
        f"static {dtype.c_name} {st} = {_initial_literal(fa, dtype, default=0.0)};"
    )
    rising = value_literal(coerce_float(float(fa.actor.params["rising"]), dtype), dtype)
    falling = value_literal(
        coerce_float(float(fa.actor.params["falling"]), dtype), dtype
    )
    u = _fin(ctx, fa, 0, dtype)
    up = _fop(st, "+", rising, dtype)
    lo = _fop(st, "-", falling, dtype)
    t = dtype.c_name
    return (
        f"{{ {t} _u = {u}; {t} _up = {up}; {t} _lo = {lo}; "
        f"{ctx.out_var(fa)} = (_u < _lo) ? _lo : ((_u > _up) ? _up : _u); }}"
    )


def update_ratelimiter(ctx, fa):
    return f"{state_var(fa.index)} = {ctx.out_var(fa)};"


def emit_continuousintegrator(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    ctx.declare(
        f"static {dtype.c_name} {st}_y = "
        f"{_initial_literal(fa, dtype, default=0.0)};"
    )
    ctx.declare(f"static {dtype.c_name} {st}_f1, {st}_f2;")
    ctx.declare(f"static int64_t {st}_n;")
    return f"{ctx.out_var(fa)} = {st}_y;"


def update_continuousintegrator(ctx, fa):
    from repro.actors.continuous import AB2_C0, AB2_C1, AB3_C0, AB3_C1, AB3_C2

    dtype = ctx.out_dtype(fa)
    t = dtype.c_name
    st = state_var(fa.index)
    solver = fa.actor.params.get("solver", "ab2")
    dt_lit = value_literal(coerce_float(ctx.prog.dt, dtype), dtype)

    def lit(value: float) -> str:
        return value_literal(coerce_float(value, dtype), dtype)

    def ab2_slope() -> str:
        t1 = _fop(lit(AB2_C0), "*", "_u", dtype)
        t2 = _fop(lit(AB2_C1), "*", f"{st}_f1", dtype)
        return _fop(t1, "-", t2, dtype)

    def ab3_slope() -> str:
        t1 = _fop(lit(AB3_C0), "*", "_u", dtype)
        t2 = _fop(lit(AB3_C1), "*", f"{st}_f1", dtype)
        t3 = _fop(lit(AB3_C2), "*", f"{st}_f2", dtype)
        return _fop(_fop(t1, "-", t2, dtype), "+", t3, dtype)

    if solver == "euler":
        slope = "_slope = _u;"
    elif solver == "ab2":
        slope = (
            f"if ({st}_n == 0) _slope = _u; "
            f"else _slope = {ab2_slope()};"
        )
    else:
        slope = (
            f"if ({st}_n == 0) _slope = _u; "
            f"else if ({st}_n == 1) _slope = {ab2_slope()}; "
            f"else _slope = {ab3_slope()};"
        )
    step = _fop(dt_lit, "*", "_slope", dtype)
    return (
        f"{{ {t} _u = {_fin(ctx, fa, 0, dtype)}; {t} _slope; {slope} "
        f"{st}_y = {_fop(f'{st}_y', '+', step, dtype)}; "
        f"{st}_f2 = {st}_f1; {st}_f1 = _u; {st}_n += 1; }}"
    )


def emit_zeroorderhold(ctx, fa):
    dtype = ctx.out_dtype(fa)
    if dtype.is_float:
        return f"{ctx.out_var(fa)} = {_fin(ctx, fa, 0, dtype)};"
    return f"{ctx.out_var(fa)} = {_cast_in(ctx, fa, 0, dtype)};"


def update_counter(ctx, fa):
    st = state_var(fa.index, "_n")
    limit = fa.actor.params["limit"]
    return f"{st} = ({st} + 1 == {limit}) ? 0 : {st} + 1;"


def update_counterbased(ctx, fa):
    return f"{state_var(fa.index, '_n')} += 1;"


def update_randomsource(ctx, fa):
    from repro.actors.sources import LCG_INC, LCG_MUL

    st = state_var(fa.index, "_s")
    return f"{st} = {st} * {LCG_MUL}ULL + {LCG_INC}ULL;"


# ----------------------------------------------------------------------
# stores / lookup / sinks
# ----------------------------------------------------------------------
def emit_datastoreread(ctx, fa):
    return f"{ctx.out_var(fa)} = store_{fa.actor.params['store']};"


def emit_datastorewrite(ctx, fa):
    store = fa.actor.params["store"]
    info = ctx.prog.stores[store]
    src = ctx.in_dtype(fa, 0)
    if info.dtype.is_float:
        if src is info.dtype:
            value = ctx.in_var(fa, 0)
        else:
            value = f"({info.dtype.c_name}){ctx.in_var(fa, 0)}"
    else:
        value = emit_cast(ctx.in_var(fa, 0), src, info.dtype)
    return f"store_{store} = {value};"


def emit_lookup1d(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    bp = [float(b) for b in fa.actor.params["breakpoints"]]
    tb = [float(t) for t in fa.actor.params["table"]]
    n = len(bp)
    ctx.declare(
        f"static const double {st}_bp[{n}] = "
        f"{{{', '.join(c_double_literal(b) for b in bp)}}};"
    )
    ctx.declare(
        f"static const double {st}_tb[{n}] = "
        f"{{{', '.join(c_double_literal(t) for t in tb)}}};"
    )
    out = ctx.out_var(fa)
    return (
        f"{{ double _x = {_to_double(ctx, fa, 0)}; double _y; "
        f"if (_x <= {st}_bp[0]) _y = {st}_tb[0]; "
        f"else if (_x >= {st}_bp[{n - 1}]) _y = {st}_tb[{n - 1}]; "
        f"else {{ int _i = 0; while (_x > {st}_bp[_i + 1]) _i++; "
        f"double _f = (_x - {st}_bp[_i]) / ({st}_bp[_i + 1] - {st}_bp[_i]); "
        f"_y = {st}_tb[_i] + ({st}_tb[_i + 1] - {st}_tb[_i]) * _f; }} "
        f"{out} = {_narrow('_y', dtype)}; }}"
    )


def emit_directlookup(ctx, fa):
    dtype = ctx.out_dtype(fa)
    st = state_var(fa.index)
    raw = fa.actor.params["table"]
    if dtype.is_float:
        values = [value_literal(coerce_float(float(v), dtype), dtype) for v in raw]
    else:
        values = [value_literal(int_param(v, dtype), dtype) for v in raw]
    n = len(values)
    ctx.declare(
        f"static const {dtype.c_name} {st}_tb[{n}] = {{{', '.join(values)}}};"
    )
    ctrl = ctx.in_var(fa, 0)
    ctrl_dt = ctx.in_dtype(fa, 0)
    idx = f"(int64_t){ctrl}" if not ctrl_dt.is_float else f"(int64_t)(double){ctrl}"
    return (
        f"{{ int64_t _i = {idx}; "
        f"if (_i < 0) {{ _i = 0; f_ob = 1; }} "
        f"else if (_i >= {n}) {{ _i = {n - 1}; f_ob = 1; }} "
        f"{ctx.out_var(fa)} = {st}_tb[_i]; }}"
    )


def emit_sink(ctx, fa):
    return ""


# ----------------------------------------------------------------------
# dispatch tables
# ----------------------------------------------------------------------
OUTPUT_EMITTERS: dict[str, Callable[[EmitContext, FlatActor], str]] = {
    "Inport": emit_inport,
    "Constant": emit_constant,
    "Ground": emit_ground,
    "Clock": emit_clock,
    "Counter": emit_counter,
    "SineWave": emit_sinewave,
    "RampSource": emit_rampsource,
    "StepSource": emit_stepsource,
    "PulseGenerator": emit_pulsegenerator,
    "RandomSource": emit_randomsource,
    "Sum": emit_sum,
    "Product": emit_product,
    "Gain": emit_gain,
    "Bias": emit_bias,
    "Abs": emit_abs,
    "UnaryMinus": emit_unaryminus,
    "Signum": emit_signum,
    "Sqrt": emit_sqrt,
    "Math": emit_math,
    "MinMax": emit_minmax,
    "Mod": emit_mod,
    "Rounding": emit_rounding,
    "Saturation": emit_saturation,
    "DeadZone": emit_deadzone,
    "Quantizer": emit_quantizer,
    "Polynomial": emit_polynomial,
    "Power": emit_power,
    "Bitwise": emit_bitwise,
    "Shift": emit_shift,
    "DataTypeConversion": emit_datatypeconversion,
    "RelationalOperator": emit_relationaloperator,
    "Logic": emit_logic,
    "CompareToConstant": emit_comparetoconstant,
    "CompareToZero": emit_comparetozero,
    "Switch": emit_switch,
    "MultiportSwitch": emit_multiportswitch,
    "Relay": emit_relay,
    "Merge": emit_merge,
    "UnitDelay": emit_unitdelay,
    "Memory": emit_unitdelay,
    "Delay": emit_delay,
    "Accumulator": emit_accumulator,
    "DiscreteIntegrator": emit_discreteintegrator,
    "DiscreteFilter": emit_discretefilter,
    "DiscreteDerivative": emit_discretederivative,
    "RateLimiter": emit_ratelimiter,
    "ZeroOrderHold": emit_zeroorderhold,
    "ContinuousIntegrator": emit_continuousintegrator,
    "DataStoreRead": emit_datastoreread,
    "DataStoreWrite": emit_datastorewrite,
    "Lookup1D": emit_lookup1d,
    "DirectLookup": emit_directlookup,
    "Outport": emit_sink,
    "Terminator": emit_sink,
    "Scope": emit_sink,
    "Display": emit_sink,
}

UPDATE_EMITTERS: dict[str, Callable[[EmitContext, FlatActor], str]] = {
    "UnitDelay": update_unitdelay,
    "Memory": update_unitdelay,
    "Delay": update_delay,
    "Accumulator": update_accumulator,
    "DiscreteIntegrator": update_discreteintegrator,
    "DiscreteFilter": update_discretefilter,
    "DiscreteDerivative": update_discretederivative,
    "RateLimiter": update_ratelimiter,
    "ContinuousIntegrator": update_continuousintegrator,
    "Relay": update_relay,
    "Counter": update_counter,
    "Clock": update_counterbased,
    "SineWave": update_counterbased,
    "RampSource": update_counterbased,
    "StepSource": update_counterbased,
    "PulseGenerator": update_counterbased,
    "RandomSource": update_randomsource,
}


def emit_actor_output(ctx: EmitContext, fa: FlatActor) -> str:
    try:
        emitter = OUTPUT_EMITTERS[fa.block_type]
    except KeyError:
        raise CodegenError(f"no C template for block type {fa.block_type!r}") from None
    return emitter(ctx, fa)


def emit_actor_update(ctx: EmitContext, fa: FlatActor) -> Optional[str]:
    emitter = UPDATE_EMITTERS.get(fa.block_type)
    return emitter(ctx, fa) if emitter else None

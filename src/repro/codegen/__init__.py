"""Simulation code synthesis (paper §3.3).

Turns a preprocessed program plus an instrumentation plan into a complete,
self-contained simulation program:

* :mod:`~repro.codegen.runtime` — the generated C runtime prelude: wrap
  arithmetic with flag reporting (the C mirror of :mod:`repro.dtypes`),
  coverage tables, diagnosis slots, monitors, checksums, result output;
* :mod:`~repro.codegen.templates` — the actor code template library: one C
  emitter per block type, each mirroring the actor's Python reference
  semantics bit for bit;
* :mod:`~repro.codegen.compose` — simulation code composition: the model
  step body in execution order, instrumentation inlined at each actor, the
  main function with test-case import and the simulation loop;
* :mod:`~repro.codegen.driver` — gcc compilation and execution, plus the
  result-protocol parser;
* :mod:`~repro.codegen.pybackend` — a generated-Python backend with the
  same semantics (used by the Rapid-Accelerator analog engine and as a
  no-compiler fallback).
"""

from repro.codegen.compose import generate_c_program, generate_reusable_c_program
from repro.codegen.descriptor import descriptors_for, encode_case
from repro.codegen.driver import (
    CompiledSimulation,
    compile_c_program,
    find_c_compiler,
    parse_batch_result,
    split_case_frames,
)
from repro.codegen.pybackend import generate_py_step

__all__ = [
    "generate_c_program",
    "generate_reusable_c_program",
    "descriptors_for",
    "encode_case",
    "compile_c_program",
    "CompiledSimulation",
    "find_c_compiler",
    "parse_batch_result",
    "split_case_frames",
    "generate_py_step",
]

"""Generated-Python backend.

Emits one Python function containing the entire model step inlined — every
signal a local variable, every actor a few expressions — compiled with
:func:`compile`.  This is the execution core of the Rapid-Accelerator
analog engine (:mod:`repro.engines.sse_rac`): code-based simulation
without instrumentation, the way the paper describes SSE_rac.

Semantics are the same as the reference engine's (the cross-engine tests
compare outputs and checksums); arithmetic inlines the same wrap formulas
:mod:`repro.dtypes.arith` uses, float work follows the same
coerce-per-operation discipline, and transcendentals call the very same
helper functions from :mod:`repro.actors.math_ops`.
"""

from __future__ import annotations

import math
import numpy as np

from repro.actors.math_ops import _MATH_FNS, _ROUNDING_FNS, int_param
from repro.actors.sources import LCG_INC, LCG_MUL, lcg_next
from repro.dtypes import DType, coerce_float
from repro.dtypes.arith import _trunc_div, _trunc_mod, wrap
from repro.model.errors import CodegenError
from repro.schedule.program import EvalGuard, FlatProgram

_U64 = 0xFFFFFFFFFFFFFFFF


class _PyEmit:
    """Builds the generated module text for one program."""

    def __init__(self, prog: FlatProgram):
        self.prog = prog
        self.lines: list[str] = []
        self.init_lines: list[str] = []

    # -- naming ---------------------------------------------------------
    def sv(self, sid: int) -> str:
        return f"s{sid}"

    def st(self, idx: int, suffix: str = "") -> str:
        return f"st{idx}{suffix}"

    def in_v(self, fa, i: int) -> str:
        return self.sv(fa.input_sids[i])

    def out_v(self, fa, i: int = 0) -> str:
        return self.sv(fa.output_sids[i])

    def in_d(self, fa, i: int) -> DType:
        return self.prog.signals[fa.input_sids[i]].dtype

    def out_d(self, fa, i: int = 0) -> DType:
        return self.prog.signals[fa.output_sids[i]].dtype

    # -- scalar formulas --------------------------------------------------
    @staticmethod
    def wrap_expr(expr: str, dtype: DType) -> str:
        mask = (1 << dtype.bits) - 1
        if dtype.is_bool:
            return f"(1 if {expr} else 0)"
        if not dtype.is_signed:
            return f"(({expr}) & {mask})"
        half = 1 << (dtype.bits - 1)
        return f"((({expr}) + {half} & {mask}) - {half})"

    def cast_expr(self, expr: str, src: DType, dst: DType) -> str:
        """Unchecked-value cast (same result as checked_cast, no flags)."""
        if src is dst:
            return expr
        if dst.is_bool:
            return f"(1 if {expr} else 0)"
        if dst.is_float:
            if dst is DType.F32:
                return f"_c32({expr})"
            return f"float({expr})"
        if src.is_float:
            return f"_f2i_{dst.short_name}({expr})"
        return self.wrap_expr(expr, dst)

    def fexpr(self, expr: str, dtype: DType) -> str:
        """One float op in the coerce-per-operation discipline."""
        if dtype is DType.F32:
            return f"_c32({expr})"
        return f"({expr})"

    def fin(self, fa, i: int, dtype: DType) -> str:
        src = self.in_d(fa, i)
        if src is dtype:
            return self.in_v(fa, i)
        if dtype is DType.F32:
            return f"_c32({self.in_v(fa, i)})"
        return f"float({self.in_v(fa, i)})"


def _emit_actor(e: _PyEmit, fa, out: list[str]) -> None:
    bt = fa.block_type
    a = fa.actor
    if bt in ("Outport", "Terminator", "Scope", "Display"):
        return
    if bt == "Inport":
        return  # fed at the top of the step

    dtype = e.out_d(fa) if fa.output_sids else None
    o = e.out_v(fa) if fa.output_sids else None

    if bt == "Constant":
        raw = a.params["value"]
        value = (
            coerce_float(float(raw), dtype) if dtype.is_float else int_param(raw, dtype)
        )
        out.append(f"{o} = {value!r}")
    elif bt == "Ground":
        out.append(f"{o} = {0.0 if dtype.is_float else 0}")
    elif bt == "Clock":
        st = e.st(fa.index, "_n")
        e.init_lines.append(f"{st} = 0")
        expr = f"float({st}) * {e.prog.dt!r}"
        out.append(f"{o} = {e.fexpr(expr, dtype)}")
    elif bt == "Counter":
        st = e.st(fa.index, "_n")
        e.init_lines.append(f"{st} = 0")
        out.append(f"{o} = {e.wrap_expr(st, dtype)}")
    elif bt == "SineWave":
        st = e.st(fa.index, "_n")
        e.init_lines.append(f"{st} = 0")
        p = a.params
        w = 2.0 * math.pi * float(p["frequency"]) * e.prog.dt
        expr = (
            f"{float(p.get('amplitude', 1.0))!r} * _sin({w!r} * float({st}) "
            f"+ {float(p.get('phase', 0.0))!r}) + {float(p.get('bias', 0.0))!r}"
        )
        out.append(f"{o} = {e.fexpr(expr, dtype)}")
    elif bt == "RampSource":
        st = e.st(fa.index, "_n")
        e.init_lines.append(f"{st} = 0")
        k = float(a.params["slope"]) * e.prog.dt
        expr = f"{float(a.params.get('start', 0.0))!r} + {k!r} * float({st})"
        out.append(f"{o} = {e.fexpr(expr, dtype)}")
    elif bt == "StepSource":
        st = e.st(fa.index, "_n")
        e.init_lines.append(f"{st} = 0")
        before, after = a.params.get("before", 0.0), a.params.get("after", 1.0)
        if dtype.is_float:
            b, af = coerce_float(float(before), dtype), coerce_float(float(after), dtype)
        else:
            b, af = int_param(before, dtype), int_param(after, dtype)
        out.append(f"{o} = {b!r} if {st} < {a.params['at']} else {af!r}")
    elif bt == "PulseGenerator":
        st = e.st(fa.index, "_n")
        e.init_lines.append(f"{st} = 0")
        amplitude = a.params.get("amplitude", 1.0)
        if dtype.is_float:
            high, low = coerce_float(float(amplitude), dtype), 0.0
        else:
            high, low = int_param(amplitude, dtype), 0
        out.append(
            f"{o} = {high!r} if ({st} % {a.params['period']}) < "
            f"{a.params['duty']} else {low!r}"
        )
    elif bt == "RandomSource":
        st = e.st(fa.index, "_s")
        seed = a.params.get("seed", 1) & _U64
        e.init_lines.append(f"{st} = {lcg_next(seed)}")
        p = a.params
        if p.get("dist", "uniform") == "uniform":
            lo, hi = float(p.get("lo", 0)), float(p.get("hi", 1))
            expr = f"{lo!r} + (({st} >> 11) * {1.0 / 9007199254740992.0!r}) * {hi - lo!r}"
            out.append(f"{o} = {e.fexpr(expr, dtype)}")
        else:
            lo, hi = int(p.get("lo", 0)), int(p.get("hi", 1))
            out.append(
                f"{o} = {e.wrap_expr(f'{lo} + (({st} >> 33) % {hi - lo + 1})', dtype)}"
            )
    elif bt == "Sum":
        signs = a.operator
        if dtype.is_float:
            first = e.fin(fa, 0, dtype)
            expr = first if signs[0] == "+" else e.fexpr(f"-({first})", dtype)
            for i in range(1, a.n_inputs):
                expr = e.fexpr(f"{expr} {signs[i]} {e.fin(fa, i, dtype)}", dtype)
            out.append(f"{o} = {expr}")
        else:
            terms = [e.cast_expr(e.in_v(fa, i), e.in_d(fa, i), dtype) for i in range(a.n_inputs)]
            expr = " ".join(
                f"{'+' if i == 0 and signs[0] == '+' else signs[i]} {t}"
                if i else (t if signs[0] == '+' else f"- {t}")
                for i, t in enumerate(terms)
            )
            out.append(f"{o} = {e.wrap_expr(expr, dtype)}")
    elif bt == "Product":
        ops = a.operator
        if dtype.is_float:
            expr = (
                e.fexpr(f"1.0 * {e.fin(fa, 0, dtype)}", dtype)
                if ops[0] == "*"
                else f"_fdiv{'' if dtype is DType.F64 else '32'}(1.0, {e.fin(fa, 0, dtype)})"
            )
            for i in range(1, a.n_inputs):
                operand = e.fin(fa, i, dtype)
                if ops[i] == "*":
                    expr = e.fexpr(f"{expr} * {operand}", dtype)
                else:
                    fdiv = "_fdiv" if dtype is DType.F64 else "_fdiv32"
                    expr = f"{fdiv}({expr}, {operand})"
            out.append(f"{o} = {expr}")
        else:
            s = dtype.short_name
            expr = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            if ops[0] == "/":
                expr = f"_idiv_{s}(1, {expr})"
            for i in range(1, a.n_inputs):
                operand = e.cast_expr(e.in_v(fa, i), e.in_d(fa, i), dtype)
                if ops[i] == "*":
                    expr = e.wrap_expr(f"({expr}) * ({operand})", dtype)
                else:
                    expr = f"_idiv_{s}({expr}, {operand})"
            out.append(f"{o} = {expr}")
    elif bt == "Gain":
        gain = a.params["gain"]
        if dtype.is_float:
            k = coerce_float(float(gain), dtype)
            out.append(f"{o} = {e.fexpr(f'{e.fin(fa, 0, dtype)} * {k!r}', dtype)}")
        elif isinstance(gain, float):
            out.append(f"{o} = _f2i_{dtype.short_name}(float({e.in_v(fa, 0)}) * {gain!r})")
        else:
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            out.append(f"{o} = {e.wrap_expr(f'({x}) * {int_param(gain, dtype)}', dtype)}")
    elif bt == "Bias":
        bias = a.params["bias"]
        if dtype.is_float:
            b = coerce_float(float(bias), dtype)
            out.append(f"{o} = {e.fexpr(f'{e.fin(fa, 0, dtype)} + {b!r}', dtype)}")
        elif isinstance(bias, float):
            out.append(f"{o} = _f2i_{dtype.short_name}(float({e.in_v(fa, 0)}) + {bias!r})")
        else:
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            out.append(f"{o} = {e.wrap_expr(f'({x}) + {int_param(bias, dtype)}', dtype)}")
    elif bt == "Abs":
        if dtype.is_float:
            out.append(f"{o} = {e.fexpr(f'abs(float({e.in_v(fa, 0)}))', dtype)}")
        else:
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            out.append(f"_x = {x}")
            out.append(f"{o} = {e.wrap_expr('-_x', dtype)} if _x < 0 else _x")
    elif bt == "UnaryMinus":
        if dtype.is_float:
            out.append(f"{o} = {e.fexpr(f'-{e.fin(fa, 0, dtype)}', dtype)}")
        else:
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            out.append(f"{o} = {e.wrap_expr(f'-({x})', dtype)}")
    elif bt == "Signum":
        x = e.in_v(fa, 0)
        sign = f"(({x} > 0) - ({x} < 0))"
        if dtype.is_float:
            out.append(f"{o} = {e.fexpr(f'float{sign}', dtype)}")
        else:
            out.append(f"{o} = {e.wrap_expr(sign, dtype)}")
    elif bt == "Sqrt":
        out.append(f"{o} = {e.fexpr(f'_sqrt(float({e.in_v(fa, 0)}))', dtype)}")
    elif bt == "Math":
        fn = f"_math_{a.operator}"
        out.append(f"{o} = {e.fexpr(f'{fn}(float({e.in_v(fa, 0)}))', dtype)}")
    elif bt == "MinMax":
        pick = "min" if a.operator == "min" else "max"
        if dtype.is_float:
            args = ", ".join(e.fin(fa, i, dtype) for i in range(a.n_inputs))
        else:
            args = ", ".join(
                e.cast_expr(e.in_v(fa, i), e.in_d(fa, i), dtype)
                for i in range(a.n_inputs)
            )
        out.append(f"{o} = {pick}({args})")
    elif bt == "Mod":
        if dtype.is_float:
            out.append(
                f"{o} = {e.fexpr(f'_fmod(float({e.in_v(fa, 0)}), float({e.in_v(fa, 1)}))', dtype)}"
            )
        else:
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            y = e.cast_expr(e.in_v(fa, 1), e.in_d(fa, 1), dtype)
            out.append(f"{o} = {e.wrap_expr(f'_imod({x}, {y})', dtype)}")
    elif bt == "Rounding":
        fn = f"_round_{a.operator}"
        out.append(f"{o} = {e.fexpr(f'{fn}(float({e.in_v(fa, 0)}))', dtype)}")
    elif bt == "Saturation":
        lower, upper = a.params["lower"], a.params["upper"]
        if dtype.is_float:
            lo = coerce_float(float(lower), dtype)
            hi = coerce_float(float(upper), dtype)
            x = e.fin(fa, 0, dtype)
        else:
            lo, hi = int_param(lower, dtype), int_param(upper, dtype)
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
        out.append(f"_x = {x}")
        out.append(f"{o} = {lo!r} if _x < {lo!r} else ({hi!r} if _x > {hi!r} else _x)")
    elif bt == "DeadZone":
        start = coerce_float(float(a.params["start"]), dtype)
        end = coerce_float(float(a.params["end"]), dtype)
        out.append(f"_x = {e.fin(fa, 0, dtype)}")
        out.append(
            f"{o} = {e.fexpr(f'_x - {start!r}', dtype)} if _x < {start!r} "
            f"else ({e.fexpr(f'_x - {end!r}', dtype)} if _x > {end!r} else 0.0)"
        )
    elif bt == "Quantizer":
        q = float(a.params["interval"])
        expr = f"{q!r} * _cround(float({e.in_v(fa, 0)}) / {q!r})"
        out.append(f"{o} = {e.fexpr(expr, dtype)}")
    elif bt == "Polynomial":
        out.append(f"_x = float({e.in_v(fa, 0)})")
        out.append("_a = 0.0")
        for c in a.params["coeffs"]:
            out.append(f"_a = _a * _x + {float(c)!r}")
        out.append(f"{o} = {e.fexpr('_a', dtype)}")
    elif bt == "Power":
        expr = f"_pow(float({e.in_v(fa, 0)}), float({e.in_v(fa, 1)}))"
        out.append(f"{o} = {e.fexpr(expr, dtype)}")
    elif bt == "Bitwise":
        op = a.operator
        if op == "NOT":
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            out.append(f"{o} = {e.wrap_expr(f'~({x})', dtype)}")
        else:
            py_op = {"AND": "&", "OR": "|", "XOR": "^"}[op]
            terms = [
                f"({e.cast_expr(e.in_v(fa, i), e.in_d(fa, i), dtype)})"
                for i in range(a.n_inputs)
            ]
            out.append(f"{o} = {e.wrap_expr(f' {py_op} '.join(terms), dtype)}")
    elif bt == "Shift":
        amount = a.params["amount"]
        x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
        if a.operator == ">>":
            out.append(f"{o} = {e.wrap_expr(f'({x}) >> {amount}', dtype)}")
        else:
            out.append(f"{o} = {e.wrap_expr(f'({x}) << {amount}', dtype)}")
    elif bt == "DataTypeConversion":
        out.append(f"{o} = {e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)}")
    elif bt == "RelationalOperator":
        out.append(f"{o} = 1 if {e.in_v(fa, 0)} {a.operator} {e.in_v(fa, 1)} else 0")
    elif bt == "Logic":
        truths = [f"({e.in_v(fa, i)} != 0)" for i in range(a.n_inputs)]
        op = a.operator
        if op == "NOT":
            expr = f"not {truths[0]}"
        elif op == "AND":
            expr = " and ".join(truths)
        elif op == "OR":
            expr = " or ".join(truths)
        elif op == "NAND":
            expr = f"not ({' and '.join(truths)})"
        elif op == "NOR":
            expr = f"not ({' or '.join(truths)})"
        else:
            expr = f"(({' + '.join(truths)}) % 2) == 1"
        out.append(f"{o} = 1 if {expr} else 0")
    elif bt == "CompareToConstant":
        out.append(
            f"{o} = 1 if {e.in_v(fa, 0)} {a.operator} {a.params['constant']!r} else 0"
        )
    elif bt == "CompareToZero":
        out.append(f"{o} = 1 if {e.in_v(fa, 0)} {a.operator} 0 else 0")
    elif bt == "Switch":
        threshold = a.params.get("threshold", 0)
        tv = (
            e.fin(fa, 0, dtype) if dtype.is_float
            else e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
        )
        fv = (
            e.fin(fa, 2, dtype) if dtype.is_float
            else e.cast_expr(e.in_v(fa, 2), e.in_d(fa, 2), dtype)
        )
        out.append(
            f"{o} = {tv} if {e.in_v(fa, 1)} >= {threshold!r} else {fv}"
        )
    elif bt == "MultiportSwitch":
        n = a.n_inputs - 1
        out.append(f"_i = int({e.in_v(fa, 0)})")
        out.append(f"_i = 0 if _i < 0 else ({n - 1} if _i >= {n} else _i)")
        for i in range(n):
            value = (
                e.fin(fa, 1 + i, dtype) if dtype.is_float
                else e.cast_expr(e.in_v(fa, 1 + i), e.in_d(fa, 1 + i), dtype)
            )
            out.append(f"{'if' if i == 0 else 'elif'} _i == {i}: {o} = {value}")
    elif bt == "Relay":
        st = e.st(fa.index)
        p = a.params
        e.init_lines.append(
            f"{st} = {1 if p.get('initial_on', False) else 0}"
        )
        if dtype.is_float:
            on_value = coerce_float(float(p["on_value"]), dtype)
            off_value = coerce_float(float(p["off_value"]), dtype)
        else:
            on_value = int_param(p["on_value"], dtype)
            off_value = int_param(p["off_value"], dtype)
        u = e.in_v(fa, 0)
        out.append(
            f"{st} = 1 if {u} >= {p['on_threshold']!r} else "
            f"(0 if {u} <= {p['off_threshold']!r} else {st})"
        )
        out.append(f"{o} = {on_value!r} if {st} else {off_value!r}")
    elif bt == "Merge":
        for i, gid in enumerate(fa.merge_src_guards or ()):
            value = (
                e.fin(fa, i, dtype) if dtype.is_float
                else e.cast_expr(e.in_v(fa, i), e.in_d(fa, i), dtype)
            )
            if gid is None:
                out.append(f"{o} = {value}")
            else:
                out.append(f"if g{gid}: {o} = {value}")
    elif bt in ("UnitDelay", "Memory"):
        st = e.st(fa.index)
        e.init_lines.append(f"{st} = {_py_initial(fa, dtype)!r}")
        out.append(f"{o} = {st}")
    elif bt == "Delay":
        st = e.st(fa.index)
        length = a.params["length"]
        e.init_lines.append(f"{st}_buf = [{_py_initial(fa, dtype)!r}] * {length}")
        e.init_lines.append(f"{st}_i = 0")
        out.append(f"{o} = {st}_buf[{st}_i]")
    elif bt == "Accumulator":
        st = e.st(fa.index)
        e.init_lines.append(f"{st} = {_py_initial(fa, dtype)!r}")
        if dtype.is_float:
            out.append(f"{o} = {e.fexpr(f'{st} + {e.fin(fa, 0, dtype)}', dtype)}")
        else:
            x = e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)
            out.append(f"{o} = {e.wrap_expr(f'{st} + ({x})', dtype)}")
    elif bt == "DiscreteIntegrator":
        st = e.st(fa.index)
        e.init_lines.append(f"{st} = {_py_initial(fa, dtype, 0.0)!r}")
        out.append(f"{o} = {st}")
    elif bt == "DiscreteFilter":
        st = e.st(fa.index)
        e.init_lines.append(f"{st} = {_py_initial(fa, dtype, 0.0)!r}")
        b0 = coerce_float(float(a.params["b0"]), dtype)
        a1 = coerce_float(float(a.params["a1"]), dtype)
        t1 = e.fexpr(f"{b0!r} * {e.fin(fa, 0, dtype)}", dtype)
        t2 = e.fexpr(f"{a1!r} * {st}", dtype)
        out.append(f"{o} = {e.fexpr(f'{t1} + {t2}', dtype)}")
    elif bt == "DiscreteDerivative":
        st = e.st(fa.index)
        e.init_lines.append(f"{st} = {_py_initial(fa, dtype, 0.0)!r}")
        inv_dt = coerce_float(1.0 / e.prog.dt, dtype)
        diff = e.fexpr(f"{e.fin(fa, 0, dtype)} - {st}", dtype)
        out.append(f"{o} = {e.fexpr(f'{diff} * {inv_dt!r}', dtype)}")
    elif bt == "RateLimiter":
        st = e.st(fa.index)
        e.init_lines.append(f"{st} = {_py_initial(fa, dtype, 0.0)!r}")
        rising = coerce_float(float(a.params["rising"]), dtype)
        falling = coerce_float(float(a.params["falling"]), dtype)
        out.append(f"_u = {e.fin(fa, 0, dtype)}")
        out.append(f"_up = {e.fexpr(f'{st} + {rising!r}', dtype)}")
        out.append(f"_lo = {e.fexpr(f'{st} - {falling!r}', dtype)}")
        out.append(f"{o} = _lo if _u < _lo else (_up if _u > _up else _u)")
    elif bt == "ContinuousIntegrator":
        st = e.st(fa.index)
        e.init_lines.append(f"{st}_y = {_py_initial(fa, dtype, 0.0)!r}")
        e.init_lines.append(f"{st}_f1 = 0.0")
        e.init_lines.append(f"{st}_f2 = 0.0")
        e.init_lines.append(f"{st}_n = 0")
        out.append(f"{o} = {st}_y")
    elif bt == "ZeroOrderHold":
        if dtype.is_float:
            out.append(f"{o} = {e.fin(fa, 0, dtype)}")
        else:
            out.append(f"{o} = {e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)}")
    elif bt == "DataStoreRead":
        out.append(f"{o} = store_{a.params['store']}")
    elif bt == "DataStoreWrite":
        store = a.params["store"]
        info = e.prog.stores[store]
        out.append(
            f"store_{store} = "
            f"{e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), info.dtype)}"
        )
    elif bt == "Lookup1D":
        st = e.st(fa.index)
        bp = [float(b) for b in a.params["breakpoints"]]
        tb = [float(t) for t in a.params["table"]]
        e.init_lines.append(f"{st}_bp = {bp!r}")
        e.init_lines.append(f"{st}_tb = {tb!r}")
        n = len(bp)
        out.append(f"_x = float({e.in_v(fa, 0)})")
        out.append(f"if _x <= {bp[0]!r}: _y = {tb[0]!r}")
        out.append(f"elif _x >= {bp[-1]!r}: _y = {tb[-1]!r}")
        out.append("else:")
        out.append("    _i = 0")
        out.append(f"    while _x > {st}_bp[_i + 1]: _i += 1")
        out.append(
            f"    _f = (_x - {st}_bp[_i]) / ({st}_bp[_i + 1] - {st}_bp[_i])"
        )
        out.append(
            f"    _y = {st}_tb[_i] + ({st}_tb[_i + 1] - {st}_tb[_i]) * _f"
        )
        out.append(f"{o} = {e.fexpr('_y', dtype)}")
    elif bt == "DirectLookup":
        st = e.st(fa.index)
        raw = a.params["table"]
        if dtype.is_float:
            table = [coerce_float(float(v), dtype) for v in raw]
        else:
            table = [int_param(v, dtype) for v in raw]
        e.init_lines.append(f"{st}_tb = {table!r}")
        n = len(table)
        out.append(f"_i = int({e.in_v(fa, 0)})")
        out.append(f"{o} = {st}_tb[0 if _i < 0 else ({n - 1} if _i >= {n} else _i)]")
    else:
        raise CodegenError(f"no Python template for block type {bt!r}")


def _emit_update(e: _PyEmit, fa, out: list[str]) -> None:
    bt = fa.block_type
    a = fa.actor
    dtype = e.out_d(fa) if fa.output_sids else None
    if bt in ("UnitDelay", "Memory"):
        st = e.st(fa.index)
        out.append(f"{st} = {e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)}")
    elif bt == "Delay":
        st = e.st(fa.index)
        length = a.params["length"]
        out.append(
            f"{st}_buf[{st}_i] = {e.cast_expr(e.in_v(fa, 0), e.in_d(fa, 0), dtype)}"
        )
        out.append(f"{st}_i = 0 if {st}_i + 1 == {length} else {st}_i + 1")
    elif bt in ("Accumulator", "DiscreteFilter", "RateLimiter"):
        out.append(f"{e.st(fa.index)} = {e.out_v(fa)}")
    elif bt == "DiscreteIntegrator":
        st = e.st(fa.index)
        gain = float(a.params.get("gain", 1.0))
        k = coerce_float(gain * e.prog.dt, dtype)
        ku = e.fexpr(f"{k!r} * {e.fin(fa, 0, dtype)}", dtype)
        out.append(f"{st} = {e.fexpr(f'{st} + {ku}', dtype)}")
    elif bt == "DiscreteDerivative":
        out.append(f"{e.st(fa.index)} = {e.fin(fa, 0, dtype)}")
    elif bt == "ContinuousIntegrator":
        from repro.actors.continuous import AB2_C0, AB2_C1, AB3_C0, AB3_C1, AB3_C2

        st = e.st(fa.index)
        solver = a.params.get("solver", "ab2")
        dt_v = coerce_float(e.prog.dt, dtype)

        def lit(value):
            return repr(coerce_float(value, dtype))

        ab2 = e.fexpr(
            f"{e.fexpr(f'{lit(AB2_C0)} * _u', dtype)} - "
            f"{e.fexpr(f'{lit(AB2_C1)} * {st}_f1', dtype)}", dtype
        )
        ab3_inner = e.fexpr(
            f"{e.fexpr(f'{lit(AB3_C0)} * _u', dtype)} - "
            f"{e.fexpr(f'{lit(AB3_C1)} * {st}_f1', dtype)}", dtype
        )
        ab3 = e.fexpr(
            f"{ab3_inner} + {e.fexpr(f'{lit(AB3_C2)} * {st}_f2', dtype)}", dtype
        )
        out.append(f"_u = {e.fin(fa, 0, dtype)}")
        if solver == "euler":
            out.append("_slope = _u")
        elif solver == "ab2":
            out.append(f"_slope = _u if {st}_n == 0 else {ab2}")
        else:
            out.append(
                f"_slope = _u if {st}_n == 0 else "
                f"({ab2} if {st}_n == 1 else {ab3})"
            )
        step_expr = e.fexpr(f"{lit(dt_v)} * _slope", dtype)
        out.append(f"{st}_y = {e.fexpr(f'{st}_y + {step_expr}', dtype)}")
        out.append(f"{st}_f2 = {st}_f1")
        out.append(f"{st}_f1 = _u")
        out.append(f"{st}_n += 1")
    elif bt == "Counter":
        st = e.st(fa.index, "_n")
        out.append(f"{st} = ({st} + 1) % {a.params['limit']}")
    elif bt in ("Clock", "SineWave", "RampSource", "StepSource", "PulseGenerator"):
        out.append(f"{e.st(fa.index, '_n')} += 1")
    elif bt == "RandomSource":
        st = e.st(fa.index, "_s")
        out.append(f"{st} = ({st} * {LCG_MUL} + {LCG_INC}) & {_U64}")


def _py_initial(fa, dtype: DType, default=0):
    raw = fa.actor.params.get("initial", default)
    if dtype.is_float:
        return coerce_float(float(raw), dtype)
    return int_param(raw, dtype)


def generate_py_step(prog: FlatProgram, *, sync_batch: int = 64) -> str:
    """Generate the module text whose ``run`` executes the whole model.

    ``run(steps, feeds, sync, deadline)`` returns ``(steps_run, outputs)``:
    ``feeds`` is a list of per-inport callables yielding conformed values,
    ``sync`` receives the buffered outport tuples every ``sync_batch``
    steps (the Rapid-Accelerator host data transfer), ``deadline`` is an
    optional ``time.perf_counter`` cutoff.
    """
    e = _PyEmit(prog)
    body: list[str] = []
    for node in prog.order:
        if isinstance(node, EvalGuard):
            guard = prog.guards[node.gid]
            parent = f"g{guard.parent} and " if guard.parent is not None else ""
            body.append(f"g{node.gid} = {parent}({e.sv(guard.signal)} > 0)")
            continue
        fa = prog.actors[node.actor_index]
        lines: list[str] = []
        _emit_actor(e, fa, lines)
        if not lines:
            continue
        if fa.guard is not None:
            body.append(f"if g{fa.guard}:")
            body.extend(f"    {line}" for line in lines)
        else:
            body.extend(lines)

    updates: list[str] = []
    for node in prog.order:
        if isinstance(node, EvalGuard):
            continue
        fa = prog.actors[node.actor_index]
        lines = []
        _emit_update(e, fa, lines)
        if not lines:
            continue
        if fa.guard is not None:
            updates.append(f"if g{fa.guard}:")
            updates.extend(f"    {line}" for line in lines)
        else:
            updates.extend(lines)

    signal_inits = [
        f"{e.sv(s.sid)} = {0.0 if s.dtype.is_float else 0}" for s in prog.signals
    ]
    guard_inits = [f"g{g.gid} = False" for g in prog.guards]
    store_inits = []
    for info in prog.stores.values():
        if info.dtype.is_float:
            init = coerce_float(float(info.initial), info.dtype)
        else:
            init = int_param(info.initial, info.dtype)
        store_inits.append(f"store_{info.name} = {init!r}")

    feed_lines = [
        f"{e.sv(b.sid)} = _feed{i}()" for i, b in enumerate(prog.inports)
    ]
    out_tuple = ", ".join(e.sv(b.sid) for b in prog.outports)
    if prog.outports:
        out_tuple += ","

    module = [
        "# Generated Python simulation module (Rapid-Accelerator backend).",
        "import math as _math",
        "import numpy as _np",
        "from repro.actors.math_ops import (",
        "    _MATH_FNS as _MF, _ROUNDING_FNS as _RF, c_pow as _pow,",
        "    c_round as _cround, c_sqrt as _sqrt,",
        ")",
        "from repro.codegen.pybackend import (",
        "    _fdiv, _fdiv32, _fmod, make_int_helpers,",
        ")",
        "_sin = _math.sin",
        # repr() spells non-finite floats as bare names (nan, inf, -inf);
        # bind them so every repr'd parameter is a valid expression here.
        "nan = _math.nan",
        "inf = _math.inf",
        "def _c32(x):",
        "    return float(_np.float32(x))",
    ]
    for op in _MATH_FNS:
        module.append(f"_math_{op} = _MF[{op!r}]")
    for op in _ROUNDING_FNS:
        module.append(f"_round_{op} = _RF[{op!r}]")
    module.append("globals().update(make_int_helpers())")
    module.append("")
    module.append("def run(steps, feeds, sync, deadline=None):")
    module.append("    import time as _time")
    for i in range(len(prog.inports)):
        module.append(f"    _feed{i} = feeds[{i}]")
    module.extend(f"    {line}" for line in signal_inits)
    module.extend(f"    {line}" for line in guard_inits)
    module.extend(f"    {line}" for line in store_inits)
    module.extend(f"    {line}" for line in e.init_lines)
    module.append("    _buf = []")
    module.append("    _append = _buf.append")
    module.append("    _steps_run = 0")
    module.append("    for step in range(steps):")
    module.append("        if deadline is not None and (step & 511) == 0:")
    module.append("            if _time.perf_counter() >= deadline: break")
    module.extend(f"        {line}" for line in feed_lines)
    module.extend(f"        {line}" for line in body)
    module.extend(f"        {line}" for line in updates)
    if prog.outports:
        module.append(f"        _append(({out_tuple}))")
        module.append(f"        if (step & {sync_batch - 1}) == {sync_batch - 1}:")
        module.append("            sync(_buf)")
        module.append("            del _buf[:]")
    module.append("        _steps_run = step + 1")
    module.append("    if _buf: sync(_buf)")
    if prog.outports:
        module.append(
            "    _final = dict(zip(["
            + ", ".join(repr(b.name) for b in prog.outports)
            + f"], ({out_tuple})))"
        )
    else:
        module.append("    _final = {}")
    module.append("    return _steps_run, _final")
    return "\n".join(module) + "\n"


# ----------------------------------------------------------------------
# runtime helpers imported by the generated module
# ----------------------------------------------------------------------
def _fdiv(a: float, b: float) -> float:
    """checked_div (f64 path) without flags."""
    if b == 0:
        return math.nan if a == 0 else math.inf if a > 0 else -math.inf
    return a / b


def _fdiv32(a: float, b: float) -> float:
    """checked_div (f32 path) without flags."""
    return float(np.float32(_fdiv(a, b)))


def _fmod(a: float, b: float) -> float:
    if b == 0:
        return math.nan
    return math.fmod(a, b)


def make_int_helpers() -> dict:
    """Specialized division helpers per integer dtype, plus float→int casts."""
    from repro.dtypes.dtype import INTEGER_DTYPES

    helpers: dict = {}
    for dt in INTEGER_DTYPES:
        def idiv(a, b, _dt=dt):
            if b == 0:
                return 0
            return wrap(_trunc_div(a, b), _dt)

        def f2i(v, _dt=dt):
            if math.isnan(v) or math.isinf(v):
                return 0
            return wrap(int(v), _dt)

        helpers[f"_idiv_{dt.short_name}"] = idiv
        helpers[f"_f2i_{dt.short_name}"] = f2i
    helpers["_imod"] = lambda a, b: 0 if b == 0 else _trunc_mod(a, b)
    return helpers

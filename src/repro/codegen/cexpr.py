"""Small C expression-building utilities shared by the actor templates."""

from __future__ import annotations

from repro.dtypes import DType
from repro.stimuli.base import c_double_literal, c_int_literal


def svar(sid: int) -> str:
    """The C variable holding a signal's current value."""
    return f"s{sid}"


def state_var(actor_index: int, suffix: str = "") -> str:
    """The C variable(s) holding an actor's internal state."""
    return f"st{actor_index}{suffix}"


def emit_cast(expr: str, src: DType, dst: DType) -> str:
    """A checked-conversion expression; mirrors ``checked_cast``.

    Bool sources fit everywhere (plain cast, no flags), bool destinations
    use truthiness, identical types pass through.
    """
    if src is dst:
        return expr
    if dst.is_bool:
        return f"ACC_TO_BOOL({expr})"
    if src.is_bool:
        return f"({dst.c_name})({expr})"
    if src is DType.F32 and dst.is_integer:
        # The float→int helpers take double; f32→f64 promotion is exact.
        return f"acc_cast_f64_{dst.short_name}((double)({expr}))"
    return f"acc_cast_{src.short_name}_{dst.short_name}({expr})"


def float_literal(value: float, dtype: DType) -> str:
    """An exact float literal in the compute type."""
    lit = c_double_literal(float(value))
    if dtype is DType.F32:
        return f"(float){lit}"
    return lit


def value_literal(value, dtype: DType) -> str:
    """A literal of ``value`` conformed to ``dtype``.

    Integer values are routed through :func:`int_param` — the same
    wrap/truncate the interpreter applies — so an out-of-range parameter
    (e.g. 300 on an INT8 port) emits the wrapped value rather than a
    literal the C compiler would conform differently.
    """
    if dtype.is_float:
        return float_literal(value, dtype)
    from repro.actors.math_ops import int_param

    return f"({dtype.c_name}){c_int_literal(int_param(value, dtype), dtype)}"


def to_double(expr: str, src: DType) -> str:
    """Promote any signal value to double for transcendental maths."""
    if src is DType.F64:
        return expr
    return f"(double)({expr})"


def fn32(name: str, dtype: DType) -> str:
    """libm function name in the right precision (sin vs sinf is NOT used:
    the Python reference always computes transcendentals in double, so the
    generated code does too, then narrows)."""
    return name


def indent(code: str, by: str = "    ") -> str:
    return "\n".join(by + line if line.strip() else line for line in code.split("\n"))

"""Actor-type registry and executable semantics.

Every block type known to the library is described by an
:class:`~repro.actors.registry.ActorSpec` (arity, operators, coverage
classification, statefulness) and implemented by an
:class:`~repro.actors.base.ActorSemantics` subclass giving its *reference
semantics*: the output/update behaviour the interpreted SSE engine executes
directly and the generated C code must reproduce bit for bit.

Importing this package registers all built-in actor types (the paper's
"code template libraries ... for over fifty commonly used actors").
"""

from repro.actors.base import ActorSemantics, BindContext, StepResult
from repro.actors.registry import (
    ActorSpec,
    all_specs,
    get_semantics_class,
    get_spec,
    is_known_type,
    register,
)

# Importing the implementation modules populates the registry.
from repro.actors import (  # noqa: F401  (imported for registration side effect)
    continuous,
    control,
    lookup,
    logic_ops,
    math_ops,
    memory_ops,
    sinks,
    sources,
    stores,
)

__all__ = [
    "ActorSpec",
    "ActorSemantics",
    "BindContext",
    "StepResult",
    "register",
    "get_spec",
    "get_semantics_class",
    "is_known_type",
    "all_specs",
]

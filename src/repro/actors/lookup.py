"""Table-lookup actors.

``DirectLookup`` indexes a constant table with a runtime integer — the
canonical array-out-of-bounds diagnosis target: an out-of-range index is
clamped and flagged, exactly like the generated C's guarded access.

``Lookup1D`` interpolates linearly over ascending breakpoints with end
clipping, computed in double with a fixed operation order so both engines
agree bitwise.
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import F64, I32, coerce_float
from repro.dtypes.arith import OK, OUT_OF_BOUNDS
from repro.model.errors import ValidationError


class Lookup1DSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        bp = actor.params.get("breakpoints")
        table = actor.params.get("table")
        if not isinstance(bp, (list, tuple)) or len(bp) < 2:
            raise ValidationError(f"{path}: Lookup1D needs >= 2 breakpoints")
        if not isinstance(table, (list, tuple)) or len(table) != len(bp):
            raise ValidationError(f"{path}: Lookup1D table length must match breakpoints")
        if any(nxt <= prev for prev, nxt in zip(bp, bp[1:])):
            raise ValidationError(f"{path}: Lookup1D breakpoints must be strictly ascending")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: Lookup1D output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64,)

    def _bind(self):
        self._bp = [float(b) for b in self.actor.params["breakpoints"]]
        self._table = [float(t) for t in self.actor.params["table"]]

    def output(self, state, inputs) -> StepResult:
        bp, table = self._bp, self._table
        x = float(inputs[0])
        if x <= bp[0]:
            y = table[0]
        elif x >= bp[-1]:
            y = table[-1]
        else:
            # Linear scan, identical to the generated C loop.
            i = 0
            while x > bp[i + 1]:
                i += 1
            frac = (x - bp[i]) / (bp[i + 1] - bp[i])
            y = table[i] + (table[i + 1] - table[i]) * frac
        y = coerce_float(y, self.ctx.out_dtypes[0])
        return StepResult((y,))


class DirectLookupSemantics(ActorSemantics):
    """``y = table[index]``; out-of-range indices clamp and raise the
    array-out-of-bounds flag."""

    @classmethod
    def check_params(cls, actor, path):
        table = actor.params.get("table")
        if not isinstance(table, (list, tuple)) or not table:
            raise ValidationError(f"{path}: DirectLookup needs a non-empty table")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        table = actor.params["table"]
        floaty = any(isinstance(v, float) for v in table)
        return (F64 if floaty else I32,)

    def _bind(self):
        from repro.actors.math_ops import int_param

        dtype = self.ctx.out_dtypes[0]
        raw = self.actor.params["table"]
        if dtype.is_float:
            self._table = [coerce_float(float(v), dtype) for v in raw]
        else:
            self._table = [int_param(v, dtype) for v in raw]

    def output(self, state, inputs) -> StepResult:
        index = int(inputs[0])
        flags = OK
        if index < 0:
            index, flags = 0, OUT_OF_BOUNDS
        elif index >= len(self._table):
            index, flags = len(self._table) - 1, OUT_OF_BOUNDS
        return StepResult((self._table[index],), flags)


register(
    ActorSpec(
        "Lookup1D", "lookup", 1, 1, 1, Lookup1DSemantics,
        required_params=("breakpoints", "table"),
        description="1-D interpolated lookup with end clipping",
    )
)
register(
    ActorSpec(
        "DirectLookup", "lookup", 1, 1, 1, DirectLookupSemantics,
        required_params=("table",), is_calculation=True,
        description="Direct table indexing (array-out-of-bounds target)",
    )
)

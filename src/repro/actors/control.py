"""Branching and signal-routing actors.

``Switch`` and ``MultiportSwitch`` are the *branch actors* of the coverage
model: condition coverage instruments one point per selectable branch, and
the ``branch`` field of :class:`StepResult` reports which one a step took.

``Merge`` combines the outputs of conditionally executed (enabled)
subsystems: it emits the value of the most recently *executed* source this
step and holds its previous value when none executed.  Because that depends
on guard activity, both engines special-case Merge; the ``output`` method
here implements the unguarded fallback (all sources active → highest-index
input wins).
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import checked_cast, coerce_float
from repro.dtypes.arith import OK as _OK
from repro.dtypes.arith import OUT_OF_BOUNDS
from repro.model.errors import ValidationError


class SwitchSemantics(ActorSemantics):
    """``out = in0 if control >= threshold else in2`` (Simulink default)."""

    @classmethod
    def check_params(cls, actor, path):
        threshold = actor.params.get("threshold", 0)
        if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
            raise ValidationError(f"{path}: Switch threshold must be numeric")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        from repro.dtypes import promote

        return (promote(in_dtypes[0], in_dtypes[2]),)

    def _bind(self):
        self._threshold = self.actor.params.get("threshold", 0)
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        taken_first = inputs[1] >= self._threshold
        branch = 0 if taken_first else 1
        chosen = inputs[0] if taken_first else inputs[2]
        src_dtype = self.ctx.in_dtypes[0 if taken_first else 2]
        if self._dtype.is_float:
            return StepResult(
                (coerce_float(float(chosen), self._dtype),), branch=branch
            )
        value, flags = checked_cast(chosen, src_dtype, self._dtype)
        return StepResult((value,), flags, branch=branch)


class MultiportSwitchSemantics(ActorSemantics):
    """``out = cases[control]``; an out-of-range control index clamps to the
    nearest case and raises the array-out-of-bounds flag."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes[1:]),)

    def _bind(self):
        self._n_cases = self.actor.n_inputs - 1
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        index = int(inputs[0])  # float controls truncate, C-style
        flags = None
        if index < 0:
            index, flags = 0, OUT_OF_BOUNDS
        elif index >= self._n_cases:
            index, flags = self._n_cases - 1, OUT_OF_BOUNDS
        chosen = inputs[1 + index]
        src_dtype = self.ctx.in_dtypes[1 + index]
        if self._dtype.is_float:
            value = coerce_float(float(chosen), self._dtype)
            return StepResult((value,), flags or _OK, branch=index)
        value, cast_flags = checked_cast(chosen, src_dtype, self._dtype)
        if flags:
            cast_flags = cast_flags.merge(flags)
        return StepResult((value,), cast_flags, branch=index)


class RelaySemantics(ActorSemantics):
    """Hysteresis switch: output flips to ``on_value`` when the input rises
    to ``on_threshold`` and back to ``off_value`` when it falls to
    ``off_threshold``; between the thresholds the previous state holds.

    A branch actor for condition coverage (branch 0 = on, 1 = off) and a
    stateful one (the hysteresis latch).
    """

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        on_th = actor.params.get("on_threshold")
        off_th = actor.params.get("off_threshold")
        if not isinstance(on_th, (int, float)) or not isinstance(off_th, (int, float)):
            raise ValidationError(f"{path}: Relay thresholds must be numeric")
        if off_th > on_th:
            raise ValidationError(
                f"{path}: Relay off_threshold {off_th} must not exceed "
                f"on_threshold {on_th}"
            )
        for key in ("on_value", "off_value"):
            value = actor.params.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValidationError(f"{path}: Relay requires numeric {key!r}")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        from repro.dtypes import F64, I32

        floaty = isinstance(actor.params["on_value"], float) or isinstance(
            actor.params["off_value"], float
        )
        return (F64 if floaty else I32,)

    def _bind(self):
        from repro.actors.math_ops import int_param

        p = self.actor.params
        dtype = self.ctx.out_dtypes[0]
        self._on_th = p["on_threshold"]
        self._off_th = p["off_threshold"]
        if dtype.is_float:
            self._on_value = coerce_float(float(p["on_value"]), dtype)
            self._off_value = coerce_float(float(p["off_value"]), dtype)
        else:
            self._on_value = int_param(p["on_value"], dtype)
            self._off_value = int_param(p["off_value"], dtype)

    def init_state(self):
        return 1 if self.actor.params.get("initial_on", False) else 0

    def _next_state(self, state, u):
        if u >= self._on_th:
            return 1
        if u <= self._off_th:
            return 0
        return state

    def output(self, state, inputs) -> StepResult:
        new_state = self._next_state(state, inputs[0])
        value = self._on_value if new_state else self._off_value
        return StepResult((value,), branch=0 if new_state else 1)

    def update(self, state, inputs, outputs):
        return self._next_state(state, inputs[0])


class MergeSemantics(ActorSemantics):
    """Unguarded fallback: highest-index input wins (engines special-case
    guarded Merge; see module docstring)."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes),)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        chosen = inputs[-1]
        src_dtype = self.ctx.in_dtypes[-1]
        if dtype.is_float:
            return StepResult((coerce_float(float(chosen), dtype),))
        value, flags = checked_cast(chosen, src_dtype, dtype)
        return StepResult((value,), flags)


register(
    ActorSpec(
        "Switch", "control", 3, 3, 1, SwitchSemantics,
        is_branch=True,
        description="Two-way switch on a control signal vs. threshold",
    )
)
register(
    ActorSpec(
        "MultiportSwitch", "control", 2, None, 1, MultiportSwitchSemantics,
        is_branch=True,
        description="N-way case selection by integer control input",
    )
)
register(
    ActorSpec(
        "Relay", "control", 1, 1, 1, RelaySemantics,
        stateful=True, is_branch=True,
        required_params=(
            "on_threshold", "off_threshold", "on_value", "off_value",
        ),
        description="Hysteresis switch (latching on/off thresholds)",
    )
)
register(
    ActorSpec(
        "Merge", "control", 1, None, 1, MergeSemantics,
        description="Merge outputs of conditionally executed branches",
        _extra={"engine_special": "merge"},
    )
)

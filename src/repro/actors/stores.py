"""Data-store actors — the model's global variables.

``DataStoreMemory`` declares a named store (it is structural: never
executed, carries no ports).  ``DataStoreRead``/``DataStoreWrite`` access
it by name.  The schedule adds read-before-write ordering edges per store,
so within one step every read observes the previous step's value — which is
what makes the CSEV case study's ``quantity`` accumulator (paper §4) build
up over a long simulation until its int32 wraps.
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import DType, checked_cast, coerce_float
from repro.model.errors import ValidationError


class DataStoreMemorySemantics(ActorSemantics):
    """Structural declaration of a store; never executed."""

    @classmethod
    def check_params(cls, actor, path):
        dtype_name = actor.params.get("dtype")
        if not dtype_name:
            raise ValidationError(f"{path}: DataStoreMemory requires a 'dtype' parameter")
        try:
            DType.parse(dtype_name)
        except ValueError as exc:
            raise ValidationError(f"{path}: {exc}") from None

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return ()

    def output(self, state, inputs) -> StepResult:  # pragma: no cover - guarded
        raise RuntimeError("DataStoreMemory is structural and never executes")


class DataStoreReadSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        store = actor.params["store"]
        if store not in store_dtypes:
            raise ValidationError(
                f"DataStoreRead {actor.name!r} references unknown store {store!r}"
            )
        return (store_dtypes[store],)

    def _bind(self):
        self._store = self.actor.params["store"]

    def output(self, state, inputs) -> StepResult:
        return StepResult((self.ctx.stores.read(self._store),))


class DataStoreWriteSemantics(ActorSemantics):
    """Writes during the output phase; the cast into the store's dtype is
    checked, so a wrapping write raises the overflow flag (CSEV error 2)."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return ()

    def _bind(self):
        self._store = self.actor.params["store"]
        self._store_dtype = self.ctx.stores.dtypes[self._store]

    def output(self, state, inputs) -> StepResult:
        dtype = self._store_dtype
        if dtype.is_float:
            self.ctx.stores.write(self._store, coerce_float(float(inputs[0]), dtype))
            return StepResult(())
        value, flags = checked_cast(inputs[0], self.ctx.in_dtypes[0], dtype)
        self.ctx.stores.write(self._store, value)
        return StepResult((), flags)


register(
    ActorSpec(
        "DataStoreMemory", "store", 0, 0, 0, DataStoreMemorySemantics,
        executable=False, required_params=("dtype",),
        description="Named global store declaration",
    )
)
register(
    ActorSpec(
        "DataStoreRead", "store", 0, 0, 1, DataStoreReadSemantics,
        required_params=("store",),
        description="Read a data store",
    )
)
register(
    ActorSpec(
        "DataStoreWrite", "store", 1, 1, 0, DataStoreWriteSemantics,
        required_params=("store",), is_calculation=True,
        description="Write a data store (checked cast into the store dtype)",
    )
)

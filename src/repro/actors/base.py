"""Execution interface shared by all actor semantics.

Semantics objects implement Simulink's two-phase step:

* ``output(state, inputs)`` — compute this step's outputs (and, for branch
  actors, which branch was taken; for calculation actors, any arithmetic
  flags raised on the way);
* ``update(state, inputs, outputs)`` — advance internal state after all
  outputs in the model have been computed.

The interpreted SSE engine calls these per actor per step; the code
generator never calls them, but its C templates are written against the
same contract and the cross-engine equivalence tests pin the two together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple, Optional

from repro.dtypes import DType, ArithFlags
from repro.dtypes.arith import OK
from repro.model.actor import Actor
from repro.model.errors import ValidationError


class StepResult(NamedTuple):
    """Result of one ``output`` phase."""

    outputs: tuple
    flags: ArithFlags = OK
    branch: Optional[int] = None  # taken-branch index, for branch actors


@dataclass
class StoreBank:
    """Runtime values of DataStoreMemory actors, shared across one run."""

    dtypes: dict[str, DType] = field(default_factory=dict)
    initials: dict[str, Any] = field(default_factory=dict)
    values: dict[str, Any] = field(default_factory=dict)

    def declare(self, name: str, dtype: DType, initial) -> None:
        if name in self.dtypes:
            raise ValidationError(f"data store {name!r} declared twice")
        self.dtypes[name] = dtype
        self.initials[name] = initial
        self.values[name] = initial

    def read(self, name: str):
        return self.values[name]

    def write(self, name: str, value) -> None:
        self.values[name] = value

    def reset(self) -> None:
        self.values = dict(self.initials)


@dataclass
class BindContext:
    """Everything a semantics instance needs beyond the actor itself."""

    in_dtypes: tuple[DType, ...]
    out_dtypes: tuple[DType, ...]
    stores: StoreBank
    dt: float = 1.0  # fixed step size (seconds of simulated time per step)


class ActorSemantics:
    """Base class for the reference semantics of one actor instance."""

    def __init__(self, actor: Actor, ctx: BindContext):
        self.actor = actor
        self.ctx = ctx
        self._bind()

    def _bind(self) -> None:
        """Hook for subclasses to precompute per-instance constants."""

    # ------------------------------------------------------------------
    # static hooks (used before instantiation)
    # ------------------------------------------------------------------
    @classmethod
    def check_params(cls, actor: Actor, path: str) -> None:
        """Validate type-specific parameters; raise ValidationError."""

    @classmethod
    def infer_out_dtypes(
        cls,
        actor: Actor,
        in_dtypes: tuple[DType, ...],
        store_dtypes: dict[str, DType],
    ) -> tuple[DType, ...]:
        """Default output dtypes when the model pins none.

        Only consulted for ports whose dtype is ``None``; pinned ports win.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # dynamic interface
    # ------------------------------------------------------------------
    def init_state(self):
        """Initial internal state (``None`` for stateless actors)."""
        return None

    def output(self, state, inputs: tuple) -> StepResult:
        raise NotImplementedError

    def update(self, state, inputs: tuple, outputs: tuple):
        """Advance state; default: stateless."""
        return state

    # ------------------------------------------------------------------
    # shared inference helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _promote_all(in_dtypes: tuple[DType, ...]) -> DType:
        from repro.dtypes import F64, promote

        if not in_dtypes:
            return F64
        result = in_dtypes[0]
        for dt in in_dtypes[1:]:
            result = promote(result, dt)
        return result

    @staticmethod
    def _float_like(in_dtypes: tuple[DType, ...]) -> DType:
        """F32 if every input is F32, else F64 (for transcendental ops)."""
        from repro.dtypes import F32, F64

        if in_dtypes and all(dt is F32 for dt in in_dtypes):
            return F32
        return F64

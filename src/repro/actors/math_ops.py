"""Arithmetic actor semantics.

Every recipe here is written to be mirrored *exactly* by a C template in
:mod:`repro.codegen.templates`: the same compute dtype, the same cast
points, the same guards.  The cross-engine equivalence tests enforce this.

Shared numeric conventions:

* Integer actors compute in their output dtype.  Inputs are first converted
  with :func:`checked_cast` (raising downcast/overflow flags) and the
  operation itself uses ``checked_*`` wrap arithmetic.
* Transcendental actors compute in IEEE double and coerce to the output
  dtype (single-precision outputs round through ``float``).
* Domain errors follow C's libm behaviour (``log(0) == -inf``,
  ``sqrt(-1) == nan``) rather than raising, and set the ``non_finite``
  flag.  Helper functions at the bottom implement those C-isms.
"""

from __future__ import annotations

import math

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import DType, checked_cast, coerce_float
from repro.dtypes.arith import (
    OK,
    ArithFlags,
    checked_add,
    checked_div,
    checked_mod,
    checked_mul,
    checked_neg,
    checked_sub,
    wrap,
)
from repro.model.errors import ValidationError

_NON_FINITE = ArithFlags(non_finite=True)


def _float_flags(value: float) -> ArithFlags:
    if math.isnan(value) or math.isinf(value):
        return _NON_FINITE
    return OK


def _check_int_param_fits(actor, path: str, key: str, value) -> None:
    """An integer parameter combined with an integer output dtype must fit
    that dtype (checked once the dtype is known, i.e. on the post-inference
    re-validation pass)."""
    dtype = actor.outputs[0].dtype if actor.outputs else None
    if dtype is None or not dtype.is_integer or not isinstance(value, int):
        return
    if not (dtype.min_value <= value <= dtype.max_value):
        raise ValidationError(
            f"{path}: integer {key} {value} does not fit output type "
            f"{dtype.short_name}"
        )


def int_param(value, dtype: DType) -> int:
    """Reduce a numeric parameter to an integer dtype the way C constant
    initialization would (floats truncate, out-of-range wraps)."""
    if isinstance(value, float):
        return checked_cast(value, DType.F64, dtype)[0]
    return wrap(int(value), dtype)


def cast_inputs(inputs, in_dtypes, target: DType):
    """Cast all inputs to the compute dtype, merging flags."""
    flags = OK
    out = []
    for value, src in zip(inputs, in_dtypes):
        converted, f = checked_cast(value, src, target)
        flags = flags.merge(f)
        out.append(converted)
    return out, flags


# ----------------------------------------------------------------------
# Sum / Product
# ----------------------------------------------------------------------
class SumSemantics(ActorSemantics):
    """N-ary add/subtract; operator is a sign string like ``"+-+"``."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes),)

    def _bind(self):
        self._signs = self.actor.operator
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        if dtype.is_float:
            # Compute in the output float type: operands cast first, every
            # intermediate rounded — exactly what the generated C does.
            # The first term is taken (or negated) directly rather than
            # added to 0.0: gcc folds `0.0 - x` to `-x` regardless of
            # signed zeros, so negation is the one stable convention.
            first = coerce_float(float(inputs[0]), dtype)
            acc = first if self._signs[0] == "+" else coerce_float(-first, dtype)
            for sign, value in zip(self._signs[1:], inputs[1:]):
                v = coerce_float(float(value), dtype)
                acc = coerce_float(acc + v if sign == "+" else acc - v, dtype)
            return StepResult((acc,), _float_flags(acc))
        values, flags = cast_inputs(inputs, self.ctx.in_dtypes, dtype)
        acc = 0
        for sign, value in zip(self._signs, values):
            op = checked_add if sign == "+" else checked_sub
            acc, f = op(acc, value, dtype)
            flags = flags.merge(f)
        return StepResult((acc,), flags)


class ProductSemantics(ActorSemantics):
    """N-ary multiply/divide; operator is an op string like ``"**/"``."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes),)

    def _bind(self):
        self._ops = self.actor.operator
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        if dtype.is_float:
            acc = 1.0
            flags = OK
            for op, value in zip(self._ops, inputs):
                v = coerce_float(float(value), dtype)
                if op == "*":
                    acc = coerce_float(acc * v, dtype)
                else:
                    acc, f = checked_div(acc, v, dtype)
                    flags = flags.merge(f)
            return StepResult((acc,), flags.merge(_float_flags(acc)))
        values, flags = cast_inputs(inputs, self.ctx.in_dtypes, dtype)
        acc = 1
        for op, value in zip(self._ops, values):
            fn = checked_mul if op == "*" else checked_div
            acc, f = fn(acc, value, dtype)
            flags = flags.merge(f)
        return StepResult((acc,), flags)


# ----------------------------------------------------------------------
# Gain / Bias
# ----------------------------------------------------------------------
class GainSemantics(ActorSemantics):
    """``y = k * u``; float gains on integer outputs compute in double."""

    @classmethod
    def check_params(cls, actor, path):
        gain = actor.params.get("gain")
        if not isinstance(gain, (int, float)) or isinstance(gain, bool):
            raise ValidationError(f"{path}: Gain parameter must be a number")
        _check_int_param_fits(actor, path, "gain", gain)

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        from repro.dtypes import F64

        if isinstance(actor.params["gain"], float):
            return (F64 if not in_dtypes[0].is_float else in_dtypes[0],)
        return (in_dtypes[0],)

    def _bind(self):
        # Fit of an integer gain into an integer output dtype is enforced
        # statically by check_params (re-run after type inference).
        self._gain = self.actor.params["gain"]
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        x = inputs[0]
        if dtype.is_float:
            x_c = coerce_float(float(x), dtype)
            k = coerce_float(float(self._gain), dtype)
            y = coerce_float(x_c * k, dtype)
            return StepResult((y,), _float_flags(y))
        if isinstance(self._gain, float):
            y, flags = checked_cast(float(x) * self._gain, DType.F64, dtype)
            return StepResult((y,), flags)
        x_c, flags = checked_cast(x, self.ctx.in_dtypes[0], dtype)
        y, f = checked_mul(x_c, self._gain, dtype)
        return StepResult((y,), flags.merge(f))


class BiasSemantics(ActorSemantics):
    """``y = u + b`` with the same typing rules as Gain."""

    @classmethod
    def check_params(cls, actor, path):
        bias = actor.params.get("bias")
        if not isinstance(bias, (int, float)) or isinstance(bias, bool):
            raise ValidationError(f"{path}: Bias parameter must be a number")
        _check_int_param_fits(actor, path, "bias", bias)

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        from repro.dtypes import F64

        if isinstance(actor.params["bias"], float):
            return (F64 if not in_dtypes[0].is_float else in_dtypes[0],)
        return (in_dtypes[0],)

    def _bind(self):
        # Fit enforced statically by check_params, like Gain.
        self._bias = self.actor.params["bias"]
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        x = inputs[0]
        if dtype.is_float:
            x_c = coerce_float(float(x), dtype)
            b = coerce_float(float(self._bias), dtype)
            y = coerce_float(x_c + b, dtype)
            return StepResult((y,), _float_flags(y))
        if isinstance(self._bias, float):
            y, flags = checked_cast(float(x) + self._bias, DType.F64, dtype)
            return StepResult((y,), flags)
        x_c, flags = checked_cast(x, self.ctx.in_dtypes[0], dtype)
        y, f = checked_add(x_c, self._bias, dtype)
        return StepResult((y,), flags.merge(f))


# ----------------------------------------------------------------------
# simple unary actors
# ----------------------------------------------------------------------
class AbsSemantics(ActorSemantics):
    """``y = |u|``; ``abs(INT_MIN)`` wraps and raises the overflow flag."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        x = inputs[0]
        if dtype.is_float:
            y = coerce_float(abs(x), dtype)
            return StepResult((y,), _float_flags(y))
        x_c, flags = checked_cast(x, self.ctx.in_dtypes[0], dtype)
        if x_c < 0:
            y, f = checked_neg(x_c, dtype)
            flags = flags.merge(f)
        else:
            y = x_c
        return StepResult((y,), flags)


class UnaryMinusSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        x = inputs[0]
        if dtype.is_float:
            y = coerce_float(-x, dtype)
            return StepResult((y,), _float_flags(y))
        x_c, flags = checked_cast(x, self.ctx.in_dtypes[0], dtype)
        y, f = checked_neg(x_c, dtype)
        return StepResult((y,), flags.merge(f))


class SignumSemantics(ActorSemantics):
    """``y = sign(u)`` in {-1, 0, 1}."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        x = inputs[0]
        s = (x > 0) - (x < 0)
        if dtype.is_float:
            return StepResult((coerce_float(float(s), dtype),))
        return StepResult((wrap(s, dtype),))


class SqrtSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: Sqrt output must be a float type")

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        y = coerce_float(c_sqrt(float(inputs[0])), dtype)
        return StepResult((y,), _float_flags(y))


# ----------------------------------------------------------------------
# Math (transcendental family)
# ----------------------------------------------------------------------
MATH_OPERATORS = (
    "exp",
    "log",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "sinh",
    "cosh",
    "tanh",
    "square",
    "reciprocal",
    "pow10",
)


class MathSemantics(ActorSemantics):
    """Unary transcendental maths, computed in double, C libm semantics."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: Math output must be a float type")

    def _bind(self):
        self._fn = _MATH_FNS[self.actor.operator]
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        y = coerce_float(self._fn(float(inputs[0])), self._dtype)
        flags = _float_flags(y)
        if self.actor.operator == "reciprocal" and inputs[0] == 0:
            flags = flags.merge(ArithFlags(div_by_zero=True))
        return StepResult((y,), flags)


# ----------------------------------------------------------------------
# MinMax / Mod / Rounding
# ----------------------------------------------------------------------
class MinMaxSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes),)

    def _bind(self):
        self._pick = min if self.actor.operator == "min" else max
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        if dtype.is_float:
            y = self._pick(coerce_float(float(v), dtype) for v in inputs)
            return StepResult((y,), _float_flags(y))
        values, flags = cast_inputs(inputs, self.ctx.in_dtypes, dtype)
        return StepResult((self._pick(values),), flags)


class ModSemantics(ActorSemantics):
    """C-style remainder (sign of the dividend)."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes),)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        if dtype.is_float:
            y, flags = checked_mod(float(inputs[0]), float(inputs[1]), dtype)
            return StepResult((y,), flags)
        values, flags = cast_inputs(inputs, self.ctx.in_dtypes, dtype)
        y, f = checked_mod(values[0], values[1], dtype)
        return StepResult((y,), flags.merge(f))


ROUNDING_OPERATORS = ("floor", "ceil", "round", "fix")


class RoundingSemantics(ActorSemantics):
    """floor/ceil/round-half-away/truncate on a float signal."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        self._fn = _ROUNDING_FNS[self.actor.operator]
        self._dtype = self.ctx.out_dtypes[0]

    def output(self, state, inputs) -> StepResult:
        y = coerce_float(self._fn(float(inputs[0])), self._dtype)
        return StepResult((y,), _float_flags(y))


# ----------------------------------------------------------------------
# range shaping
# ----------------------------------------------------------------------
class SaturationSemantics(ActorSemantics):
    """Clamp to [lower, upper]."""

    @classmethod
    def check_params(cls, actor, path):
        lower, upper = actor.params.get("lower"), actor.params.get("upper")
        if lower is None or upper is None:
            raise ValidationError(f"{path}: Saturation requires lower and upper")
        if lower > upper:
            raise ValidationError(f"{path}: Saturation lower {lower} > upper {upper}")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def _bind(self):
        dtype = self.ctx.out_dtypes[0]
        lower, upper = self.actor.params["lower"], self.actor.params["upper"]
        if dtype.is_float:
            self._lower = coerce_float(float(lower), dtype)
            self._upper = coerce_float(float(upper), dtype)
        else:
            self._lower = int_param(lower, dtype)
            self._upper = int_param(upper, dtype)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        x = inputs[0]
        if dtype.is_float:
            x = coerce_float(float(x), dtype)
            y = self._lower if x < self._lower else self._upper if x > self._upper else x
            return StepResult((y,), _float_flags(y))
        x_c, flags = checked_cast(x, self.ctx.in_dtypes[0], dtype)
        y = self._lower if x_c < self._lower else self._upper if x_c > self._upper else x_c
        return StepResult((y,), flags)


class DeadZoneSemantics(ActorSemantics):
    """Zero inside [start, end]; shifted through outside."""

    @classmethod
    def check_params(cls, actor, path):
        start, end = actor.params.get("start"), actor.params.get("end")
        if start is None or end is None:
            raise ValidationError(f"{path}: DeadZone requires start and end")
        if start > end:
            raise ValidationError(f"{path}: DeadZone start {start} > end {end}")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        dtype = self.ctx.out_dtypes[0]
        self._start = coerce_float(float(self.actor.params["start"]), dtype)
        self._end = coerce_float(float(self.actor.params["end"]), dtype)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        x = coerce_float(float(inputs[0]), dtype)
        if x < self._start:
            y = coerce_float(x - self._start, dtype)
        elif x > self._end:
            y = coerce_float(x - self._end, dtype)
        else:
            y = 0.0
        return StepResult((y,), _float_flags(y))


class QuantizerSemantics(ActorSemantics):
    """``y = q * round(u / q)`` with round-half-away-from-zero."""

    @classmethod
    def check_params(cls, actor, path):
        q = actor.params.get("interval")
        if not isinstance(q, (int, float)) or q <= 0:
            raise ValidationError(f"{path}: Quantizer interval must be positive")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        q = float(self.actor.params["interval"])
        y = coerce_float(q * c_round(float(inputs[0]) / q), dtype)
        return StepResult((y,), _float_flags(y))


# ----------------------------------------------------------------------
# polynomial / power
# ----------------------------------------------------------------------
class PolynomialSemantics(ActorSemantics):
    """Horner evaluation of ``coeffs`` (highest order first), in double."""

    @classmethod
    def check_params(cls, actor, path):
        coeffs = actor.params.get("coeffs")
        if not isinstance(coeffs, (list, tuple)) or not coeffs:
            raise ValidationError(f"{path}: Polynomial requires non-empty coeffs")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        self._coeffs = [float(c) for c in self.actor.params["coeffs"]]

    def output(self, state, inputs) -> StepResult:
        x = float(inputs[0])
        acc = 0.0
        for c in self._coeffs:
            acc = acc * x + c
        y = coerce_float(acc, self.ctx.out_dtypes[0])
        return StepResult((y,), _float_flags(y))


class PowerSemantics(ActorSemantics):
    """Binary ``pow(base, exponent)`` in double."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def output(self, state, inputs) -> StepResult:
        y = coerce_float(c_pow(float(inputs[0]), float(inputs[1])), self.ctx.out_dtypes[0])
        return StepResult((y,), _float_flags(y))


# ----------------------------------------------------------------------
# bit manipulation
# ----------------------------------------------------------------------
BITWISE_OPERATORS = ("AND", "OR", "XOR", "NOT")


class BitwiseSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        if actor.operator == "NOT" and actor.n_inputs != 1:
            raise ValidationError(f"{path}: Bitwise NOT takes exactly one input")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_integer:
            raise ValidationError(f"{path}: Bitwise output must be an integer type")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._promote_all(in_dtypes),)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        values, flags = cast_inputs(inputs, self.ctx.in_dtypes, dtype)
        op = self.actor.operator
        if op == "NOT":
            return StepResult((wrap(~values[0], dtype),), flags)
        acc = values[0]
        for v in values[1:]:
            if op == "AND":
                acc &= v
            elif op == "OR":
                acc |= v
            else:
                acc ^= v
        return StepResult((wrap(acc, dtype),), flags)


class ShiftSemantics(ActorSemantics):
    """Arithmetic shift by a constant amount.

    Left shift is defined as multiplication by ``2**amount`` with wrap (and
    the overflow flag); right shift is arithmetic (sign-propagating).
    """

    @classmethod
    def check_params(cls, actor, path):
        amount = actor.params.get("amount")
        if not isinstance(amount, int) or amount < 0 or amount > 63:
            raise ValidationError(f"{path}: Shift amount must be an int in 0..63")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_integer:
            raise ValidationError(f"{path}: Shift output must be an integer type")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        amount = self.actor.params["amount"]
        x, flags = checked_cast(inputs[0], self.ctx.in_dtypes[0], dtype)
        if self.actor.operator == "<<":
            y, f = checked_mul(x, 1 << amount, dtype)
            return StepResult((y,), flags.merge(f))
        return StepResult((wrap(x >> amount, dtype),), flags)


class DataTypeConversionSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        if actor.outputs[0].dtype is None:
            raise ValidationError(
                f"{path}: DataTypeConversion requires a pinned output dtype"
            )

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        raise ValidationError(
            f"DataTypeConversion {actor.name!r} must pin its output dtype"
        )

    def output(self, state, inputs) -> StepResult:
        y, flags = checked_cast(inputs[0], self.ctx.in_dtypes[0], self.ctx.out_dtypes[0])
        return StepResult((y,), flags)


# ----------------------------------------------------------------------
# C libm helpers (exact counterparts of the generated code)
# ----------------------------------------------------------------------
def c_sqrt(x: float) -> float:
    return math.sqrt(x) if x >= 0 else math.nan


def c_log(x: float) -> float:
    if x > 0:
        return math.log(x)
    return -math.inf if x == 0 else math.nan


def c_log10(x: float) -> float:
    if x > 0:
        return math.log10(x)
    return -math.inf if x == 0 else math.nan


def c_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def c_pow10(x: float) -> float:
    try:
        return math.pow(10.0, x)
    except OverflowError:
        return math.inf


def c_asin(x: float) -> float:
    return math.asin(x) if -1.0 <= x <= 1.0 else math.nan


def c_acos(x: float) -> float:
    return math.acos(x) if -1.0 <= x <= 1.0 else math.nan


def c_sinh(x: float) -> float:
    try:
        return math.sinh(x)
    except OverflowError:
        return math.copysign(math.inf, x)


def c_cosh(x: float) -> float:
    try:
        return math.cosh(x)
    except OverflowError:
        return math.inf


def c_reciprocal(x: float) -> float:
    if x == 0:
        return math.inf
    return 1.0 / x


def c_pow(x: float, y: float) -> float:
    if x == 0.0 and y < 0.0:
        # C99 pow(±0, negative) is ±inf; Python raises instead.  The
        # generated code carries the same special case.
        return math.inf
    try:
        result = math.pow(x, y)
    except OverflowError:
        return math.inf
    except ValueError:
        return math.nan
    return result


def c_floor(x: float) -> float:
    """C ``floor``: a zero result keeps the argument's sign (IEEE), which
    Python's int-returning ``math.floor`` drops — and checksums hash raw
    bits, so ``-0.0`` vs ``0.0`` is observable.  ``±inf``/``nan`` pass
    through like C's; ``math.floor`` would raise on them."""
    if not math.isfinite(x):
        return x
    y = float(math.floor(x))
    return math.copysign(y, x) if y == 0.0 else y


def c_ceil(x: float) -> float:
    """C ``ceil``: sign-preserving on zero results (``ceil(-0.5) == -0.0``),
    non-finite passthrough."""
    if not math.isfinite(x):
        return x
    y = float(math.ceil(x))
    return math.copysign(y, x) if y == 0.0 else y


def c_round(x: float) -> float:
    """Round half away from zero — matches the generated C expression
    ``x >= 0.0 ? floor(x + 0.5) : ceil(x - 0.5)`` including the sign of
    zero results (``c_round(-0.3) == -0.0``)."""
    return c_floor(x + 0.5) if x >= 0 else c_ceil(x - 0.5)


def c_fix(x: float) -> float:
    """C ``trunc``: sign-preserving on zero results (``trunc(-0.5) == -0.0``),
    non-finite passthrough."""
    if not math.isfinite(x):
        return x
    y = float(math.trunc(x))
    return math.copysign(y, x) if y == 0.0 else y


_MATH_FNS = {
    "exp": c_exp,
    "log": c_log,
    "log10": c_log10,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": c_asin,
    "acos": c_acos,
    "atan": math.atan,
    "sinh": c_sinh,
    "cosh": c_cosh,
    "tanh": math.tanh,
    "square": lambda x: x * x,
    "reciprocal": c_reciprocal,
    "pow10": c_pow10,
}

_ROUNDING_FNS = {
    "floor": c_floor,
    "ceil": c_ceil,
    "round": c_round,
    "fix": c_fix,
}


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
register(
    ActorSpec(
        "Sum", "math", 1, None, 1, SumSemantics,
        operators=("+-",), operator_is_free_form=True,
        is_calculation=True,
        description="N-ary addition/subtraction with a sign string operator",
    )
)
register(
    ActorSpec(
        "Product", "math", 1, None, 1, ProductSemantics,
        operators=("*/",), operator_is_free_form=True,
        is_calculation=True,
        description="N-ary multiplication/division with an op string operator",
    )
)
register(
    ActorSpec(
        "Gain", "math", 1, 1, 1, GainSemantics,
        required_params=("gain",), is_calculation=True,
        description="Multiply by a constant",
    )
)
register(
    ActorSpec(
        "Bias", "math", 1, 1, 1, BiasSemantics,
        required_params=("bias",), is_calculation=True,
        description="Add a constant",
    )
)
register(
    ActorSpec(
        "Abs", "math", 1, 1, 1, AbsSemantics, is_calculation=True,
        description="Absolute value",
    )
)
register(
    ActorSpec(
        "UnaryMinus", "math", 1, 1, 1, UnaryMinusSemantics, is_calculation=True,
        description="Negation",
    )
)
register(
    ActorSpec(
        "Signum", "math", 1, 1, 1, SignumSemantics,
        description="Sign function (-1, 0, 1)",
    )
)
register(
    ActorSpec(
        "Sqrt", "math", 1, 1, 1, SqrtSemantics, is_calculation=True,
        description="Square root (float)",
    )
)
register(
    ActorSpec(
        "Math", "math", 1, 1, 1, MathSemantics,
        operators=MATH_OPERATORS, is_calculation=True,
        description="Unary transcendental maths (exp, log, sin, ...)",
    )
)
register(
    ActorSpec(
        "MinMax", "math", 1, None, 1, MinMaxSemantics,
        operators=("min", "max"),
        description="N-ary minimum/maximum",
    )
)
register(
    ActorSpec(
        "Mod", "math", 2, 2, 1, ModSemantics, is_calculation=True,
        description="C-style remainder",
    )
)
register(
    ActorSpec(
        "Rounding", "math", 1, 1, 1, RoundingSemantics,
        operators=ROUNDING_OPERATORS,
        description="floor/ceil/round/fix on a float signal",
    )
)
register(
    ActorSpec(
        "Saturation", "math", 1, 1, 1, SaturationSemantics,
        required_params=("lower", "upper"),
        description="Clamp to [lower, upper]",
    )
)
register(
    ActorSpec(
        "DeadZone", "math", 1, 1, 1, DeadZoneSemantics,
        required_params=("start", "end"),
        description="Zero within a band, shifted through outside",
    )
)
register(
    ActorSpec(
        "Quantizer", "math", 1, 1, 1, QuantizerSemantics,
        required_params=("interval",),
        description="Quantize to multiples of an interval",
    )
)
register(
    ActorSpec(
        "Polynomial", "math", 1, 1, 1, PolynomialSemantics,
        required_params=("coeffs",), is_calculation=True,
        description="Polynomial evaluation, Horner form",
    )
)
register(
    ActorSpec(
        "Power", "math", 2, 2, 1, PowerSemantics, is_calculation=True,
        description="pow(base, exponent)",
    )
)
register(
    ActorSpec(
        "Bitwise", "math", 1, None, 1, BitwiseSemantics,
        operators=BITWISE_OPERATORS,
        description="Bitwise AND/OR/XOR/NOT on integers",
    )
)
register(
    ActorSpec(
        "Shift", "math", 1, 1, 1, ShiftSemantics,
        operators=("<<", ">>"), required_params=("amount",), is_calculation=True,
        description="Arithmetic shift by a constant",
    )
)
register(
    ActorSpec(
        "DataTypeConversion", "math", 1, 1, 1, DataTypeConversionSemantics,
        is_calculation=True,
        description="Checked conversion to the pinned output type",
    )
)

"""Sink and boundary actors.

``Outport`` actors at the model root are the simulation's observable
outputs; inside a subsystem they define its boundary.  ``Scope`` and
``Display`` exist so models can mark signals for monitoring (the signal
monitor instrumentation targets them by default); at execution time they
are no-ops.  ``EnablePort`` is the structural marker that makes its
enclosing subsystem conditionally executed.
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.model.errors import ValidationError


class OutportSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        if "port_index" not in actor.params:
            raise ValidationError(f"{path}: Outport requires a port_index parameter")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return ()

    def output(self, state, inputs) -> StepResult:
        return StepResult(())


class NoOpSinkSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return ()

    def output(self, state, inputs) -> StepResult:
        return StepResult(())


class EnablePortSemantics(ActorSemantics):
    """Structural marker; the flattener turns it into a guard condition."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return ()

    def output(self, state, inputs) -> StepResult:  # pragma: no cover - guarded
        raise RuntimeError("EnablePort is structural and never executes")


register(
    ActorSpec(
        "Outport", "sink", 1, 1, 0, OutportSemantics,
        required_params=("port_index",),
        description="Boundary output port",
    )
)
register(
    ActorSpec(
        "Terminator", "sink", 1, 1, 0, NoOpSinkSemantics,
        description="Discard a signal",
    )
)
register(
    ActorSpec(
        "Scope", "sink", 1, None, 0, NoOpSinkSemantics,
        description="Marks signals for monitoring",
    )
)
register(
    ActorSpec(
        "Display", "sink", 1, 1, 0, NoOpSinkSemantics,
        description="Marks a signal for display/monitoring",
    )
)
register(
    ActorSpec(
        "EnablePort", "sink", 0, 0, 0, EnablePortSemantics,
        executable=False,
        description="Makes the enclosing subsystem conditionally executed",
    )
)

"""Continuous-model support (the paper's §5 future work).

The paper names the Adams solver as the route to code-based simulation of
continuous models.  ``ContinuousIntegrator`` integrates its input signal
(the derivative) with an explicit fixed-step solver from the Adams-
Bashforth family:

* ``euler`` — AB1: ``y += dt * f_n``;
* ``ab2``  — ``y += dt * (3/2 f_n - 1/2 f_(n-1))``;
* ``ab3``  — ``y += dt * (23/12 f_n - 16/12 f_(n-1) + 5/12 f_(n-2))``.

Multistep explicit methods fit the synchronous dataflow execution model
perfectly: they only consume *past* derivative values, so no actor is
re-evaluated within a step (unlike Runge-Kutta stages).  Startup uses the
highest order the history allows (Euler, then AB2, then the full method).
A consequence of the self-starting scheme: the single Euler startup step
contributes an O(dt^2) global error term, so AB3's *observable* global
order on short runs is 2 (with a smaller constant than AB2); production
solvers avoid this with a Runge-Kutta starter, which an explicit dataflow
cannot express without re-evaluating upstream actors.

Like every stateful float actor, the update arithmetic follows the
coerce-per-operation discipline in a fixed order so the generated C
reproduces it bit for bit.
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import coerce_float
from repro.model.errors import ValidationError

SOLVERS = ("euler", "ab2", "ab3")

# Adams-Bashforth coefficient literals, spelled exactly as the generated C
# writes them (these doubles are what both engines multiply with).
AB2_C0 = 1.5
AB2_C1 = 0.5
AB3_C0 = 23.0 / 12.0
AB3_C1 = 16.0 / 12.0
AB3_C2 = 5.0 / 12.0


class ContinuousIntegratorSemantics(ActorSemantics):
    """Fixed-step Adams-Bashforth integration of the input derivative."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        solver = actor.params.get("solver", "ab2")
        if solver not in SOLVERS:
            raise ValidationError(
                f"{path}: ContinuousIntegrator solver must be one of {SOLVERS}"
            )
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(
                f"{path}: ContinuousIntegrator output must be float"
            )

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        self._solver = self.actor.params.get("solver", "ab2")
        self._dtype = self.ctx.out_dtypes[0]
        self._dt = coerce_float(self.ctx.dt, self._dtype)

    def init_state(self):
        initial = coerce_float(
            float(self.actor.params.get("initial", 0.0)), self._dtype
        )
        # (y, f_prev, f_prev2, steps_taken)
        return [initial, 0.0, 0.0, 0]

    def output(self, state, inputs) -> StepResult:
        return StepResult((state[0],))

    def update(self, state, inputs, outputs):
        dtype = self._dtype
        co = lambda v: coerce_float(v, dtype)  # noqa: E731
        y, f1, f2, n = state
        u = co(float(inputs[0]))
        order = {"euler": 1, "ab2": 2, "ab3": 3}[self._solver]
        effective = min(order, n + 1)
        if effective == 1:
            slope = u
        elif effective == 2:
            t1 = co(AB2_C0 * u)
            t2 = co(AB2_C1 * f1)
            slope = co(t1 - t2)
        else:
            t1 = co(AB3_C0 * u)
            t2 = co(AB3_C1 * f1)
            t3 = co(AB3_C2 * f2)
            slope = co(co(t1 - t2) + t3)
        y = co(y + co(self._dt * slope))
        return [y, u, f1, n + 1]


register(
    ActorSpec(
        "ContinuousIntegrator", "memory", 1, 1, 1,
        ContinuousIntegratorSemantics,
        stateful=True, direct_feedthrough=False, is_calculation=True,
        description="Fixed-step Adams-Bashforth continuous integrator "
                    "(euler/ab2/ab3)",
    )
)

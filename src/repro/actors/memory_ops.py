"""Stateful actors.

Simulink steps a model in two phases — all outputs, then all state
updates — and non-direct-feedthrough actors (UnitDelay, Delay, Memory,
DiscreteIntegrator) are what make feedback loops schedulable: their output
depends only on state, so the topological sort ignores their input edges.

State-storage casts (e.g. a UnitDelay whose pinned dtype is narrower than
its input) wrap silently at runtime; the *static* downcast diagnosis
(sizeof-style, Figure 4 of the paper) reports those configurations at
instrumentation time instead.
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import DType, checked_add, checked_cast, coerce_float
from repro.model.errors import ValidationError


def _store_cast(value, src: DType, dst: DType):
    """Unflagged storage cast used by state updates."""
    if dst.is_float:
        return coerce_float(float(value), dst)
    return checked_cast(value, src, dst)[0]


def _initial_value(raw, dtype: DType):
    if dtype.is_float:
        return coerce_float(float(raw), dtype)
    from repro.actors.math_ops import int_param

    return int_param(raw, dtype)


class UnitDelaySemantics(ActorSemantics):
    """One-step delay: output is last step's input (initially ``initial``)."""

    stateful = True

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def _bind(self):
        self._dtype = self.ctx.out_dtypes[0]

    def init_state(self):
        return _initial_value(self.actor.params.get("initial", 0), self._dtype)

    def output(self, state, inputs) -> StepResult:
        return StepResult((state,))

    def update(self, state, inputs, outputs):
        return _store_cast(inputs[0], self.ctx.in_dtypes[0], self._dtype)


class MemorySemantics(UnitDelaySemantics):
    """Simulink's Memory block: identical discrete behaviour to UnitDelay."""


class DelaySemantics(ActorSemantics):
    """N-step delay implemented as a shift register."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        length = actor.params.get("length")
        if not isinstance(length, int) or length < 1:
            raise ValidationError(f"{path}: Delay length must be a positive int")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def _bind(self):
        self._dtype = self.ctx.out_dtypes[0]
        self._length = self.actor.params["length"]

    def init_state(self):
        initial = _initial_value(self.actor.params.get("initial", 0), self._dtype)
        return [initial] * self._length

    def output(self, state, inputs) -> StepResult:
        return StepResult((state[0],))

    def update(self, state, inputs, outputs):
        state.pop(0)
        state.append(_store_cast(inputs[0], self.ctx.in_dtypes[0], self._dtype))
        return state


class AccumulatorSemantics(ActorSemantics):
    """Running sum with direct feedthrough: ``y = state + u; state = y``.

    This is the overflow generator of the paper's Figure 1 motivating
    model — a long simulation eventually wraps the accumulated value, and
    the checked add raises the wrap-on-overflow flag at exactly that step.
    """

    stateful = True

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def _bind(self):
        self._dtype = self.ctx.out_dtypes[0]

    def init_state(self):
        return _initial_value(self.actor.params.get("initial", 0), self._dtype)

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        if dtype.is_float:
            u = coerce_float(float(inputs[0]), dtype)
            y = coerce_float(state + u, dtype)
            return StepResult((y,))
        u, flags = checked_cast(inputs[0], self.ctx.in_dtypes[0], dtype)
        y, f = checked_add(state, u, dtype)
        return StepResult((y,), flags.merge(f))

    def update(self, state, inputs, outputs):
        return outputs[0]


class DiscreteIntegratorSemantics(ActorSemantics):
    """Forward-Euler integrator: ``y = state; state += K*dt*u``."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: DiscreteIntegrator output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        self._dtype = self.ctx.out_dtypes[0]
        gain = float(self.actor.params.get("gain", 1.0))
        self._k = coerce_float(gain * self.ctx.dt, self._dtype)

    def init_state(self):
        return _initial_value(self.actor.params.get("initial", 0.0), self._dtype)

    def output(self, state, inputs) -> StepResult:
        return StepResult((state,))

    def update(self, state, inputs, outputs):
        dtype = self._dtype
        u = coerce_float(float(inputs[0]), dtype)
        return coerce_float(state + coerce_float(self._k * u, dtype), dtype)


class DiscreteFilterSemantics(ActorSemantics):
    """First-order IIR: ``y = b0*u + a1*y_prev`` (direct feedthrough)."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        for key in ("b0", "a1"):
            if not isinstance(actor.params.get(key), (int, float)):
                raise ValidationError(f"{path}: DiscreteFilter requires numeric {key!r}")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: DiscreteFilter output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        dtype = self.ctx.out_dtypes[0]
        self._dtype = dtype
        self._b0 = coerce_float(float(self.actor.params["b0"]), dtype)
        self._a1 = coerce_float(float(self.actor.params["a1"]), dtype)

    def init_state(self):
        return _initial_value(self.actor.params.get("initial", 0.0), self._dtype)

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        u = coerce_float(float(inputs[0]), dtype)
        t1 = coerce_float(self._b0 * u, dtype)
        t2 = coerce_float(self._a1 * state, dtype)
        y = coerce_float(t1 + t2, dtype)
        return StepResult((y,))

    def update(self, state, inputs, outputs):
        return outputs[0]


class DiscreteDerivativeSemantics(ActorSemantics):
    """Backward difference: ``y = (u - u_prev) / dt``."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: DiscreteDerivative output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        self._dtype = self.ctx.out_dtypes[0]
        self._inv_dt = coerce_float(1.0 / self.ctx.dt, self._dtype)

    def init_state(self):
        return _initial_value(self.actor.params.get("initial", 0.0), self._dtype)

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        u = coerce_float(float(inputs[0]), dtype)
        y = coerce_float(coerce_float(u - state, dtype) * self._inv_dt, dtype)
        return StepResult((y,))

    def update(self, state, inputs, outputs):
        return coerce_float(float(inputs[0]), self._dtype)


class RateLimiterSemantics(ActorSemantics):
    """Clamp the per-step change of a signal to [-falling, +rising]."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        for key in ("rising", "falling"):
            value = actor.params.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValidationError(
                    f"{path}: RateLimiter requires non-negative numeric {key!r}"
                )
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: RateLimiter output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (cls._float_like(in_dtypes),)

    def _bind(self):
        dtype = self.ctx.out_dtypes[0]
        self._dtype = dtype
        self._rising = coerce_float(float(self.actor.params["rising"]), dtype)
        self._falling = coerce_float(float(self.actor.params["falling"]), dtype)

    def init_state(self):
        return _initial_value(self.actor.params.get("initial", 0.0), self._dtype)

    def output(self, state, inputs) -> StepResult:
        dtype = self._dtype
        u = coerce_float(float(inputs[0]), dtype)
        upper = coerce_float(state + self._rising, dtype)
        lower = coerce_float(state - self._falling, dtype)
        y = lower if u < lower else upper if u > upper else u
        return StepResult((y,))

    def update(self, state, inputs, outputs):
        return outputs[0]


class ZeroOrderHoldSemantics(ActorSemantics):
    """Identity at a single rate (a typed pass-through)."""

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (in_dtypes[0],)

    def output(self, state, inputs) -> StepResult:
        dtype = self.ctx.out_dtypes[0]
        if dtype.is_float:
            return StepResult((coerce_float(float(inputs[0]), dtype),))
        value, flags = checked_cast(inputs[0], self.ctx.in_dtypes[0], dtype)
        return StepResult((value,), flags)


register(
    ActorSpec(
        "UnitDelay", "memory", 1, 1, 1, UnitDelaySemantics,
        stateful=True, direct_feedthrough=False,
        description="One-step delay",
    )
)
register(
    ActorSpec(
        "Memory", "memory", 1, 1, 1, MemorySemantics,
        stateful=True, direct_feedthrough=False,
        description="Previous-step value (alias of UnitDelay at fixed rate)",
    )
)
register(
    ActorSpec(
        "Delay", "memory", 1, 1, 1, DelaySemantics,
        stateful=True, direct_feedthrough=False, required_params=("length",),
        description="N-step delay (shift register)",
    )
)
register(
    ActorSpec(
        "Accumulator", "memory", 1, 1, 1, AccumulatorSemantics,
        stateful=True, is_calculation=True,
        description="Running sum with direct feedthrough",
    )
)
register(
    ActorSpec(
        "DiscreteIntegrator", "memory", 1, 1, 1, DiscreteIntegratorSemantics,
        stateful=True, direct_feedthrough=False, is_calculation=True,
        description="Forward-Euler discrete-time integrator",
    )
)
register(
    ActorSpec(
        "DiscreteFilter", "memory", 1, 1, 1, DiscreteFilterSemantics,
        stateful=True, required_params=("b0", "a1"), is_calculation=True,
        description="First-order IIR filter",
    )
)
register(
    ActorSpec(
        "DiscreteDerivative", "memory", 1, 1, 1, DiscreteDerivativeSemantics,
        stateful=True, is_calculation=True,
        description="Backward-difference derivative",
    )
)
register(
    ActorSpec(
        "RateLimiter", "memory", 1, 1, 1, RateLimiterSemantics,
        stateful=True, required_params=("rising", "falling"),
        description="Per-step slew-rate limiter",
    )
)
register(
    ActorSpec(
        "ZeroOrderHold", "memory", 1, 1, 1, ZeroOrderHoldSemantics,
        description="Typed pass-through",
    )
)

"""The actor-type registry.

An :class:`ActorSpec` captures everything the preprocessing, coverage, and
instrumentation steps need to know about a block type *statically*:
input/output arity, the operator alphabet, whether the actor is a branch
actor (condition coverage), contains boolean logic (decision coverage), or
is a combination condition (MC/DC) — the exact predicates Algorithm 1 of
the paper dispatches on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Type

from repro.model.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.actors.base import ActorSemantics
    from repro.model.actor import Actor


@dataclass(frozen=True)
class ActorSpec:
    """Static description of one block type."""

    block_type: str
    category: str
    min_inputs: int
    max_inputs: Optional[int]  # None = unbounded
    n_outputs: int
    semantics: "Type[ActorSemantics]"
    operators: Optional[tuple[str, ...]] = None
    operator_is_free_form: bool = False  # e.g. Sum's "+-+" sign strings
    required_params: tuple[str, ...] = ()
    stateful: bool = False
    direct_feedthrough: bool = True
    executable: bool = True  # False for structural markers (DataStoreMemory, EnablePort)
    is_branch: bool = False
    boolean_logic: bool = False
    combination_condition: bool = False
    is_calculation: bool = False  # subject to calculation diagnosis
    description: str = ""
    _extra: dict = field(default_factory=dict, compare=False)

    def check_actor(self, actor: "Actor", path: str) -> None:
        """Validate an actor instance against this spec."""
        if actor.n_inputs < self.min_inputs or (
            self.max_inputs is not None and actor.n_inputs > self.max_inputs
        ):
            upper = "inf" if self.max_inputs is None else str(self.max_inputs)
            raise ValidationError(
                f"{path}: {self.block_type} takes {self.min_inputs}..{upper} "
                f"inputs, got {actor.n_inputs}"
            )
        if actor.n_outputs != self.n_outputs:
            raise ValidationError(
                f"{path}: {self.block_type} has {self.n_outputs} output(s), "
                f"got {actor.n_outputs}"
            )
        self._check_operator(actor, path)
        # Boolean-typed arithmetic is meaningless (and Simulink rejects it);
        # only DataTypeConversion may produce bool in the math category.
        if (
            self.category == "math"
            and self.block_type != "DataTypeConversion"
            and actor.outputs
            and actor.outputs[0].dtype is not None
            and actor.outputs[0].dtype.is_bool
        ):
            raise ValidationError(
                f"{path}: {self.block_type} cannot have a bool output dtype"
            )
        for param in self.required_params:
            if param not in actor.params:
                raise ValidationError(
                    f"{path}: {self.block_type} requires parameter {param!r}"
                )
        self.semantics.check_params(actor, path)

    def _check_operator(self, actor: "Actor", path: str) -> None:
        if self.operators is None and not self.operator_is_free_form:
            if actor.operator is not None:
                raise ValidationError(
                    f"{path}: {self.block_type} takes no operator, "
                    f"got {actor.operator!r}"
                )
            return
        if actor.operator is None:
            raise ValidationError(f"{path}: {self.block_type} requires an operator")
        if self.operator_is_free_form:
            alphabet = set("".join(self.operators or ("+-",)))
            if not actor.operator or not set(actor.operator) <= alphabet:
                raise ValidationError(
                    f"{path}: {self.block_type} operator {actor.operator!r} must "
                    f"use only {''.join(sorted(alphabet))!r}"
                )
            if len(actor.operator) != actor.n_inputs:
                raise ValidationError(
                    f"{path}: {self.block_type} operator {actor.operator!r} length "
                    f"must equal input count {actor.n_inputs}"
                )
        elif actor.operator not in self.operators:
            raise ValidationError(
                f"{path}: {self.block_type} operator {actor.operator!r} not in "
                f"{sorted(self.operators)}"
            )


_REGISTRY: dict[str, ActorSpec] = {}


def register(spec: ActorSpec) -> ActorSpec:
    """Add a spec to the global registry (module import time)."""
    if spec.block_type in _REGISTRY:
        raise ValueError(f"block type {spec.block_type!r} registered twice")
    _REGISTRY[spec.block_type] = spec
    return spec


def is_known_type(block_type: str) -> bool:
    return block_type in _REGISTRY


def get_spec(block_type: str) -> ActorSpec:
    try:
        return _REGISTRY[block_type]
    except KeyError:
        raise KeyError(f"unknown block type {block_type!r}") from None


def get_semantics_class(block_type: str) -> "Type[ActorSemantics]":
    return get_spec(block_type).semantics


def all_specs() -> dict[str, ActorSpec]:
    """A copy of the registry, keyed by block type."""
    return dict(_REGISTRY)

"""Boolean-valued actors: relational comparisons and combinational logic.

These are the decision points of a model: decision coverage records both
outcomes of each such actor, and Logic actors with two or more inputs are
the *combination conditions* MC/DC instrumentation targets (Algorithm 1,
lines 7-10 of the paper).

Comparison semantics: floats compare in double; integers compare exactly
(Python arbitrary precision here, ``__int128`` in the generated C), so
mixed-signedness comparisons never wrap.
"""

from __future__ import annotations

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import BOOL
from repro.model.errors import ValidationError

RELATIONAL_OPERATORS = ("==", "!=", "<", "<=", ">", ">=")
LOGIC_OPERATORS = ("AND", "OR", "NAND", "NOR", "XOR", "NOT")


def compare(op: str, a, b) -> bool:
    """Exact comparison, independent of operand dtypes."""
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def evaluate_logic(op: str, truths: tuple[bool, ...]) -> bool:
    """Truth-functional evaluation of an N-ary Logic actor."""
    if op == "NOT":
        return not truths[0]
    if op == "AND":
        return all(truths)
    if op == "OR":
        return any(truths)
    if op == "NAND":
        return not all(truths)
    if op == "NOR":
        return not any(truths)
    # XOR: odd number of true inputs (n-ary generalization).
    return (sum(truths) % 2) == 1


class RelationalOperatorSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (BOOL,)

    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and dt is not BOOL:
            raise ValidationError(f"{path}: RelationalOperator output must be bool")

    def output(self, state, inputs) -> StepResult:
        result = compare(self.actor.operator, inputs[0], inputs[1])
        return StepResult((1 if result else 0,))


class LogicSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (BOOL,)

    @classmethod
    def check_params(cls, actor, path):
        if actor.operator == "NOT" and actor.n_inputs != 1:
            raise ValidationError(f"{path}: Logic NOT takes exactly one input")
        dt = actor.outputs[0].dtype
        if dt is not None and dt is not BOOL:
            raise ValidationError(f"{path}: Logic output must be bool")

    def output(self, state, inputs) -> StepResult:
        truths = tuple(v != 0 for v in inputs)
        result = evaluate_logic(self.actor.operator, truths)
        return StepResult((1 if result else 0,))


class CompareToConstantSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        constant = actor.params.get("constant")
        if not isinstance(constant, (int, float)) or isinstance(constant, bool):
            raise ValidationError(f"{path}: CompareToConstant requires numeric 'constant'")
        dt = actor.outputs[0].dtype
        if dt is not None and dt is not BOOL:
            raise ValidationError(f"{path}: CompareToConstant output must be bool")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (BOOL,)

    def output(self, state, inputs) -> StepResult:
        result = compare(self.actor.operator, inputs[0], self.actor.params["constant"])
        return StepResult((1 if result else 0,))


class CompareToZeroSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and dt is not BOOL:
            raise ValidationError(f"{path}: CompareToZero output must be bool")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (BOOL,)

    def output(self, state, inputs) -> StepResult:
        result = compare(self.actor.operator, inputs[0], 0)
        return StepResult((1 if result else 0,))


register(
    ActorSpec(
        "RelationalOperator", "logic", 2, 2, 1, RelationalOperatorSemantics,
        operators=RELATIONAL_OPERATORS, boolean_logic=True,
        description="Binary comparison producing a boolean",
    )
)
register(
    ActorSpec(
        "Logic", "logic", 1, None, 1, LogicSemantics,
        operators=LOGIC_OPERATORS, boolean_logic=True, combination_condition=True,
        description="N-ary combinational logic (AND/OR/NAND/NOR/XOR/NOT)",
    )
)
register(
    ActorSpec(
        "CompareToConstant", "logic", 1, 1, 1, CompareToConstantSemantics,
        operators=RELATIONAL_OPERATORS, required_params=("constant",),
        boolean_logic=True,
        description="Compare the input against a constant",
    )
)
register(
    ActorSpec(
        "CompareToZero", "logic", 1, 1, 1, CompareToZeroSemantics,
        operators=RELATIONAL_OPERATORS, boolean_logic=True,
        description="Compare the input against zero",
    )
)

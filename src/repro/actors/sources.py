"""Source actors.

``Inport`` values come from the test-case stream (the engines write them
directly), every other source synthesizes its value from internal state.
Counter-driven sources (Clock, SineWave, Ramp...) deliberately keep their
own step counter rather than reading the global loop variable: inside an
enabled subsystem a source only advances on steps where its guard is
active, and the generated C keeps a per-actor counter for the same reason.

``RandomSource`` uses a 64-bit LCG (Knuth's MMIX constants) evaluated
identically in Python and in the generated C, so stimuli embedded in a
model are bit-reproducible across engines.
"""

from __future__ import annotations

import math

from repro.actors.base import ActorSemantics, StepResult
from repro.actors.registry import ActorSpec, register
from repro.dtypes import F64, I32, coerce_float, wrap
from repro.model.errors import ValidationError

LCG_MUL = 6364136223846793005
LCG_INC = 1442695040888963407
_DOUBLE_SCALE = 1.0 / 9007199254740992.0  # 2**-53


def lcg_next(state: int) -> int:
    """One step of the shared 64-bit LCG (uint64 wrap)."""
    return (state * LCG_MUL + LCG_INC) & 0xFFFFFFFFFFFFFFFF


def lcg_uniform(state: int) -> float:
    """Map an LCG state to a double in [0, 1) using its top 53 bits."""
    return (state >> 11) * _DOUBLE_SCALE


class InportSemantics(ActorSemantics):
    """External input; the engines write its signal from the test case."""

    @classmethod
    def check_params(cls, actor, path):
        # Root-level inports must pin a dtype; subsystem inports inherit
        # theirs from the parent wire.  Scope is unknown here, so the
        # root-pinning rule is enforced during type inference instead.
        if "port_index" not in actor.params:
            raise ValidationError(f"{path}: Inport requires a port_index parameter")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64,)

    def output(self, state, inputs) -> StepResult:  # pragma: no cover - guarded
        raise RuntimeError("Inport values are supplied by the engine")


class ConstantSemantics(ActorSemantics):
    @classmethod
    def check_params(cls, actor, path):
        value = actor.params.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"{path}: Constant requires a numeric 'value'")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64 if isinstance(actor.params["value"], float) else I32,)

    def _bind(self):
        from repro.actors.math_ops import int_param

        dtype = self.ctx.out_dtypes[0]
        raw = self.actor.params["value"]
        if dtype.is_float:
            self._value = coerce_float(float(raw), dtype)
        else:
            self._value = int_param(raw, dtype)

    def output(self, state, inputs) -> StepResult:
        return StepResult((self._value,))


class GroundSemantics(ActorSemantics):
    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64,)

    def _bind(self):
        self._value = 0.0 if self.ctx.out_dtypes[0].is_float else 0

    def output(self, state, inputs) -> StepResult:
        return StepResult((self._value,))


class _CounterBasedSource(ActorSemantics):
    """Base for sources driven by a private step counter."""

    stateful = True

    def init_state(self):
        return 0

    def update(self, state, inputs, outputs):
        return state + 1


class ClockSemantics(_CounterBasedSource):
    """Simulated time: ``y = n * dt`` (double)."""

    @classmethod
    def check_params(cls, actor, path):
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: Clock output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64,)

    def output(self, state, inputs) -> StepResult:
        y = coerce_float(float(state) * self.ctx.dt, self.ctx.out_dtypes[0])
        return StepResult((y,))


class CounterSemantics(ActorSemantics):
    """Free-running modulo counter: 0, 1, ..., limit-1, 0, ..."""

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        limit = actor.params.get("limit")
        if not isinstance(limit, int) or limit < 1:
            raise ValidationError(f"{path}: Counter limit must be a positive int")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_integer:
            raise ValidationError(f"{path}: Counter output must be an integer type")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (I32,)

    def _bind(self):
        self._limit = self.actor.params["limit"]
        self._dtype = self.ctx.out_dtypes[0]

    def init_state(self):
        return 0

    def output(self, state, inputs) -> StepResult:
        return StepResult((wrap(state, self._dtype),))

    def update(self, state, inputs, outputs):
        return (state + 1) % self._limit


class SineWaveSemantics(_CounterBasedSource):
    """``y = amplitude * sin(w*n + phase) + bias`` with ``w = 2*pi*f*dt``."""

    @classmethod
    def check_params(cls, actor, path):
        freq = actor.params.get("frequency")
        if not isinstance(freq, (int, float)) or freq <= 0:
            raise ValidationError(f"{path}: SineWave requires positive 'frequency'")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: SineWave output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64,)

    def _bind(self):
        p = self.actor.params
        self._w = 2.0 * math.pi * float(p["frequency"]) * self.ctx.dt
        self._amplitude = float(p.get("amplitude", 1.0))
        self._phase = float(p.get("phase", 0.0))
        self._bias = float(p.get("bias", 0.0))

    def output(self, state, inputs) -> StepResult:
        y = self._amplitude * math.sin(self._w * float(state) + self._phase) + self._bias
        y = coerce_float(y, self.ctx.out_dtypes[0])
        return StepResult((y,))


class RampSourceSemantics(_CounterBasedSource):
    """``y = start + slope*dt*n`` (double)."""

    @classmethod
    def check_params(cls, actor, path):
        if not isinstance(actor.params.get("slope"), (int, float)):
            raise ValidationError(f"{path}: RampSource requires numeric 'slope'")
        dt = actor.outputs[0].dtype
        if dt is not None and not dt.is_float:
            raise ValidationError(f"{path}: RampSource output must be float")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64,)

    def _bind(self):
        self._k = float(self.actor.params["slope"]) * self.ctx.dt
        self._start = float(self.actor.params.get("start", 0.0))

    def output(self, state, inputs) -> StepResult:
        y = coerce_float(self._start + self._k * float(state), self.ctx.out_dtypes[0])
        return StepResult((y,))


class StepSourceSemantics(_CounterBasedSource):
    """``y = before`` until step ``at``, then ``after``."""

    @classmethod
    def check_params(cls, actor, path):
        at = actor.params.get("at")
        if not isinstance(at, int) or at < 0:
            raise ValidationError(f"{path}: StepSource requires non-negative int 'at'")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        before = actor.params.get("before", 0.0)
        after = actor.params.get("after", 1.0)
        floaty = isinstance(before, float) or isinstance(after, float)
        return (F64 if floaty else I32,)

    def _bind(self):
        from repro.actors.math_ops import int_param

        dtype = self.ctx.out_dtypes[0]
        before = self.actor.params.get("before", 0.0)
        after = self.actor.params.get("after", 1.0)
        if dtype.is_float:
            self._before = coerce_float(float(before), dtype)
            self._after = coerce_float(float(after), dtype)
        else:
            self._before = int_param(before, dtype)
            self._after = int_param(after, dtype)
        self._at = self.actor.params["at"]

    def output(self, state, inputs) -> StepResult:
        return StepResult((self._before if state < self._at else self._after,))


class PulseGeneratorSemantics(_CounterBasedSource):
    """``y = amplitude`` while ``n % period < duty``, else 0."""

    @classmethod
    def check_params(cls, actor, path):
        period = actor.params.get("period")
        duty = actor.params.get("duty")
        if not isinstance(period, int) or period < 1:
            raise ValidationError(f"{path}: PulseGenerator 'period' must be a positive int")
        if not isinstance(duty, int) or not (0 <= duty <= period):
            raise ValidationError(f"{path}: PulseGenerator 'duty' must be in 0..period")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64 if isinstance(actor.params.get("amplitude", 1.0), float) else I32,)

    def _bind(self):
        from repro.actors.math_ops import int_param

        dtype = self.ctx.out_dtypes[0]
        amplitude = self.actor.params.get("amplitude", 1.0)
        if dtype.is_float:
            self._high = coerce_float(float(amplitude), dtype)
            self._low = 0.0
        else:
            self._high = int_param(amplitude, dtype)
            self._low = 0
        self._period = self.actor.params["period"]
        self._duty = self.actor.params["duty"]

    def output(self, state, inputs) -> StepResult:
        high = (state % self._period) < self._duty
        return StepResult((self._high if high else self._low,))


class RandomSourceSemantics(ActorSemantics):
    """Pseudo-random source, bit-identical across Python and generated C.

    ``dist='uniform'`` yields doubles in [lo, hi); ``dist='int'`` yields
    integers in [lo, hi] via the LCG's top 31 bits.
    """

    stateful = True

    @classmethod
    def check_params(cls, actor, path):
        dist = actor.params.get("dist", "uniform")
        if dist not in ("uniform", "int"):
            raise ValidationError(f"{path}: RandomSource dist must be 'uniform' or 'int'")
        lo, hi = actor.params.get("lo", 0), actor.params.get("hi", 1)
        if lo >= hi and dist == "uniform":
            raise ValidationError(f"{path}: RandomSource needs lo < hi")
        if dist == "int":
            if not isinstance(lo, int) or not isinstance(hi, int) or lo > hi:
                raise ValidationError(f"{path}: RandomSource int bounds need int lo <= hi")
        if not isinstance(actor.params.get("seed", 1), int):
            raise ValidationError(f"{path}: RandomSource seed must be an int")

    @classmethod
    def infer_out_dtypes(cls, actor, in_dtypes, store_dtypes):
        return (F64 if actor.params.get("dist", "uniform") == "uniform" else I32,)

    def _bind(self):
        p = self.actor.params
        self._dist = p.get("dist", "uniform")
        self._lo = p.get("lo", 0)
        self._hi = p.get("hi", 1)
        self._seed = p.get("seed", 1)
        self._dtype = self.ctx.out_dtypes[0]
        if self._dist == "int":
            self._span = self._hi - self._lo + 1

    def init_state(self):
        # Scramble the seed once so seed=0 does not start at the increment.
        return lcg_next(self._seed & 0xFFFFFFFFFFFFFFFF)

    def output(self, state, inputs) -> StepResult:
        if self._dist == "uniform":
            u = lcg_uniform(state)
            y = coerce_float(self._lo + u * (self._hi - self._lo), self._dtype)
            return StepResult((y,))
        r = self._lo + ((state >> 33) % self._span)
        return StepResult((wrap(r, self._dtype),))

    def update(self, state, inputs, outputs):
        return lcg_next(state)


register(
    ActorSpec(
        "Inport", "source", 0, 0, 1, InportSemantics,
        required_params=("port_index",),
        description="External input port (fed by test cases)",
    )
)
register(
    ActorSpec(
        "Constant", "source", 0, 0, 1, ConstantSemantics,
        required_params=("value",),
        description="Constant value",
    )
)
register(
    ActorSpec(
        "Ground", "source", 0, 0, 1, GroundSemantics,
        description="Constant zero",
    )
)
register(
    ActorSpec(
        "Clock", "source", 0, 0, 1, ClockSemantics, stateful=True,
        description="Simulated time (n*dt)",
    )
)
register(
    ActorSpec(
        "Counter", "source", 0, 0, 1, CounterSemantics,
        stateful=True, required_params=("limit",),
        description="Free-running modulo counter",
    )
)
register(
    ActorSpec(
        "SineWave", "source", 0, 0, 1, SineWaveSemantics,
        stateful=True, required_params=("frequency",),
        description="Sine wave generator",
    )
)
register(
    ActorSpec(
        "RampSource", "source", 0, 0, 1, RampSourceSemantics,
        stateful=True, required_params=("slope",),
        description="Linear ramp",
    )
)
register(
    ActorSpec(
        "StepSource", "source", 0, 0, 1, StepSourceSemantics,
        stateful=True, required_params=("at",),
        description="Step change at a fixed step index",
    )
)
register(
    ActorSpec(
        "PulseGenerator", "source", 0, 0, 1, PulseGeneratorSemantics,
        stateful=True, required_params=("period", "duty"),
        description="Rectangular pulse train",
    )
)
register(
    ActorSpec(
        "RandomSource", "source", 0, 0, 1, RandomSourceSemantics,
        stateful=True,
        description="LCG pseudo-random source (cross-engine reproducible)",
    )
)

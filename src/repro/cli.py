"""Command-line front end.

::

    accmos info model.xml                 # Table-1-style model statistics
    accmos simulate model.xml [options]   # run any engine on a model file
    accmos coverage model.xml [options]   # detailed coverage listing
    accmos campaign model.xml [options]   # seed-sweep test campaign
    accmos codegen model.xml -o sim.c     # emit the instrumented C source
    accmos compare model.xml [options]    # run several engines, check agreement
    accmos convert model.xml -o m.json    # native XML <-> generic JSON IR
    accmos trace model.xml -o t.json      # traced run -> Chrome trace + tree
    accmos metrics [show|clear]           # inspect the last traced run
    accmos bench-table1                   # print the benchmark inventory
    accmos cache stats|clear              # compiled-artifact cache admin
    accmos fuzz [--guided]                # differential fuzzing campaign
    accmos corpus stats|replay DIR        # guided-fuzz corpus admin
    accmos demo                           # Figure-1 motivating demo

Benchmark models can be addressed as ``bench:NAME`` (e.g. ``bench:CSEV``)
anywhere a model file is expected.  ``simulate`` and ``campaign`` accept
``--trace FILE`` to record a Chrome ``trace_event`` timeline of the run
(open in chrome://tracing or Perfetto); traced runs also persist a
metrics snapshot that ``accmos metrics`` reads back.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.benchmarks import TABLE1, build_benchmark
from repro.benchmarks.motivating import build_motivating_model, motivating_stimuli
from repro.diagnosis.events import DiagnosticKind
from repro.engines import ENGINES, SimulationOptions, simulate
from repro.model.model import Model
from repro.schedule import preprocess
from repro.slx import load_model
from repro.stimuli import default_stimuli, load_csv


def _load(spec: str) -> Model:
    if spec.startswith("bench:"):
        return build_benchmark(spec[len("bench:"):])
    if spec.endswith(".json"):
        from repro.slx import load_generic

        return load_generic(spec)
    return load_model(spec)


def _stimuli_for(args, prog):
    if getattr(args, "stimuli", None):
        return load_csv(args.stimuli).to_stimuli()
    return default_stimuli(prog, seed=getattr(args, "seed", 1))


def _options_from(args) -> SimulationOptions:
    halt_on = None
    if getattr(args, "halt_on", None):
        halt_on = frozenset(DiagnosticKind(k) for k in args.halt_on)
    return SimulationOptions(
        steps=args.steps,
        coverage=not getattr(args, "no_coverage", False),
        diagnostics=not getattr(args, "no_diagnostics", False),
        halt_on=halt_on,
        time_budget=getattr(args, "time_budget", None),
    )


@contextmanager
def _traced(args):
    """Enable telemetry around a command when --trace/--profile ask for it.

    On exit the Chrome trace is written, the metrics snapshot persisted
    for a later ``accmos metrics``, and (with --profile) the SSE
    hot-actor table printed.  Notes go to stderr so ``--json`` stdout
    stays machine-readable.
    """
    trace_file = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    if not trace_file and not profile:
        yield None
        return
    from repro import telemetry

    session = telemetry.enable(profile_sse=profile)
    try:
        yield session
    finally:
        telemetry.disable()
        if trace_file:
            n = telemetry.write_chrome_trace(
                session.tracer.finished(), trace_file
            )
            print(f"trace: {n} span(s) -> {trace_file}", file=sys.stderr)
        saved = telemetry.save_metrics(session.snapshot())
        if saved is not None:
            print(f"metrics snapshot -> {saved}", file=sys.stderr)
        if profile and session.profiler is not None:
            print(session.profiler.render(), file=sys.stderr)


def _print_result(result, as_json: bool) -> None:
    if as_json:
        payload = {
            "engine": result.engine,
            "model": result.model_name,
            "steps_run": result.steps_run,
            "wall_time": result.wall_time,
            "outputs": {k: repr(v) for k, v in result.outputs.items()},
            "checksums": {k: f"{v:#x}" for k, v in result.checksums.items()},
            "halted_at": result.halted_at,
            "diagnostics": [str(e) for e in result.diagnostics],
        }
        if result.coverage:
            payload["coverage"] = {
                m.value: round(result.coverage.percent(m), 2)
                for m in result.coverage.metrics
            }
        print(json.dumps(payload, indent=2))
        return
    print(result.summary())
    for name, value in result.outputs.items():
        print(f"  output {name} = {value!r}")
    if result.halted_at is not None:
        print(f"  halted at step {result.halted_at}")
    for event in result.diagnostics:
        print(f"  {event}")


def cmd_info(args) -> int:
    model = _load(args.model)
    prog = preprocess(model)
    print(f"Model       : {model.name}")
    if model.description:
        print(f"Description : {model.description}")
    print(f"#Actor      : {model.n_actors}")
    print(f"#SubSystem  : {model.n_subsystems}")
    print(f"Flat actors : {len(prog.actors)} (executable)")
    print(f"Signals     : {len(prog.signals)}")
    print(f"Guards      : {len(prog.guards)} (enabled subsystems)")
    print(f"Data stores : {len(prog.stores)}")
    print(f"Inports     : {', '.join(b.name for b in prog.inports) or '-'}")
    print(f"Outports    : {', '.join(b.name for b in prog.outports) or '-'}")
    histogram = model.block_type_histogram()
    top = sorted(histogram.items(), key=lambda kv: -kv[1])[:12]
    print("Top block types:")
    for block_type, count in top:
        print(f"  {block_type:24s} {count}")
    return 0


def cmd_simulate(args) -> int:
    with _traced(args):
        model = _load(args.model)
        prog = preprocess(model, dt=args.dt)
        result = simulate(
            prog,
            _stimuli_for(args, prog),
            engine=args.engine,
            options=_options_from(args),
        )
    _print_result(result, args.json)
    return 0


def cmd_codegen(args) -> int:
    from repro.codegen import generate_c_program
    from repro.instrument import build_plan

    model = _load(args.model)
    prog = preprocess(model, dt=args.dt)
    plan = build_plan(prog)
    stimuli = _stimuli_for(args, prog)
    source, _ = generate_c_program(prog, plan, stimuli, _options_from(args))
    if args.output == "-":
        sys.stdout.write(source)
    else:
        with open(args.output, "w") as fh:
            fh.write(source)
        print(f"wrote {source.count(chr(10)) + 1} lines to {args.output}")
    return 0


def cmd_compare(args) -> int:
    model = _load(args.model)
    prog = preprocess(model, dt=args.dt)
    options = _options_from(args)
    reference = None
    agree = True
    for engine in args.engines:
        result = simulate(prog, _stimuli_for(args, prog), engine=engine, options=options)
        line = f"{engine:8s} {result.wall_time:10.4f}s  steps={result.steps_run}"
        if reference is None:
            reference = result
        else:
            same = result.checksums == reference.checksums
            agree &= same
            line += "  " + ("outputs agree" if same else "OUTPUTS DIFFER")
        print(line)
    if not agree:
        print("engines disagree", file=sys.stderr)
        return 1
    return 0


def _print_timings(cases) -> None:
    """Per-phase wall-time breakdown, one row per campaign case."""
    from repro.runner.jobs import PHASES

    phases = [p for p in PHASES if any(p in c.timings for c in cases)]
    print("per-phase timings (seconds):")
    print(f"{'case':>5s} {'seed':>6s}"
          + "".join(f" {p:>10s}" for p in phases)
          + f" {'total':>10s} {'cache':>6s}")
    for i, case in enumerate(cases):
        row = f"{i + 1:5d} {case.seed:6d}"
        for p in phases:
            row += f" {case.timings.get(p, 0.0):10.4f}"
        row += f" {sum(case.timings.values()):10.4f}"
        row += f" {'hit' if case.cache_hit else '-':>6s}"
        print(row)


def _parse_threads(value) -> "int | None":
    """``--threads auto`` (the default) -> None, else an int."""
    if value is None or value == "auto":
        return None
    try:
        return int(value)
    except ValueError:
        raise SystemExit(
            f"--threads must be an integer or 'auto', not {value!r}"
        )


def cmd_campaign(args) -> int:
    """Run a seed-sweep test campaign and print the adequacy verdict."""
    from repro.campaign import run_campaign
    from repro.coverage import coverage_listing

    with _traced(args):
        model = _load(args.model)
        prog = preprocess(model, dt=args.dt)
        outcome = run_campaign(
            prog,
            engine=args.engine,
            steps=args.steps,
            max_cases=args.cases,
            plateau_patience=args.patience,
            base_seed=args.seed,
            workers=args.workers,
            mode=args.mode,
            timeout_seconds=args.timeout,
            batch_size=args.batch_size,
            serve=args.serve,
            inproc=args.inproc,
            threads=_parse_threads(args.threads),
            window=args.window,
            adaptive=args.adaptive,
            scheduler=args.scheduler,
        )
    if args.json:
        # The canonical service encoding: this exact byte string is what
        # the campaign service streams as its terminal outcome record,
        # so `repro campaign --json` is the CLI side of the service's
        # byte-identity contract.
        from repro.service.codec import encode, outcome_record

        print(encode(outcome_record(outcome)))
        return 0
    print(outcome.summary())
    print(f"{'case':>5s} {'seed':>6s} {'steps':>12s} {'new points':>11s} "
          f"{'new diags':>10s}")
    for i, case in enumerate(outcome.cases):
        print(f"{i + 1:5d} {case.seed:6d} {case.steps_run:12,d} "
              f"{case.new_points:11d} {case.n_diagnostics:10d}")
    for event, seed in outcome.diagnostics:
        print(f"  (seed {seed}) {event}")
    if args.timings:
        _print_timings(outcome.cases)
        if outcome.server_stats is not None:
            s = outcome.server_stats
            retired = (s.get("retired_idle", 0) + s.get("retired_lru", 0)
                       + s.get("retired_error", 0))
            print(f"warm servers: {s.get('spawns', 0)} spawn(s), "
                  f"{s.get('reuses', 0)} reuse(s), "
                  f"{s.get('restarts', 0)} restart(s), "
                  f"{retired} retired")
        if outcome.scheduler_stats is not None:
            st = outcome.scheduler_stats
            print(f"scheduler: stream ({st.get('mode', '?')}), "
                  f"window {st.get('initial_window', 0)}"
                  f"->{st.get('window', 0)}, "
                  f"batch {st.get('initial_batch', 0)}"
                  f"->{st.get('batch_size', 0)}, "
                  f"{st.get('chunks', 0)} chunk(s)")
            print(f"  utilization {st.get('utilization', 0.0):.0%}, "
                  f"max in-flight {st.get('max_in_flight', 0)}, "
                  f"max reorder depth {st.get('max_reorder_depth', 0)}, "
                  f"{st.get('throughput', 0.0):.1f} cases/s")
        if outcome.speculated_cases:
            print(f"speculated cases discarded at saturation: "
                  f"{outcome.speculated_cases}")
    if args.uncovered:
        print(coverage_listing(prog, outcome.merged, max_items=args.uncovered))
    return 0


def cmd_serve_api(args) -> int:
    """Run the asyncio campaign service until interrupted."""
    from repro.service import serve_api

    serve_api(
        host=args.host,
        port=args.port,
        tenant_quota=args.tenant_quota,
        max_concurrent=args.max_concurrent,
    )
    return 0


def cmd_coverage(args) -> int:
    """Simulate and print the detailed coverage listing."""
    from repro.coverage import coverage_listing

    model = _load(args.model)
    prog = preprocess(model, dt=args.dt)
    result = simulate(
        prog,
        _stimuli_for(args, prog),
        engine=args.engine,
        options=_options_from(args),
    )
    if result.coverage is None:
        print(f"engine {args.engine!r} collects no coverage", file=sys.stderr)
        return 1
    print(f"{result.steps_run:,} steps in {result.wall_time:.3f}s "
          f"({args.engine})")
    print(coverage_listing(prog, result.coverage, max_items=args.max_items))
    return 0


def cmd_convert(args) -> int:
    """Convert between the native XML format and the generic JSON IR."""
    from repro.slx import load_generic, save_generic, save_model

    source = args.model
    if source.startswith("bench:"):
        model = _load(source)
    elif source.endswith(".json"):
        model = load_generic(source)
    else:
        model = load_model(source)
    if args.output.endswith(".json"):
        save_generic(model, args.output)
    else:
        save_model(model, args.output)
    print(f"converted {source} -> {args.output} "
          f"({model.n_actors} actors, {model.n_subsystems} subsystems)")
    return 0


def cmd_bench_table1(args) -> int:
    print(f"{'Model':6s} {'Functionality':42s} {'#Actor':>7s} {'#SubSystem':>11s}")
    for name, (desc, n_actors, n_subsystems) in TABLE1.items():
        print(f"{name:6s} {desc:42s} {n_actors:7d} {n_subsystems:11d}")
    if args.verify:
        for name in TABLE1:
            model = build_benchmark(name)
            expected = TABLE1[name]
            status = (
                "ok"
                if (model.n_actors, model.n_subsystems) == expected[1:]
                else "MISMATCH"
            )
            print(f"  built {name}: {model.n_actors}/{model.n_subsystems} {status}")
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the compiled-artifact cache."""
    from repro.runner.cache import ArtifactCache, default_cache, default_cache_dir

    if args.dir:
        cache = ArtifactCache(args.dir)
    else:
        cache = default_cache()
        if cache is None:
            print(f"cache disabled (would live at {default_cache_dir()})",
                  file=sys.stderr)
            return 1
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached artifact(s) from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {stats.entries}")
    print(f"bytes     : {stats.bytes:,}")
    print(f"max bytes : {cache.max_bytes:,}")
    print(f"this run  : {stats.hits} hit(s), {stats.misses} miss(es), "
          f"{stats.evictions} eviction(s)")
    return 0


def cmd_trace(args) -> int:
    """One traced simulation: Chrome trace file + span tree on stdout."""
    from repro import telemetry

    session = telemetry.enable(profile_sse=args.profile)
    try:
        model = _load(args.model)
        prog = preprocess(model, dt=args.dt)
        result = simulate(
            prog,
            _stimuli_for(args, prog),
            engine=args.engine,
            options=_options_from(args),
        )
    finally:
        telemetry.disable()
    spans = session.tracer.finished()
    n = telemetry.write_chrome_trace(spans, args.output)
    telemetry.save_metrics(session.snapshot())
    print(f"{result.steps_run:,} steps in {result.wall_time:.3f}s "
          f"({args.engine}); {n} span(s) -> {args.output}")
    print(telemetry.render_tree(spans))
    if args.profile and session.profiler is not None:
        print(session.profiler.render())
    return 0


def cmd_metrics(args) -> int:
    """Show or clear the metrics snapshot of the last traced run."""
    from repro import telemetry

    path = Path(args.file) if args.file else telemetry.default_metrics_path()
    if args.action == "clear":
        try:
            path.unlink()
            print(f"removed {path}")
        except FileNotFoundError:
            print(f"nothing to clear at {path}")
        return 0
    snapshot = telemetry.load_metrics(path)
    if snapshot is None:
        print(f"no metrics snapshot at {path} "
              f"(run simulate/campaign with --trace first)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"metrics from {path}")
    print(telemetry.metrics_to_text(snapshot))
    profile = snapshot.get("profile_sse")
    if profile:
        print(telemetry.render_profile_snapshot(profile))
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing campaign across all engine rungs."""
    from repro.fuzz import ALL_RUNGS, FuzzConfig, run_fuzz

    rungs = None
    if args.rungs:
        rungs = [r.strip() for r in args.rungs.split(",") if r.strip()]
        unknown = [r for r in rungs if r not in ALL_RUNGS]
        if unknown:
            print(f"unknown rung(s): {unknown}; pick from {list(ALL_RUNGS)}",
                  file=sys.stderr)
            return 2
    if args.guided:
        return _run_guided_fuzz(args, rungs)
    config = FuzzConfig(
        cases=args.cases,
        seed=args.seed,
        steps=args.steps,
        max_actors=args.max_actors,
        rungs=rungs,
        time_budget=args.time_budget,
        shrink=not args.no_shrink,
        corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
        timeout_seconds=args.timeout,
    )
    # Progress goes to stderr so --json output stays parseable.
    say = (lambda msg: print(msg, file=sys.stderr)) if args.json else print
    with _traced(args):
        outcome = run_fuzz(config, progress=say)
    if args.json:
        print(json.dumps({
            "rungs": list(outcome.rungs),
            "cases_run": outcome.cases_run,
            "divergent": outcome.divergent,
            "elapsed": outcome.elapsed,
            "budget_exhausted": outcome.budget_exhausted,
            "duplicates": outcome.duplicates,
            "findings": [
                {
                    "seed": f.seed,
                    "shrink": f.shrink_summary,
                    "corpus": str(f.corpus_path) if f.corpus_path else None,
                    "divergences": [
                        d.to_dict() for d in f.final_report.divergences
                    ],
                }
                for f in outcome.findings
            ],
        }, indent=2))
    else:
        print(outcome.summary())
        for finding in outcome.findings:
            shrunk = finding.final_report.case
            print(f"  seed {finding.seed}: {shrunk.n_actors} actor(s), "
                  f"{shrunk.steps} step(s)"
                  + (f"  [{finding.shrink_summary}]"
                     if finding.shrink_summary else ""))
            for d in finding.final_report.divergences[:4]:
                print(f"    {d.rung} {d.kind}: {d.detail[:140]}")
    return 1 if outcome.findings else 0


def _run_guided_fuzz(args, rungs) -> int:
    """The --guided branch of ``fuzz``: coverage-guided corpus campaign."""
    from repro.guided import GuidedConfig, run_guided

    config = GuidedConfig(
        cases=args.cases,
        seed=args.seed,
        steps=args.steps,
        max_actors=args.max_actors,
        rungs=rungs,
        round_size=args.round_size,
        saturation_rounds=args.saturation,
        time_budget=args.time_budget,
        shrink=not args.no_shrink,
        corpus_dir=Path(args.corpus) if args.corpus else None,
        findings_dir=Path(args.corpus_dir) if args.corpus_dir else None,
        timeout_seconds=args.timeout,
    )
    say = (lambda msg: print(msg, file=sys.stderr)) if args.json else print
    with _traced(args):
        outcome = run_guided(config, progress=say)
    if args.json:
        print(json.dumps({
            "rungs": list(outcome.rungs),
            "rounds": outcome.rounds,
            "cases_run": outcome.cases_run,
            "invalid_mutants": outcome.invalid_mutants,
            "novel_points": outcome.novel_points,
            "coverage_points": outcome.coverage_points,
            "coverage_keys": outcome.coverage_keys,
            "corpus_size": outcome.corpus_size,
            "saturated": outcome.saturated,
            "budget_exhausted": outcome.budget_exhausted,
            "elapsed": outcome.elapsed,
            "divergent": outcome.divergent,
            "duplicates": outcome.duplicates,
            "findings": [
                {
                    "seed": f.seed,
                    "shrink": f.shrink_summary,
                    "corpus": str(f.corpus_path) if f.corpus_path else None,
                    "divergences": [
                        d.to_dict() for d in f.final_report.divergences
                    ],
                }
                for f in outcome.findings
            ],
        }, indent=2))
    else:
        print(outcome.summary())
        for finding in outcome.findings:
            shrunk = finding.final_report.case
            print(f"  seed {finding.seed}: {shrunk.n_actors} actor(s), "
                  f"{shrunk.steps} step(s)"
                  + (f"  [{finding.shrink_summary}]"
                     if finding.shrink_summary else ""))
            for d in finding.final_report.divergences[:4]:
                print(f"    {d.rung} {d.kind}: {d.detail[:140]}")
    return 1 if outcome.findings else 0


def cmd_corpus(args) -> int:
    """Inspect or replay a guided-fuzz seed corpus."""
    from repro.guided import SeedCorpus, replay_corpus

    corpus_dir = Path(args.dir)
    if args.action == "stats":
        try:
            corpus = SeedCorpus.load(corpus_dir)
        except FileNotFoundError:
            print(f"no corpus manifest in {corpus_dir}", file=sys.stderr)
            return 1
        stats = corpus.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"corpus    : {corpus_dir}")
        print(f"seeds     : {stats['seeds']}")
        print(f"structures: {stats['coverage_keys']}")
        print(f"points    : {stats['coverage_points']}/"
              f"{stats['points_possible']}")
        for metric, counts in stats["by_metric"].items():
            print(f"  {metric:10s} {counts['covered']}/{counts['possible']}")
        if stats["top"]:
            print("top seeds (by scheduler score):")
            print(f"{'sig':>14s} {'actors':>7s} {'novel':>6s} "
                  f"{'child':>6s} {'fuzzed':>7s}")
            for row in stats["top"]:
                print(f"{row['sig']:>14s} {row['actors']:7d} "
                      f"{row['novel_points']:6d} "
                      f"{row['child_novel_points']:6d} "
                      f"{row['times_fuzzed']:7d}")
        return 0

    # replay
    try:
        report = replay_corpus(corpus_dir, timeout_seconds=args.timeout)
    except FileNotFoundError:
        print(f"no corpus manifest in {corpus_dir}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "seeds": report.seeds,
            "replayed": report.replayed,
            "matched": report.matched,
            "points_expected": report.points_expected,
            "points_rebuilt": report.points_rebuilt,
            "errors": report.errors,
        }, indent=2))
    else:
        print(report.summary())
        for err in report.errors[:10]:
            print(f"  {err}")
    return 0 if report.matched else 1


def cmd_demo(args) -> int:
    model = build_motivating_model()
    prog = preprocess(model)
    options = SimulationOptions(
        steps=args.steps,
        halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW}),
    )
    print("Figure-1 motivating model: accumulate-and-sum, int32 overflow.")
    for engine in ("sse", "accmos"):
        result = simulate(prog, motivating_stimuli(), engine=engine, options=options)
        where = (
            f"overflow detected at step {result.halted_at}"
            if result.halted_at is not None
            else "no overflow within the step budget"
        )
        print(f"  {engine:8s} {result.wall_time:8.3f}s  {where}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="accmos",
        description="AccMoS reproduction: simulate dataflow models via code generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, steps_default=10_000):
        p.add_argument("model", help="model XML file, or bench:NAME")
        p.add_argument("--steps", type=int, default=steps_default)
        p.add_argument("--dt", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=1, help="stimuli seed")
        p.add_argument("--stimuli", help="CSV test-case file")
        p.add_argument("--time-budget", type=float, default=None)
        p.add_argument("--no-coverage", action="store_true")
        p.add_argument("--no-diagnostics", action="store_true")
        p.add_argument(
            "--halt-on", nargs="*", metavar="KIND",
            choices=[k.value for k in DiagnosticKind],
            help="stop at the first diagnostic of these kinds",
        )

    p = sub.add_parser("info", help="model statistics")
    p.add_argument("model")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("simulate", help="run one engine")
    common(p)
    p.add_argument("--engine", choices=sorted(ENGINES), default="accmos")
    p.add_argument("--json", action="store_true")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome trace_event timeline to FILE")
    p.add_argument("--profile", action="store_true",
                   help="sample SSE step time per actor type (hot-actor table)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("codegen", help="emit the instrumented C source")
    common(p)
    p.add_argument("-o", "--output", default="-")
    p.set_defaults(fn=cmd_codegen)

    p = sub.add_parser("compare", help="run several engines and check agreement")
    common(p, steps_default=5_000)
    p.add_argument(
        "--engines", nargs="+", choices=sorted(ENGINES),
        default=["sse", "accmos"],
    )
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("campaign", help="seed-sweep test campaign")
    p.add_argument("model", help="model XML/JSON file, or bench:NAME")
    p.add_argument("--steps", type=int, default=50_000)
    p.add_argument("--dt", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1, help="base seed")
    p.add_argument("--cases", type=int, default=16)
    p.add_argument("--patience", type=int, default=3,
                   help="stop after this many cases without new coverage")
    p.add_argument("--engine", choices=["sse", "accmos"], default="accmos")
    p.add_argument("--uncovered", type=int, default=0, metavar="N",
                   help="also list up to N uncovered points")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel cases per wave (merge stays in seed order)")
    p.add_argument("--mode", choices=["thread", "process"], default="thread",
                   help="worker pool flavour for --workers > 1")
    p.add_argument("--batch-size", type=int, default=None, metavar="M",
                   help="cases run back-to-back per process on one reused "
                        "binary (1 disables batching; default auto-sizes "
                        "and lets --adaptive tune it)")
    p.add_argument("--window", type=int, default=None, metavar="N",
                   help="max cases in flight for the streaming scheduler "
                        "(default workers * batch; --adaptive tunes it)")
    p.add_argument("--adaptive", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="auto-tune batch size and window from observed "
                        "throughput and worker utilization (explicitly "
                        "passed values are never touched)")
    p.add_argument("--scheduler", choices=["stream", "wave"],
                   default="stream",
                   help="dispatch discipline: work-conserving streaming "
                        "(default) or the legacy barrier wave loop")
    p.add_argument("--serve", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="stream batched cases through warm --serve "
                        "processes reused across waves (--no-serve spawns "
                        "one process per batch instead)")
    p.add_argument("--inproc", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="run batched cases in-process through the compiled "
                        "shared library (zero spawns; falls back to --serve "
                        "on any library trouble)")
    p.add_argument("--threads", default="auto", metavar="N",
                   help="thread-parallel in-process execution: N private "
                        "library instances run N C loops in this process, "
                        "zero spawns ('auto' picks the core count, capped "
                        "at 4, when shared objects are supported; 1 "
                        "disables)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-case wall-clock limit for the compiled binary")
    p.add_argument("--timings", action="store_true",
                   help="print the per-phase wall-time breakdown per case")
    p.add_argument("--json", action="store_true",
                   help="print the canonical outcome record (the exact "
                        "encoding the campaign service streams) instead "
                        "of the summary tables")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome trace_event timeline to FILE")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser(
        "serve-api",
        help="run the asyncio HTTP + WebSocket campaign service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = auto-assign; the bound port is "
                        "printed as 'listening on HOST:PORT')")
    p.add_argument("--tenant-quota", type=int, default=1, metavar="N",
                   help="max concurrently running campaigns per tenant")
    p.add_argument("--max-concurrent", type=int, default=2, metavar="N",
                   help="max concurrently running campaigns overall")
    p.set_defaults(fn=cmd_serve_api)

    p = sub.add_parser("coverage", help="detailed coverage listing")
    common(p, steps_default=100_000)
    p.add_argument("--engine", choices=["sse", "accmos"], default="accmos")
    p.add_argument("--max-items", type=int, default=40,
                   help="cap on uncovered points shown")
    p.set_defaults(fn=cmd_coverage)

    p = sub.add_parser(
        "convert", help="convert between model XML and the generic JSON IR"
    )
    p.add_argument("model", help="model XML/JSON file, or bench:NAME")
    p.add_argument("-o", "--output", required=True,
                   help="target path (.xml or .json picks the format)")
    p.set_defaults(fn=cmd_convert)

    p = sub.add_parser(
        "trace", help="run one traced simulation, write the Chrome trace"
    )
    common(p)
    p.add_argument("--engine", choices=sorted(ENGINES), default="accmos")
    p.add_argument("-o", "--output", required=True,
                   help="Chrome trace_event JSON target path")
    p.add_argument("--profile", action="store_true",
                   help="sample SSE step time per actor type (hot-actor table)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "metrics", help="show or clear the last traced run's metrics"
    )
    p.add_argument("action", nargs="?", choices=["show", "clear"],
                   default="show")
    p.add_argument("--file", default=None,
                   help="snapshot path (default: $ACCMOS_METRICS_FILE or "
                        "~/.cache/accmos/metrics.json)")
    p.add_argument("--json", action="store_true",
                   help="dump the raw snapshot instead of the summary")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("bench-table1", help="print the benchmark inventory")
    p.add_argument("--verify", action="store_true", help="also build each model")
    p.set_defaults(fn=cmd_bench_table1)

    p = sub.add_parser("cache", help="compiled-artifact cache admin")
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--dir", default=None,
                   help="cache directory (default: the process-wide cache)")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "fuzz", help="differential fuzzing campaign with automatic shrinking"
    )
    p.add_argument("--cases", type=int, default=100,
                   help="number of random cases to generate")
    p.add_argument("--seed", type=int, default=0, help="campaign base seed")
    p.add_argument("--steps", type=int, default=None,
                   help="fixed step count per case (default: random 8..48)")
    p.add_argument("--max-actors", type=int, default=14,
                   help="upper bound on generated actors per case")
    p.add_argument("--rungs", default=None, metavar="R1,R2",
                   help="comma-separated rung list (default: all available)")
    p.add_argument("--time-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="stop generating new cases after this much wall time")
    p.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                   help="per-case wall-clock limit for compiled binaries")
    p.add_argument("--no-shrink", action="store_true",
                   help="report divergences without minimizing them")
    p.add_argument("--corpus-dir", default=None, metavar="DIR",
                   help="write shrunk reproducers here (e.g. tests/corpus)")
    p.add_argument("--guided", action="store_true",
                   help="coverage-guided campaign: keep and mutate cases "
                        "that reach novel coverage (see also --corpus)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="guided seed corpus directory (loaded if present, "
                        "persisted on exit; replayable via `corpus replay`)")
    p.add_argument("--round-size", type=int, default=25, metavar="N",
                   help="guided: oracle evaluations per round")
    p.add_argument("--saturation", type=int, default=3, metavar="K",
                   help="guided: stop after K consecutive rounds without "
                        "novel coverage")
    p.add_argument("--json", action="store_true")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome trace_event timeline to FILE")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "corpus", help="inspect or replay a guided-fuzz seed corpus"
    )
    p.add_argument("action", choices=["stats", "replay"])
    p.add_argument("dir", help="corpus directory (from fuzz --guided --corpus)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                   help="per-seed wall-clock limit during replay")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_corpus)

    p = sub.add_parser("demo", help="Figure-1 motivating demo")
    p.add_argument("--steps", type=int, default=200_000)
    p.set_defaults(fn=cmd_demo)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

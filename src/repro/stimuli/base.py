"""The stimulus interface.

A stimulus is a resettable stream: engines call :meth:`reset` once, then
:meth:`next` once per step.  For code generation it contributes two C
fragments: global declarations (state variables, data tables) and the
per-step statement storing this step's value into a target variable.

C float literals are emitted as hex floats (``float.hex()``), which round
trip exactly, so the generated stream matches the Python stream bit for
bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.dtypes import DType, coerce_float, wrap

# Runtime-descriptor kind tags, shared with the generated C interpreter
# (codegen.runtime.stimulus_runtime) and the encoder (codegen.descriptor).
STIM_KIND_CONSTANT = 0
STIM_KIND_SEQUENCE = 1
STIM_KIND_RAMP = 2
STIM_KIND_SINE = 3
STIM_KIND_STEP = 4
STIM_KIND_PULSE = 5
STIM_KIND_UNIFORM = 6
STIM_KIND_INT_RANDOM = 7

#: The descriptor record's scalar slots, in wire order — the single
#: source of truth shared by the text encoder (codegen.descriptor), the
#: packed binary encoder (inproc.abi), and both generated C readers
#: (codegen.runtime derives its scanf and memcpy sequences from this
#: tuple).  Each entry is ``(descriptor attribute, C struct member,
#: slot kind)`` with kind ``"i"`` = int64, ``"u"`` = uint64, ``"f"`` =
#: double.  The variable-length table (length + values) follows these
#: slots and is handled structurally by every encoder/reader.
DESCRIPTOR_FIELDS = (
    ("kind", "kind", "i"),
    ("i0", "i0", "i"),
    ("i1", "i1", "i"),
    ("u0", "u0", "u"),
    ("state", "state", "u"),
    ("iv0", "iv0", "i"),
    ("iv1", "iv1", "i"),
    ("f0", "f0", "f"),
    ("f1", "f1", "f"),
    ("f2", "f2", "f"),
    ("f3", "f3", "f"),
    ("fv0", "fv0", "f"),
    ("fv1", "fv1", "f"),
    ("table_is_float", "tab_is_float", "i"),
)


def c_double_literal(value: float) -> str:
    """An exact C literal for a Python float.

    Non-finite values use the ``<math.h>`` macros: expressions like
    ``(0.0/0.0)`` are constant-folded by the compiler and may come out
    with a different NaN bit pattern (x86 folds it to *negative* quiet
    NaN) than the positive quiet NaN Python produces — and checksums
    hash raw IEEE bits, so the sign of NaN is observable.
    """
    if value != value:  # NaN
        return "NAN"
    if value == float("inf"):
        return "INFINITY"
    if value == float("-inf"):
        return "(-INFINITY)"
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return value.hex()


def c_int_literal(value: int, dtype: DType) -> str:
    """A C literal of ``value`` with the right suffix for ``dtype``."""
    if dtype.is_signed and value == dtype.min_value and dtype.bits == 64:
        # INT64_MIN cannot be written directly.
        return "(-9223372036854775807LL - 1)"
    return f"{value}{dtype.c_literal_suffix}"


@dataclass(frozen=True)
class StimulusDescriptor:
    """A stimulus as runtime data for the stimulus-agnostic binary.

    One fixed-width record per inport: a kind tag plus a small bag of
    typed parameter slots the generated C interpreter reads from stdin.
    Integer and float value slots exist side by side (``iv*`` / ``fv*``)
    because the baked-in emitters pick an int or a double literal based
    on the *port's* dtype — the generated per-port switch is specialized
    on that dtype at codegen time and selects the matching slot, so the
    runtime stream is bit-identical to the compiled-in one.
    """

    kind: int
    i0: int = 0  # integer params (step at, pulse period, int-random lo)
    i1: int = 0  # pulse duty
    u0: int = 0  # int-random span (uint64)
    state: int = 0  # LCG state (uint64)
    iv0: int = 0  # int value slots (constant / before / high)
    iv1: int = 0  # after / low
    f0: float = 0.0  # float params (ramp start, sine amp, uniform lo)
    f1: float = 0.0  # ramp slope, sine w, uniform hi
    f2: float = 0.0  # sine phase
    f3: float = 0.0  # sine bias
    fv0: float = 0.0  # float value slots (constant / before / high)
    fv1: float = 0.0  # after / low
    table_is_float: bool = False
    table: tuple = field(default_factory=tuple)  # sequence data


class Stimulus(ABC):
    """One input port's value stream."""

    @abstractmethod
    def reset(self) -> None:
        """Rewind to step 0."""

    @abstractmethod
    def next(self):
        """The value for the current step; advances the stream."""

    @abstractmethod
    def c_decls(self, prefix: str) -> str:
        """Global C declarations (state vars, tables); '' if none."""

    @abstractmethod
    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        """C statement(s) assigning this step's value to ``target``.

        May reference the loop variable ``step`` (an ``int64_t``).
        """

    def runtime_descriptor(self) -> Optional[StimulusDescriptor]:
        """This stream as runtime data, or None when it cannot be
        expressed (custom subclasses) — such stimuli fall back to the
        legacy baked-in codegen path."""
        return None

    def conform(self, value, dtype: DType):
        """Fit a raw stimulus value to a port dtype (wrap/coerce, no flags) —
        the same implicit conversion a C assignment performs."""
        if dtype.is_float:
            return coerce_float(float(value), dtype)
        if isinstance(value, float):
            return wrap(int(value), dtype)
        return wrap(int(value), dtype)

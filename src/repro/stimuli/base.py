"""The stimulus interface.

A stimulus is a resettable stream: engines call :meth:`reset` once, then
:meth:`next` once per step.  For code generation it contributes two C
fragments: global declarations (state variables, data tables) and the
per-step statement storing this step's value into a target variable.

C float literals are emitted as hex floats (``float.hex()``), which round
trip exactly, so the generated stream matches the Python stream bit for
bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.dtypes import DType, coerce_float, wrap


def c_double_literal(value: float) -> str:
    """An exact C literal for a Python float."""
    if value != value:  # NaN
        return "(0.0/0.0)"
    if value == float("inf"):
        return "(1.0/0.0)"
    if value == float("-inf"):
        return "(-1.0/0.0)"
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return value.hex()


def c_int_literal(value: int, dtype: DType) -> str:
    """A C literal of ``value`` with the right suffix for ``dtype``."""
    if dtype.is_signed and value == dtype.min_value and dtype.bits == 64:
        # INT64_MIN cannot be written directly.
        return "(-9223372036854775807LL - 1)"
    return f"{value}{dtype.c_literal_suffix}"


class Stimulus(ABC):
    """One input port's value stream."""

    @abstractmethod
    def reset(self) -> None:
        """Rewind to step 0."""

    @abstractmethod
    def next(self):
        """The value for the current step; advances the stream."""

    @abstractmethod
    def c_decls(self, prefix: str) -> str:
        """Global C declarations (state vars, tables); '' if none."""

    @abstractmethod
    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        """C statement(s) assigning this step's value to ``target``.

        May reference the loop variable ``step`` (an ``int64_t``).
        """

    def conform(self, value, dtype: DType):
        """Fit a raw stimulus value to a port dtype (wrap/coerce, no flags) —
        the same implicit conversion a C assignment performs."""
        if dtype.is_float:
            return coerce_float(float(value), dtype)
        if isinstance(value, float):
            return wrap(int(value), dtype)
        return wrap(int(value), dtype)

"""Test cases: the input streams fed to a model's root Inports.

Each :class:`Stimulus` yields one value per simulation step *and* knows how
to emit C code computing the identical stream, so the interpreted engines
and AccMoS's generated program consume bit-identical test cases — random
stimuli included (they share the library's 64-bit LCG).

``TestCaseTable`` covers the paper's "test cases import": explicit
per-step vectors, loadable from CSV, embedded into the generated code as
static arrays.
"""

from repro.stimuli.base import Stimulus, StimulusDescriptor
from repro.stimuli.generators import (
    ConstantStimulus,
    IntRandomStimulus,
    PulseStimulus,
    RampStimulus,
    SequenceStimulus,
    SineStimulus,
    StepStimulus,
    UniformRandomStimulus,
    default_stimuli,
)
from repro.stimuli.io import TestCaseTable, load_csv, save_csv

__all__ = [
    "Stimulus",
    "StimulusDescriptor",
    "ConstantStimulus",
    "SequenceStimulus",
    "RampStimulus",
    "SineStimulus",
    "StepStimulus",
    "PulseStimulus",
    "UniformRandomStimulus",
    "IntRandomStimulus",
    "default_stimuli",
    "TestCaseTable",
    "load_csv",
    "save_csv",
]

"""Explicit test-case tables and their CSV round trip.

A :class:`TestCaseTable` is the paper's imported test case: one column per
root inport, one row per step.  It converts to per-port
:class:`SequenceStimulus` streams (cycled if the simulation outruns the
table) for any engine.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.stimuli.generators import SequenceStimulus


def _parse_cell(text: str):
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return float(text)


@dataclass
class TestCaseTable:
    """Columnar test-case data keyed by inport name."""

    __test__ = False  # starts with "Test" but is not a pytest test class

    columns: dict[str, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"test-case columns differ in length: {sorted(lengths)}")

    @property
    def n_steps(self) -> int:
        return len(next(iter(self.columns.values()))) if self.columns else 0

    @property
    def port_names(self) -> list[str]:
        return list(self.columns)

    def to_stimuli(self) -> dict[str, SequenceStimulus]:
        return {name: SequenceStimulus(values) for name, values in self.columns.items()}

    def row(self, step: int) -> dict[str, object]:
        return {name: values[step] for name, values in self.columns.items()}

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Sequence[Sequence]) -> "TestCaseTable":
        columns: dict[str, list] = {name: [] for name in names}
        for row in rows:
            if len(row) != len(names):
                raise ValueError(
                    f"row has {len(row)} cells, expected {len(names)}"
                )
            for name, cell in zip(names, row):
                columns[name].append(cell)
        return cls(columns)


def save_csv(table: TestCaseTable, path: str | Path) -> None:
    """Write a table as a header + one row per step."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.port_names)
        for step in range(table.n_steps):
            writer.writerow([table.columns[name][step] for name in table.port_names])


def load_csv(path: str | Path) -> TestCaseTable:
    """Read a table written by :func:`save_csv` (ints stay ints)."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty test-case file") from None
        rows = [[_parse_cell(cell) for cell in row] for row in reader if row]
    return TestCaseTable.from_rows([h.strip() for h in header], rows)

"""Concrete stimulus generators."""

from __future__ import annotations

import math
from typing import Sequence

from repro.actors.sources import LCG_INC, LCG_MUL, lcg_next, lcg_uniform
from repro.dtypes import DType, F64
from repro.stimuli.base import (
    STIM_KIND_CONSTANT,
    STIM_KIND_INT_RANDOM,
    STIM_KIND_PULSE,
    STIM_KIND_RAMP,
    STIM_KIND_SEQUENCE,
    STIM_KIND_SINE,
    STIM_KIND_STEP,
    STIM_KIND_UNIFORM,
    Stimulus,
    StimulusDescriptor,
    c_double_literal,
)


def _int_slot(value) -> int:
    """The int-value slot for a descriptor; mirrors the baked emitters'
    ``int(v)`` (only consulted when the port dtype is integral, where the
    legacy path would have required a finite value too)."""
    try:
        return int(value)
    except (ValueError, OverflowError):  # nan/inf constant on an int port
        return 0


class ConstantStimulus(Stimulus):
    """The same value every step."""

    def __init__(self, value):
        self.value = value

    def reset(self) -> None:
        pass

    def next(self):
        return self.value

    def c_decls(self, prefix: str) -> str:
        return ""

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        if dtype.is_float:
            return f"{target} = {c_double_literal(float(self.value))};"
        return f"{target} = {int(self.value)};"

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_CONSTANT,
            iv0=_int_slot(self.value),
            fv0=float(self.value),
        )


class SequenceStimulus(Stimulus):
    """An explicit vector of values, cycled when exhausted."""

    def __init__(self, values: Sequence):
        if not values:
            raise ValueError("SequenceStimulus needs at least one value")
        self.values = list(values)
        self._i = 0

    def reset(self) -> None:
        self._i = 0

    def next(self):
        value = self.values[self._i]
        self._i = (self._i + 1) % len(self.values)
        return value

    def c_decls(self, prefix: str) -> str:
        floaty = any(isinstance(v, float) for v in self.values)
        if floaty:
            body = ", ".join(c_double_literal(float(v)) for v in self.values)
            ctype = "double"
        else:
            body = ", ".join(str(int(v)) for v in self.values)
            ctype = "int64_t"
        return (
            f"static const {ctype} {prefix}_data[{len(self.values)}] = {{{body}}};"
        )

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        return f"{target} = ({dtype.c_name}){prefix}_data[step % {len(self.values)}];"

    def runtime_descriptor(self) -> StimulusDescriptor:
        floaty = any(isinstance(v, float) for v in self.values)
        if floaty:
            table = tuple(float(v) for v in self.values)
        else:
            table = tuple(int(v) for v in self.values)
        return StimulusDescriptor(
            kind=STIM_KIND_SEQUENCE, table_is_float=floaty, table=table
        )


class RampStimulus(Stimulus):
    """``start + slope * step`` (double)."""

    def __init__(self, start: float = 0.0, slope: float = 1.0):
        self.start = float(start)
        self.slope = float(slope)
        self._n = 0

    def reset(self) -> None:
        self._n = 0

    def next(self):
        value = self.start + self.slope * float(self._n)
        self._n += 1
        return value

    def c_decls(self, prefix: str) -> str:
        return ""

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        return (
            f"{target} = ({dtype.c_name})({c_double_literal(self.start)} + "
            f"{c_double_literal(self.slope)} * (double)step);"
        )

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_RAMP, f0=self.start, f1=self.slope
        )


class SineStimulus(Stimulus):
    """``amplitude * sin(w*step + phase) + bias`` with ``w`` precomputed."""

    def __init__(self, amplitude=1.0, period_steps=100, phase=0.0, bias=0.0):
        if period_steps <= 0:
            raise ValueError("period_steps must be positive")
        self.amplitude = float(amplitude)
        self.w = 2.0 * math.pi / float(period_steps)
        self.phase = float(phase)
        self.bias = float(bias)
        self._n = 0

    def reset(self) -> None:
        self._n = 0

    def next(self):
        value = self.amplitude * math.sin(self.w * float(self._n) + self.phase) + self.bias
        self._n += 1
        return value

    def c_decls(self, prefix: str) -> str:
        return ""

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        return (
            f"{target} = ({dtype.c_name})({c_double_literal(self.amplitude)} * "
            f"sin({c_double_literal(self.w)} * (double)step + "
            f"{c_double_literal(self.phase)}) + {c_double_literal(self.bias)});"
        )

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_SINE,
            f0=self.amplitude, f1=self.w, f2=self.phase, f3=self.bias,
        )


class StepStimulus(Stimulus):
    """``before`` until step ``at``, then ``after``."""

    def __init__(self, at: int, before=0, after=1):
        self.at = int(at)
        self.before = before
        self.after = after
        self._n = 0

    def reset(self) -> None:
        self._n = 0

    def next(self):
        value = self.before if self._n < self.at else self.after
        self._n += 1
        return value

    def c_decls(self, prefix: str) -> str:
        return ""

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        def lit(v):
            return c_double_literal(float(v)) if dtype.is_float else str(int(v))

        return (
            f"{target} = (step < {self.at}) ? ({dtype.c_name}){lit(self.before)} "
            f": ({dtype.c_name}){lit(self.after)};"
        )

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_STEP,
            i0=self.at,
            iv0=_int_slot(self.before), iv1=_int_slot(self.after),
            fv0=float(self.before), fv1=float(self.after),
        )


class PulseStimulus(Stimulus):
    """``high`` while ``step % period < duty``, else ``low``."""

    def __init__(self, period: int, duty: int, high=1, low=0):
        if period < 1 or not (0 <= duty <= period):
            raise ValueError("need period >= 1 and 0 <= duty <= period")
        self.period = int(period)
        self.duty = int(duty)
        self.high = high
        self.low = low
        self._n = 0

    def reset(self) -> None:
        self._n = 0

    def next(self):
        value = self.high if (self._n % self.period) < self.duty else self.low
        self._n += 1
        return value

    def c_decls(self, prefix: str) -> str:
        return ""

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        def lit(v):
            return c_double_literal(float(v)) if dtype.is_float else str(int(v))

        return (
            f"{target} = ((step % {self.period}) < {self.duty}) ? "
            f"({dtype.c_name}){lit(self.high)} : ({dtype.c_name}){lit(self.low)};"
        )

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_PULSE,
            i0=self.period, i1=self.duty,
            iv0=_int_slot(self.high), iv1=_int_slot(self.low),
            fv0=float(self.high), fv1=float(self.low),
        )


class _LcgStimulus(Stimulus):
    """Shared LCG plumbing for the random stimuli."""

    def __init__(self, seed: int):
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        self._state = lcg_next(self.seed)

    def reset(self) -> None:
        self._state = lcg_next(self.seed)

    def _advance(self) -> int:
        state = self._state
        self._state = lcg_next(state)
        return state

    def c_decls(self, prefix: str) -> str:
        initial = lcg_next(self.seed)
        return f"static uint64_t {prefix}_s = {initial}ULL;"

    def _c_advance(self, prefix: str) -> str:
        return f"{prefix}_s = {prefix}_s * {LCG_MUL}ULL + {LCG_INC}ULL;"


class UniformRandomStimulus(_LcgStimulus):
    """Doubles uniform in [lo, hi), bit-identical across engines."""

    def __init__(self, seed: int, lo: float = 0.0, hi: float = 1.0):
        if not lo < hi:
            raise ValueError("need lo < hi")
        super().__init__(seed)
        self.lo = float(lo)
        self.hi = float(hi)

    def next(self):
        u = lcg_uniform(self._advance())
        return self.lo + u * (self.hi - self.lo)

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        lo, hi = c_double_literal(self.lo), c_double_literal(self.hi)
        return (
            f"{{ uint64_t _r = {prefix}_s; {self._c_advance(prefix)} "
            f"{target} = ({dtype.c_name})({lo} + ((double)(_r >> 11) * "
            f"{c_double_literal(1.0 / 9007199254740992.0)}) * ({hi} - {lo})); }}"
        )

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_UNIFORM,
            f0=self.lo, f1=self.hi,
            state=lcg_next(self.seed),
        )


class IntRandomStimulus(_LcgStimulus):
    """Integers uniform in [lo, hi], bit-identical across engines."""

    def __init__(self, seed: int, lo: int, hi: int):
        if lo > hi:
            raise ValueError("need lo <= hi")
        super().__init__(seed)
        self.lo = int(lo)
        self.hi = int(hi)
        self.span = self.hi - self.lo + 1

    def next(self):
        return self.lo + ((self._advance() >> 33) % self.span)

    def c_step(self, target: str, dtype: DType, prefix: str) -> str:
        return (
            f"{{ uint64_t _r = {prefix}_s; {self._c_advance(prefix)} "
            f"{target} = ({dtype.c_name})({self.lo}LL + "
            f"(int64_t)((_r >> 33) % {self.span}ULL)); }}"
        )

    def runtime_descriptor(self) -> StimulusDescriptor:
        return StimulusDescriptor(
            kind=STIM_KIND_INT_RANDOM,
            i0=self.lo, u0=self.span,
            state=lcg_next(self.seed),
        )


def default_stimuli(prog, *, seed: int = 1) -> dict[str, Stimulus]:
    """Reasonable random stimuli for every root inport of a program.

    Integer ports get ints in [-100, 100] (unsigned: [0, 200]), bool ports
    coin flips, float ports uniforms in [0, 1) — each port seeded
    distinctly but deterministically from ``seed``.
    """
    stimuli: dict[str, Stimulus] = {}
    for i, binding in enumerate(prog.inports):
        port_seed = seed * 1_000_003 + i
        dtype = binding.dtype or F64
        if dtype.is_bool:
            stimuli[binding.name] = IntRandomStimulus(port_seed, 0, 1)
        elif dtype.is_integer:
            lo, hi = (-100, 100) if dtype.is_signed else (0, 200)
            lo = max(lo, dtype.min_value)
            hi = min(hi, dtype.max_value)
            stimuli[binding.name] = IntRandomStimulus(port_seed, lo, hi)
        else:
            stimuli[binding.name] = UniformRandomStimulus(port_seed, 0.0, 1.0)
    return stimuli

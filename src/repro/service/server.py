"""The asyncio endpoint layer over :class:`CampaignService`.

Routes::

    GET    /healthz                   liveness
    POST   /campaigns                 spec JSON -> 201 {"id": ...}
    GET    /campaigns/{id}            status + scheduler stats + telemetry
    GET    /campaigns/{id}/events     event-log page (polling fallback)
    DELETE /campaigns/{id}            cooperative cancel, waits for drain
    WS     /campaigns/{id}/stream     event replay + live tail

The stream endpoint replays the campaign's append-only event log from
``?cursor=N`` (default 0) and then tails it: one text frame per event,
each frame the canonical :func:`repro.service.codec.encode` bytes.
Because the log is replayed rather than subscribed to, a client that
disconnects mid-campaign reconnects with the next cursor and receives
exactly the frames it missed — lossless, and byte-identical to an
uninterrupted stream.

The service core is synchronous (threads drive the runner); this layer
bridges with ``run_in_executor`` around the record's condition-variable
waits, using short poll timeouts so a dying connection is noticed
within a beat rather than at campaign end.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.service.app import CampaignService, UnknownCampaignError
from repro.service.codec import encode
from repro.service.spec import SpecError
from repro.service.wire import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    WireError,
    http_response,
    json_response,
    read_request,
    ws_encode_frame,
    ws_handshake_response,
)

# How long one executor-side wait_events call blocks before the asyncio
# side gets control back (and can notice a dead socket / cancellation).
STREAM_POLL_SECONDS = 0.25


class CampaignServer:
    """One listening socket in front of one :class:`CampaignService`."""

    def __init__(
        self,
        service: Optional[CampaignService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cancel_timeout: float = 60.0,
    ) -> None:
        self.service = service if service is not None else CampaignService()
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.cancel_timeout = cancel_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.close
        )

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await read_request(reader)
            if request is None:
                return
            await self._dispatch(request, reader, writer)
        except WireError as exc:
            with _swallow_io():
                writer.write(
                    json_response(400, {"error": str(exc)})
                )
                await writer.drain()
        except (
            ConnectionError, asyncio.IncompleteReadError, TimeoutError
        ):
            pass  # client went away; the campaign (if any) keeps running
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            with _swallow_io():
                writer.write(
                    json_response(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
                await writer.drain()
        finally:
            with _swallow_io():
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        parts = [part for part in request.path.split("/") if part]

        if request.path == "/healthz" and request.method == "GET":
            writer.write(json_response(200, {"ok": True}))
            await writer.drain()
            return

        if parts[:1] != ["campaigns"]:
            writer.write(json_response(404, {"error": "no such route"}))
            await writer.drain()
            return

        if len(parts) == 1:
            if request.method != "POST":
                writer.write(
                    json_response(405, {"error": "POST /campaigns"})
                )
                await writer.drain()
                return
            document = request.json()
            try:
                record = await loop.run_in_executor(
                    None, self.service.submit, document
                )
            except SpecError as exc:
                writer.write(json_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            except Exception as exc:  # model load failures etc.
                writer.write(
                    json_response(
                        400, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
                await writer.drain()
                return
            writer.write(
                json_response(
                    201,
                    {
                        "id": record.id,
                        "state": record.state,
                        "tenant": record.spec.tenant,
                    },
                )
            )
            await writer.drain()
            return

        campaign_id = parts[1]
        try:
            if len(parts) == 2 and request.method == "GET":
                status = await loop.run_in_executor(
                    None, self.service.status, campaign_id
                )
                writer.write(json_response(200, status))
                await writer.drain()
                return
            if len(parts) == 2 and request.method == "DELETE":
                status = await loop.run_in_executor(
                    None,
                    lambda: self.service.cancel(
                        campaign_id, timeout=self.cancel_timeout
                    ),
                )
                writer.write(json_response(200, status))
                await writer.drain()
                return
            if len(parts) == 3 and parts[2] == "events":
                record = self.service.get(campaign_id)
                cursor = _parse_cursor(request.query)
                events, terminal = record.wait_events(cursor, timeout=0)
                writer.write(
                    json_response(
                        200,
                        {
                            "cursor": cursor,
                            "next_cursor": cursor + len(events),
                            "events": events,
                            "terminal": terminal,
                            "state": record.state,
                        },
                    )
                )
                await writer.drain()
                return
            if len(parts) == 3 and parts[2] == "stream":
                record = self.service.get(campaign_id)
                if not request.wants_websocket:
                    writer.write(
                        json_response(
                            426,
                            {"error": "this endpoint speaks WebSocket"},
                        )
                    )
                    await writer.drain()
                    return
                key = request.headers.get("sec-websocket-key")
                if not key:
                    raise WireError("missing Sec-WebSocket-Key")
                writer.write(ws_handshake_response(key))
                await writer.drain()
                await self._stream(
                    record, _parse_cursor(request.query), reader, writer
                )
                return
        except UnknownCampaignError:
            writer.write(
                json_response(
                    404, {"error": f"unknown campaign {campaign_id!r}"}
                )
            )
            await writer.drain()
            return

        writer.write(json_response(404, {"error": "no such route"}))
        await writer.drain()

    async def _stream(self, record, cursor, reader, writer) -> None:
        """Replay the event log from ``cursor``, then tail it live.

        A parallel reader task watches for the client's close frame (or
        EOF) so a disconnect mid-campaign tears the stream down promptly
        while the campaign itself keeps running.
        """
        loop = asyncio.get_running_loop()
        closed = asyncio.Event()
        reader_task = asyncio.ensure_future(
            self._watch_client(reader, writer, closed)
        )
        try:
            while not closed.is_set():
                events, terminal = await loop.run_in_executor(
                    None,
                    record.wait_events,
                    cursor,
                    STREAM_POLL_SECONDS,
                )
                for event in events:
                    writer.write(
                        ws_encode_frame(encode(event).encode("utf-8"))
                    )
                cursor += len(events)
                await writer.drain()
                if terminal and cursor >= len(record.events):
                    break
            writer.write(
                ws_encode_frame(b"\x03\xe8campaign complete", opcode=OP_CLOSE)
            )
            await writer.drain()
        finally:
            reader_task.cancel()
            with _swallow_io():
                await reader_task

    async def _watch_client(self, reader, writer, closed) -> None:
        """Consume client frames; flag ``closed`` on close/EOF."""
        from repro.service.wire import ws_read_frame

        try:
            while True:
                opcode, payload = await ws_read_frame(reader)
                if opcode == OP_CLOSE:
                    break
                if opcode == OP_PING:
                    writer.write(
                        ws_encode_frame(payload, opcode=OP_PONG)
                    )
                    await writer.drain()
        except (
            asyncio.IncompleteReadError, ConnectionError, WireError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            closed.set()


def _parse_cursor(query: "dict[str, str]") -> int:
    raw = query.get("cursor", "0")
    try:
        cursor = int(raw)
    except ValueError:
        raise WireError(f"cursor must be an integer, not {raw!r}")
    if cursor < 0:
        raise WireError("cursor must be non-negative")
    return cursor


class _swallow_io:
    """``with _swallow_io():`` — ignore connection teardown noise."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(
            exc_type,
            (ConnectionError, asyncio.IncompleteReadError,
             asyncio.CancelledError, TimeoutError, OSError),
        )


def serve_api(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tenant_quota: int = 1,
    max_concurrent: int = 2,
) -> None:
    """Blocking entry point behind ``repro serve-api``.

    Prints one ``listening on host:port`` line (flushed, so wrappers can
    scrape the auto-assigned port) and serves until interrupted.
    """
    service = CampaignService(
        tenant_quota=tenant_quota, max_concurrent=max_concurrent
    )
    server = CampaignServer(service, host=host, port=port)

    async def _main() -> None:
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass

"""A small blocking client for the campaign service.

Used by the test suite, the CI smoke job, and the service benchmark —
anywhere a plain synchronous caller wants to drive the API without
standing up an event loop.  One TCP connection per HTTP request
(the server answers ``Connection: close``); the stream method holds a
dedicated WebSocket connection and yields decoded events.
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Optional

from repro.service.wire import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    WireError,
    ws_client_handshake,
    ws_encode_frame,
    ws_read_frame_sync,
)


class ServiceError(RuntimeError):
    """A non-2xx response; carries the status and the decoded body."""

    def __init__(self, status: int, body) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    def __init__(
        self, host: str, port: int, *, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plain HTTP --------------------------------------------------------
    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> "tuple[int, object]":
        payload = b""
        headers = [f"{method} {path} HTTP/1.1", f"Host: {self.host}"]
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers.append("Content-Type: application/json")
            headers.append(f"Content-Length: {len(payload)}")
        headers.append("Connection: close")
        request = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")

        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(request + payload)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, rest = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        status = int(status_line.split()[1])
        try:
            decoded: object = json.loads(rest.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = rest.decode("utf-8", "replace")
        return status, decoded

    def _checked(self, method: str, path: str, body=None):
        status, decoded = self.request(method, path, body)
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    # -- the campaign API --------------------------------------------------
    def health(self) -> bool:
        status, _ = self.request("GET", "/healthz")
        return status == 200

    def submit(self, spec: dict) -> str:
        return self._checked("POST", "/campaigns", spec)["id"]

    def status(self, campaign_id: str) -> dict:
        return self._checked("GET", f"/campaigns/{campaign_id}")

    def events(self, campaign_id: str, cursor: int = 0) -> dict:
        return self._checked(
            "GET", f"/campaigns/{campaign_id}/events?cursor={cursor}"
        )

    def cancel(self, campaign_id: str) -> dict:
        return self._checked("DELETE", f"/campaigns/{campaign_id}")

    def stream_raw(
        self, campaign_id: str, cursor: int = 0
    ) -> "Iterator[bytes]":
        """The WebSocket event stream as raw text-frame payloads.

        This is the byte-identity surface: each yielded value is exactly
        the canonical encoded event the server framed.  Closes the
        socket (politely, masked close frame) when the generator is
        exhausted or dropped.
        """
        path = f"/campaigns/{campaign_id}/stream?cursor={cursor}"
        handshake, expect_accept = ws_client_handshake(self.host, path)
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            sock.sendall(handshake)
            reply, extra = _read_until(sock, b"\r\n\r\n")
            status_line, _, header_block = reply.partition(b"\r\n")
            status = int(status_line.split()[1])
            if status != 101:
                raise ServiceError(
                    status, reply.decode("latin-1", "replace")
                )
            accept = _header_value(header_block, b"sec-websocket-accept")
            if accept != expect_accept:
                raise WireError(
                    "bad Sec-WebSocket-Accept: handshake corrupted"
                )

            read_exactly = _exact_reader(sock, extra)
            while True:
                opcode, payload = ws_read_frame_sync(read_exactly)
                if opcode == OP_CLOSE:
                    break
                if opcode == OP_PING:
                    sock.sendall(
                        ws_encode_frame(payload, opcode=OP_PONG, mask=True)
                    )
                    continue
                if opcode == OP_TEXT:
                    yield payload
        finally:
            try:
                sock.sendall(
                    ws_encode_frame(b"\x03\xe8", opcode=OP_CLOSE, mask=True)
                )
            except OSError:
                pass
            sock.close()

    def stream(
        self, campaign_id: str, cursor: int = 0
    ) -> "Iterator[dict]":
        """The event stream, decoded."""
        for payload in self.stream_raw(campaign_id, cursor):
            yield json.loads(payload.decode("utf-8"))


def _read_until(
    sock: socket.socket, marker: bytes
) -> "tuple[bytes, bytes]":
    """Read up to (and excluding) ``marker``; frames can ride the same
    recv as the handshake tail, so the leftover bytes are returned too."""
    data = b""
    while marker not in data:
        chunk = sock.recv(4096)
        if not chunk:
            raise WireError("connection closed during handshake")
        data += chunk
        if len(data) > 64 * 1024:
            raise WireError("oversized handshake response")
    head, _, extra = data.partition(marker)
    return head, extra


def _exact_reader(sock: socket.socket, initial: bytes = b""):
    """A ``read_exactly(n)`` over a socket, honoring any bytes that
    arrived with the handshake response."""
    buffered = [initial]

    def read_exactly(n: int) -> bytes:
        data = buffered[0]
        while len(data) < n:
            chunk = sock.recv(65536)
            if not chunk:
                raise WireError("connection closed mid-frame")
            data += chunk
        buffered[0] = data[n:]
        return data[:n]

    return read_exactly


def _header_value(block: bytes, name: bytes) -> Optional[str]:
    for line in block.split(b"\r\n"):
        key, _, value = line.partition(b":")
        if key.strip().lower() == name:
            return value.strip().decode("latin-1")
    return None

"""Campaign-spec JSON: what ``POST /campaigns`` accepts.

A spec is a JSON object naming a model plus any of the
:func:`repro.campaign.run_campaign` knobs::

    {
      "model": "bench:SPV",          // or an inline generic-IR document,
                                     // or a path the server may read
      "steps": 2000,
      "max_cases": 8,
      "plateau_patience": 3,
      "workers": 2,
      "tenant": "team-a"             // quota / fairness bucket
    }

Validation is strict — unknown keys are rejected, every knob is type-
and range-checked *before* a campaign id is handed out — because the
service runs specs long after the submitting request returned; a late
``ValueError`` deep in the runner would otherwise be the first sign of a
typo.  The checks mirror :func:`repro.campaign.run_campaign`'s so a spec
that validates here cannot fail validation there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

DEFAULT_TENANT = "default"

# Knobs forwarded verbatim to iter_campaign, with (type, validator).
_BOOL_KNOBS = ("serve", "inproc", "adaptive")
_INT_KNOBS = {
    # name: (minimum, description)
    "steps": (1, "steps must be at least 1"),
    "max_cases": (1, "max_cases must be at least 1"),
    "plateau_patience": (1, "plateau_patience must be at least 1"),
    "workers": (1, "workers must be at least 1"),
    "batch_size": (1, "batch_size must be at least 1"),
    "window": (1, "window must be at least 1"),
    "threads": (0, "threads must be non-negative"),
    "base_seed": (None, None),
}
_ALLOWED_KEYS = (
    {"model", "engine", "mode", "scheduler", "timeout_seconds", "tenant"}
    | set(_BOOL_KNOBS)
    | set(_INT_KNOBS)
)


class SpecError(ValueError):
    """A campaign spec failed validation (maps to HTTP 400)."""


@dataclass
class CampaignSpec:
    """A validated campaign submission."""

    model: "Union[str, dict]"
    tenant: str = DEFAULT_TENANT
    engine: str = "accmos"
    knobs: "dict[str, Any]" = field(default_factory=dict)

    def campaign_kwargs(self) -> "dict[str, Any]":
        """Keyword arguments for :func:`repro.campaign.iter_campaign`."""
        kwargs = dict(self.knobs)
        kwargs["engine"] = self.engine
        return kwargs

    def load_program(self):
        """Resolve the model reference to a preprocessed FlatProgram."""
        from repro.schedule import preprocess

        if isinstance(self.model, dict):
            from repro.slx.generic import generic_to_model

            return preprocess(generic_to_model(self.model))
        if self.model.startswith("bench:"):
            from repro.benchmarks import build_benchmark

            return preprocess(build_benchmark(self.model[len("bench:"):]))
        if self.model.endswith(".json"):
            from repro.slx import load_generic

            return preprocess(load_generic(self.model))
        from repro.slx import load_model

        return preprocess(load_model(self.model))


def parse_spec(document: Any) -> CampaignSpec:
    """Validate one submission document into a :class:`CampaignSpec`.

    Raises :class:`SpecError` with a message naming the offending key —
    the service returns it verbatim as the 400 body.
    """
    if not isinstance(document, dict):
        raise SpecError("campaign spec must be a JSON object")
    unknown = sorted(set(document) - _ALLOWED_KEYS)
    if unknown:
        raise SpecError(f"unknown spec key(s): {', '.join(unknown)}")

    model = document.get("model")
    if isinstance(model, dict):
        if "blocks" not in model:
            raise SpecError(
                "inline model documents must be generic-IR objects "
                "(missing 'blocks')"
            )
    elif not isinstance(model, str) or not model:
        raise SpecError(
            "spec requires 'model': a 'bench:NAME' reference, a model "
            "file path, or an inline generic-IR document"
        )

    engine = document.get("engine", "accmos")
    from repro.engines.api import ENGINES

    if engine not in ENGINES:
        raise SpecError(
            f"unknown engine {engine!r}; valid engines: "
            f"{', '.join(sorted(ENGINES))}"
        )

    tenant = document.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise SpecError("'tenant' must be a non-empty string")

    knobs: "dict[str, Any]" = {}
    for name in _BOOL_KNOBS:
        if name in document:
            value = document[name]
            if not isinstance(value, bool):
                raise SpecError(f"'{name}' must be a boolean")
            knobs[name] = value
    for name, (minimum, message) in _INT_KNOBS.items():
        if name in document:
            value = document[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"'{name}' must be an integer")
            if minimum is not None and value < minimum:
                raise SpecError(message)
            knobs[name] = value
    if "mode" in document:
        if document["mode"] not in ("thread", "process"):
            raise SpecError("'mode' must be 'thread' or 'process'")
        knobs["mode"] = document["mode"]
    if "scheduler" in document:
        if document["scheduler"] not in ("stream", "wave"):
            raise SpecError("'scheduler' must be 'stream' or 'wave'")
        knobs["scheduler"] = document["scheduler"]
    if "timeout_seconds" in document:
        value = document["timeout_seconds"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError("'timeout_seconds' must be a number")
        if value <= 0:
            raise SpecError("'timeout_seconds' must be positive")
        knobs["timeout_seconds"] = float(value)

    return CampaignSpec(
        model=model, tenant=tenant, engine=engine, knobs=knobs
    )

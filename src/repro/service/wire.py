"""Minimal HTTP/1.1 + RFC 6455 WebSocket framing on the stdlib only.

The container ships no third-party HTTP stack, and the service needs
exactly four verbs and a one-direction event stream — little enough
that hand-rolled framing is smaller than a dependency.  The encoders
are pure functions shared by the asyncio server and the blocking test
client; only the readers come in async (server) and sync (client)
flavors.

Scope deliberately covered: request line + headers + Content-Length
bodies, canonical status responses, the WebSocket upgrade handshake,
and single-fragment text/close/ping frames with client masking (clients
MUST mask; servers MUST NOT).  Scope deliberately *not* covered:
chunked transfer, continuation frames, extensions, compression — the
service never produces them and rejects them loudly rather than
mis-parsing.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qs, urlsplit

MAX_REQUEST_BODY = 8 * 1024 * 1024  # campaign specs are small; 8 MiB is generous
MAX_HEADER_LINE = 16 * 1024
MAX_WS_PAYLOAD = 64 * 1024 * 1024

_STATUS_PHRASES = {
    101: "Switching Protocols",
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    500: "Internal Server Error",
}

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class WireError(Exception):
    """A malformed request or frame (connection gets dropped)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: "dict[str, str]" = field(default_factory=dict)
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"request body is not valid JSON: {exc}")

    @property
    def wants_websocket(self) -> bool:
        return (
            "upgrade" in self.headers.get("connection", "").lower()
            and self.headers.get("upgrade", "").lower() == "websocket"
        )


async def read_request(reader) -> Optional[Request]:
    """Parse one request off an asyncio stream; None on clean EOF."""
    line = await reader.readline()
    if not line:
        return None
    if len(line) > MAX_HEADER_LINE:
        raise WireError("request line too long")
    try:
        method, target, version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise WireError(f"malformed request line: {line!r}")
    if not version.startswith("HTTP/1."):
        raise WireError(f"unsupported protocol: {version.strip()!r}")

    headers: "dict[str, str]" = {}
    while True:
        line = await reader.readline()
        if not line:
            raise WireError("connection closed mid-headers")
        if len(line) > MAX_HEADER_LINE:
            raise WireError("header line too long")
        line = line.rstrip(b"\r\n")
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise WireError("chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise WireError("invalid Content-Length")
        if length < 0 or length > MAX_REQUEST_BODY:
            raise WireError("request body too large")
        body = await reader.readexactly(length)

    split = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(split.query).items()
    }
    return Request(
        method=method.upper(), path=split.path, query=query,
        headers=headers, body=body,
    )


def http_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: "tuple[tuple[str, str], ...]" = (),
) -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    if status != 101:
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {len(body)}")
        lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(status: int, record) -> bytes:
    body = json.dumps(record, sort_keys=True).encode("utf-8")
    return http_response(status, body)


# ----------------------------------------------------------------------
# WebSocket framing
# ----------------------------------------------------------------------
def ws_accept_value(key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(key: str) -> bytes:
    return http_response(
        101,
        extra_headers=(
            ("Upgrade", "websocket"),
            ("Connection", "Upgrade"),
            ("Sec-WebSocket-Accept", ws_accept_value(key)),
        ),
    )


def ws_client_handshake(
    host: str, path: str, key: Optional[bytes] = None
) -> "tuple[bytes, str]":
    """The client's upgrade request bytes plus the accept value the
    server must answer with."""
    raw = key if key is not None else os.urandom(16)
    encoded = base64.b64encode(raw).decode("latin-1")
    request = (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {encoded}\r\n"
        "Sec-WebSocket-Version: 13\r\n"
        "\r\n"
    ).encode("latin-1")
    return request, ws_accept_value(encoded)


def ws_encode_frame(
    payload: bytes, *, opcode: int = OP_TEXT, mask: bool = False
) -> bytes:
    """One FIN frame.  ``mask=True`` for client→server (RFC-mandated)."""
    header = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(
            byte ^ key[i % 4] for i, byte in enumerate(payload)
        )
    return bytes(header) + payload


def _ws_decode_header(two: bytes) -> "tuple[int, bool, bool, int]":
    """(opcode, fin, masked, length-or-marker) from the first 2 bytes."""
    if len(two) < 2:
        raise WireError("connection closed mid-frame")
    fin = bool(two[0] & 0x80)
    if two[0] & 0x70:
        raise WireError("websocket extensions are not supported")
    opcode = two[0] & 0x0F
    masked = bool(two[1] & 0x80)
    return opcode, fin, masked, two[1] & 0x7F


def _ws_unmask(payload: bytes, key: bytes) -> bytes:
    return bytes(byte ^ key[i % 4] for i, byte in enumerate(payload))


async def ws_read_frame(reader) -> "tuple[int, bytes]":
    """Read one frame from an asyncio stream: ``(opcode, payload)``."""
    opcode, fin, masked, length = _ws_decode_header(
        await reader.readexactly(2)
    )
    if not fin:
        raise WireError("fragmented websocket frames are not supported")
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_WS_PAYLOAD:
        raise WireError("websocket payload too large")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = _ws_unmask(payload, key)
    return opcode, payload


def ws_read_frame_sync(read_exactly) -> "tuple[int, bytes]":
    """Blocking twin of :func:`ws_read_frame`; ``read_exactly(n)`` must
    return exactly ``n`` bytes or raise."""
    opcode, fin, masked, length = _ws_decode_header(read_exactly(2))
    if not fin:
        raise WireError("fragmented websocket frames are not supported")
    if length == 126:
        (length,) = struct.unpack(">H", read_exactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", read_exactly(8))
    if length > MAX_WS_PAYLOAD:
        raise WireError("websocket payload too large")
    key = read_exactly(4) if masked else b""
    payload = read_exactly(length) if length else b""
    if masked:
        payload = _ws_unmask(payload, key)
    return opcode, payload

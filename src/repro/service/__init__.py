"""Asyncio campaign service: submit, stream, cancel over HTTP + WebSocket.

The compile-once/run-many runner is embeddable
(:func:`repro.campaign.iter_campaign`); this package puts a long-lived
network front end on it so programmatic clients and model corpora can
share one artifact cache, one warm-server pool, and one cost-model store
across campaigns instead of paying a cold process per run.

Pieces:

* :mod:`repro.service.spec` — the campaign-spec JSON schema (model
  reference + the :func:`~repro.campaign.run_campaign` knobs) and its
  validation.
* :mod:`repro.service.codec` — canonical wire records for per-case and
  merged outcomes: deterministic fields only, sorted-key compact JSON,
  so "byte-identical to the CLI" is a checkable equality.
* :mod:`repro.service.app` — :class:`CampaignService`, the transport-
  agnostic core: per-tenant quotas, fair FIFO admission across tenants,
  an append-only event log per campaign (replayable, so reconnects are
  lossless), cooperative cancel.
* :mod:`repro.service.wire` — minimal stdlib HTTP/1.1 and RFC 6455
  WebSocket framing (no third-party dependencies).
* :mod:`repro.service.server` — the asyncio endpoint layer
  (``repro serve-api``).
* :mod:`repro.service.client` — a small blocking client used by the
  tests, the CI smoke job, and the benchmark harness.
"""

from repro.service.app import CampaignService
from repro.service.codec import case_record, encode, outcome_record
from repro.service.spec import CampaignSpec, SpecError, parse_spec
from repro.service.server import CampaignServer, serve_api

__all__ = [
    "CampaignService",
    "CampaignServer",
    "CampaignSpec",
    "SpecError",
    "parse_spec",
    "case_record",
    "outcome_record",
    "encode",
    "serve_api",
]

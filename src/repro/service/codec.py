"""Canonical wire records: the service's byte-identity contract.

A campaign submitted over HTTP and streamed over WebSocket must produce
*byte-identical* results to the same spec run through the CLI.  Wall
times, per-phase timings, and cache hits are real measurements of a
particular run — they can never be identical across two runs — so the
canonical records carry only the deterministic outcome of the seed-
ordered fold: which points each case uncovered, which diagnostics it
surfaced first, the merged bitmaps, the saturation verdict.  Encoding is
compact sorted-key JSON, so equal records are equal byte strings and the
identity check is a string comparison (``repro campaign --json`` prints
exactly this encoding).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.coverage.metrics import ALL_METRICS

if TYPE_CHECKING:
    from repro.campaign import CampaignOutcome, CaseOutcome
    from repro.coverage.report import CoverageReport


def encode(record) -> str:
    """Canonical JSON: sorted keys, no whitespace — one record, one
    byte string."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def case_record(case: "CaseOutcome") -> dict:
    """The deterministic projection of one folded case."""
    return {
        "seed": case.seed,
        "steps_run": case.steps_run,
        "new_points": case.new_points,
        "n_diagnostics": case.n_diagnostics,
        "new_points_by_metric": {
            metric.value: case.new_points_by_metric.get(metric, 0)
            for metric in ALL_METRICS
        },
    }


def _coverage_record(merged: "CoverageReport") -> dict:
    """Covered counts plus a digest of each raw bitmap: two campaigns
    with equal records covered *exactly* the same points, not merely the
    same number of them."""
    record = {}
    for metric in ALL_METRICS:
        bitmap = merged.bitmaps[metric]
        record[metric.value] = {
            "covered": bitmap.count(),
            "total": len(bitmap),
            "digest": hashlib.sha256(bytes(bitmap._bits)).hexdigest()[:16],
        }
    return record


def outcome_record(outcome: "CampaignOutcome") -> dict:
    """The deterministic projection of a merged campaign outcome.

    Scheduling artifacts (speculation, scheduler stats, server-pool
    counters) and wall-clock measurements are deliberately absent: they
    describe *how* the campaign ran, which legitimately differs between
    a CLI run and a streamed service run of the same spec.  What is
    present is everything the fold determines: the per-case contribution
    sequence, the pooled diagnostics with their first-exposing seeds,
    the merged coverage, and the verdict.
    """
    return {
        "n_cases": outcome.n_cases,
        "saturated": outcome.saturated,
        "cases": [case_record(case) for case in outcome.cases],
        "diagnostics": [
            {
                "path": event.path,
                "kind": event.kind.value,
                "first_step": event.first_step,
                "seed": seed,
            }
            for event, seed in outcome.diagnostics
        ],
        "coverage": (
            _coverage_record(outcome.merged)
            if outcome.merged is not None
            else None
        ),
        "coverage_curves": {
            metric.value: outcome.coverage_curve(metric)
            for metric in ALL_METRICS
        },
    }

"""The transport-agnostic campaign service core.

:class:`CampaignService` owns what the endpoints merely expose: the
campaign registry, the per-tenant admission queues, the worker pool that
drives :func:`repro.campaign.iter_campaign`, and the long-lived shared
resources — one :class:`~repro.runner.servers.ServerPool`, one
:class:`~repro.runner.costmodel.CostModelStore`, one artifact cache —
that make the second campaign cheaper than the first.

Everything here is plain threads and condition variables, deliberately:
the runner core is synchronous, campaigns are minutes-long and few, and
a sync core is directly usable from tests without an event loop.  The
asyncio layer in :mod:`repro.service.server` adapts by polling
:meth:`CampaignRecord.wait_events` in the default executor.

Two structural decisions carry the ISSUE's guarantees:

* **Append-only event logs.**  Every campaign accumulates its lifecycle
  as an immutable list of JSON-able events (``started``, one ``case``
  per folded seed, a terminal ``outcome``/``error``).  Stream endpoints
  *replay* the log from a client-chosen cursor rather than subscribing
  to a live feed, so a reconnecting client sees exactly the bytes it
  would have seen staying connected, and a disconnect loses nothing.
* **Fair FIFO admission.**  Submissions land in per-tenant FIFO queues;
  a round-robin pointer walks tenants, admitting at most
  ``tenant_quota`` concurrent campaigns per tenant and
  ``max_concurrent`` overall.  One tenant submitting fifty campaigns
  delays its own backlog, not the next tenant's first submission.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro import telemetry
from repro.service.codec import case_record, outcome_record
from repro.service.spec import CampaignSpec, parse_spec

# Campaign lifecycle states.  queued → running → {done, cancelled,
# failed}; queued may also jump straight to cancelled.
TERMINAL_STATES = ("done", "cancelled", "failed")


class UnknownCampaignError(KeyError):
    """No campaign with that id (maps to HTTP 404)."""


class CampaignRecord:
    """One submitted campaign: spec, state machine, event log.

    All mutation happens under ``_cond``'s lock; readers take consistent
    snapshots.  The event log is append-only — events are never mutated
    or removed — which is what makes cursor-based replay sound.
    """

    def __init__(self, campaign_id: str, spec: CampaignSpec, program) -> None:
        self.id = campaign_id
        self.spec = spec
        self.program = program
        self.state = "queued"
        self.events: "list[dict]" = []
        self.error: Optional[str] = None
        self.cancel_requested = False
        # Set by the worker once iter_campaign constructs the run; the
        # cancel path uses it to reach the live scheduler.
        self.run = None
        self.outcome = None
        self._cond = threading.Condition()

    # -- mutation (worker / service side) ---------------------------------
    def append_event(self, event: dict) -> None:
        with self._cond:
            self.events.append(event)
            self._cond.notify_all()

    def set_state(self, state: str) -> None:
        with self._cond:
            self.state = state
            self._cond.notify_all()

    def finish(self, state: str, event: dict) -> None:
        """Terminal transition: the final event and the final state move
        together, so a reader never observes a terminal state with the
        terminal event still missing."""
        with self._cond:
            self.events.append(event)
            self.state = state
            self._cond.notify_all()

    # -- observation (endpoint side) --------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait_events(
        self, cursor: int, timeout: Optional[float] = None
    ) -> "tuple[list[dict], bool]":
        """Events at/after ``cursor`` plus whether the record is
        terminal.  Blocks up to ``timeout`` only when there is nothing
        new to report yet."""
        with self._cond:
            if cursor >= len(self.events) and not self.terminal:
                self._cond.wait(timeout)
            return list(self.events[cursor:]), self.terminal

    def wait_terminal(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            self._cond.wait_for(
                lambda: self.terminal, timeout=timeout
            )
            return self.terminal

    def status(self) -> dict:
        """The JSON-able status document (``GET /campaigns/{id}``)."""
        with self._cond:
            cases = sum(
                1 for event in self.events if event["type"] == "case"
            )
            record = {
                "id": self.id,
                "tenant": self.spec.tenant,
                "state": self.state,
                "cases": cases,
                "events": len(self.events),
                "error": self.error,
            }
            outcome = self.outcome
            last = self.events[-1] if self.events else None
        if outcome is not None:
            record["saturated"] = outcome.saturated
            record["speculated_cases"] = outcome.speculated_cases
            record["scheduler_stats"] = outcome.scheduler_stats
            record["server_stats"] = outcome.server_stats
        elif last is not None and last.get("type") == "outcome":
            # Cancelled while still queued: no CampaignOutcome exists,
            # but the terminal event still reports the (zero) drain.
            record["speculated_cases"] = last.get("speculated_cases", 0)
        return record


class CampaignService:
    """Submit / observe / cancel campaigns over shared warm resources."""

    def __init__(
        self,
        *,
        tenant_quota: int = 1,
        max_concurrent: int = 2,
        cache=None,
        cost_store=None,
        server_pool=None,
    ) -> None:
        if tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1")
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        self.tenant_quota = tenant_quota
        self.max_concurrent = max_concurrent

        # The shared warm state: every campaign the service runs borrows
        # these, so artifacts, warm servers, and learned cost rates
        # survive across campaigns and tenants.  None cache means the
        # process-wide default (runner semantics).
        from repro.runner.costmodel import default_cost_store

        self._cache = cache
        self._own_store = cost_store is None
        self._cost_store = (
            default_cost_store() if cost_store is None else cost_store
        )
        self._own_pool = server_pool is None
        if server_pool is None:
            from repro.runner.servers import ServerPool

            server_pool = ServerPool(
                max_servers=max(4, max_concurrent * 4),
                cost_store=self._cost_store,
            )
        self._server_pool = server_pool

        self._lock = threading.Lock()
        self._campaigns: "OrderedDict[str, CampaignRecord]" = OrderedDict()
        # tenant -> FIFO of queued records; tenants keep their slot in
        # _tenant_order forever (first-seen order) so the round-robin
        # pointer stays meaningful.
        self._queues: "dict[str, deque[CampaignRecord]]" = {}
        self._tenant_order: "list[str]" = []
        self._rr = 0
        self._running: "dict[str, int]" = {}
        self._total_running = 0
        self._ids = itertools.count(1)
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="campaign"
        )

    # -- lifecycle ---------------------------------------------------------
    def submit(self, document: Any) -> CampaignRecord:
        """Validate, register, and (quota permitting) start a campaign.

        Validation is eager and total — spec schema *and* model load —
        so a bad submission fails the POST instead of surfacing minutes
        later in a failed campaign.
        """
        spec = parse_spec(document)
        program = spec.load_program()
        with self._lock:
            if self._closed:
                raise RuntimeError("service is shutting down")
            campaign_id = f"c{next(self._ids):04d}"
            record = CampaignRecord(campaign_id, spec, program)
            self._campaigns[campaign_id] = record
            tenant = spec.tenant
            if tenant not in self._queues:
                self._queues[tenant] = deque()
                self._tenant_order.append(tenant)
                self._running.setdefault(tenant, 0)
            self._queues[tenant].append(record)
            self._admit_locked()
        telemetry.counter_inc("service.submitted")
        return record

    def get(self, campaign_id: str) -> CampaignRecord:
        with self._lock:
            record = self._campaigns.get(campaign_id)
        if record is None:
            raise UnknownCampaignError(campaign_id)
        return record

    def status(self, campaign_id: str) -> dict:
        """Campaign status plus the shared-resource view the ISSUE asks
        for: scheduler stats ride on the record, pool counters and the
        telemetry snapshot describe the service."""
        record = self.get(campaign_id)
        status = record.status()
        status["service"] = self.stats()
        return status

    def stats(self) -> dict:
        session = telemetry.active()
        with self._lock:
            states: "dict[str, int]" = {}
            for record in self._campaigns.values():
                states[record.state] = states.get(record.state, 0) + 1
            queued = {
                tenant: len(queue)
                for tenant, queue in self._queues.items()
                if queue
            }
            running = {
                tenant: count
                for tenant, count in self._running.items()
                if count
            }
        return {
            "campaigns": states,
            "queued_by_tenant": queued,
            "running_by_tenant": running,
            "server_pool": self._server_pool.stats(),
            "artifacts": self._server_pool.artifact_stats(),
            "cost_model_generation": self._cost_store.generation,
            "telemetry": session.snapshot() if session is not None else None,
        }

    def cancel(
        self, campaign_id: str, *, timeout: Optional[float] = 60.0
    ) -> dict:
        """Cooperatively cancel; wait for the drain; return the final
        status (including ``speculated_cases``)."""
        record = self.get(campaign_id)
        with self._lock:
            record.cancel_requested = True
            if record.state == "queued":
                # Still in a tenant queue: remove it there, terminal
                # immediately — nothing ran, nothing was speculated.
                queue = self._queues.get(record.spec.tenant)
                if queue is not None and record in queue:
                    queue.remove(record)
                record.finish(
                    "cancelled",
                    {
                        "type": "outcome",
                        "state": "cancelled",
                        "outcome": None,
                        "speculated_cases": 0,
                    },
                )
                telemetry.counter_inc("service.cancelled")
                return record.status()
            run = record.run
        if run is not None:
            run.cancel()
        record.wait_terminal(timeout)
        telemetry.counter_inc("service.cancelled")
        return record.status()

    def close(self, *, timeout: Optional[float] = 60.0) -> None:
        """Cancel everything, drain workers, release shared resources."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            records = list(self._campaigns.values())
        for record in records:
            if not record.terminal:
                try:
                    self.cancel(record.id, timeout=timeout)
                except UnknownCampaignError:  # pragma: no cover
                    pass
        self._executor.shutdown(wait=True)
        if self._own_pool:
            self._server_pool.close()
        if self._own_store:
            self._cost_store.save()

    # -- admission ---------------------------------------------------------
    def _admit_locked(self) -> None:
        """Round-robin fair admission (caller holds ``_lock``).

        Walk tenants from the rotation pointer; each tenant with queued
        work and quota headroom gets one start per pass.  Loop until a
        full pass admits nothing or the global cap is reached.
        """
        if not self._tenant_order:
            return
        while self._total_running < self.max_concurrent:
            admitted = False
            for _ in range(len(self._tenant_order)):
                tenant = self._tenant_order[
                    self._rr % len(self._tenant_order)
                ]
                self._rr += 1
                queue = self._queues.get(tenant)
                if (
                    queue
                    and self._running.get(tenant, 0) < self.tenant_quota
                ):
                    record = queue.popleft()
                    self._running[tenant] = self._running.get(tenant, 0) + 1
                    self._total_running += 1
                    record.set_state("running")
                    self._executor.submit(self._drive, record)
                    admitted = True
                    if self._total_running >= self.max_concurrent:
                        return
            if not admitted:
                return

    def _release(self, record: CampaignRecord) -> None:
        with self._lock:
            tenant = record.spec.tenant
            self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            self._total_running = max(0, self._total_running - 1)
            if not self._closed:
                self._admit_locked()

    # -- the campaign worker ----------------------------------------------
    def _drive(self, record: CampaignRecord) -> None:
        """Run one campaign to completion, translating the fold stream
        into the record's event log."""
        try:
            from repro.campaign import iter_campaign

            run = iter_campaign(
                record.program,
                cache=self._cache,
                server_pool=self._server_pool,
                cost_store=self._cost_store,
                **record.spec.campaign_kwargs(),
            )
            record.run = run
            if record.cancel_requested:
                run.cancel()  # cancel raced admission; drain immediately
            record.append_event(
                {"type": "started", "id": record.id,
                 "tenant": record.spec.tenant}
            )
            for index, case in enumerate(run):
                record.append_event(
                    {"type": "case", "index": index,
                     "case": case_record(case)}
                )
            outcome = record.outcome = run.outcome
            state = "cancelled" if record.cancel_requested else "done"
            record.finish(
                state,
                {
                    "type": "outcome",
                    "state": state,
                    "outcome": outcome_record(outcome),
                    "speculated_cases": outcome.speculated_cases,
                },
            )
            telemetry.counter_inc("service.completed")
        except Exception as exc:  # noqa: BLE001 — the log is the report
            record.error = f"{type(exc).__name__}: {exc}"
            record.finish(
                "failed", {"type": "error", "error": record.error}
            )
            telemetry.counter_inc("service.failed")
        finally:
            self._release(record)

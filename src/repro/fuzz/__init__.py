"""repro.fuzz — differential model fuzzer with automatic shrinking.

Pipeline: :mod:`~repro.fuzz.generate` draws seeded random-but-valid
models over the full actor registry; :mod:`~repro.fuzz.oracle` runs each
case through every engine rung and compares bit-for-bit against the
interpreted SSE reference; :mod:`~repro.fuzz.shrink` delta-debugs any
divergence down to a minimal reproducer; :mod:`~repro.fuzz.corpus`
persists reproducers as JSON for the pytest replay harness.  The CLI
front end is ``repro fuzz``; :mod:`~repro.fuzz.driver` is the campaign
loop behind it.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    case_signature,
    divergence_signature,
    find_open_duplicate,
    load_entries,
    load_entry,
    save_entry,
)
from repro.fuzz.driver import (
    FuzzConfig,
    FuzzFinding,
    FuzzOutcome,
    case_seed,
    process_finding,
    run_fuzz,
)
from repro.fuzz.generate import (
    CaseSpec,
    NodeSpec,
    build_model,
    build_stimuli,
    build_stimulus,
    generate_case,
)
from repro.fuzz.oracle import (
    ALL_RUNGS,
    C_RUNGS,
    PYTHON_RUNGS,
    Divergence,
    OracleReport,
    available_rungs,
    compare_results,
    run_case,
)
from repro.fuzz.shrink import ShrinkStats, drop_node, shrink_case

__all__ = [
    "ALL_RUNGS",
    "C_RUNGS",
    "PYTHON_RUNGS",
    "CaseSpec",
    "NodeSpec",
    "CorpusEntry",
    "Divergence",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzOutcome",
    "OracleReport",
    "ShrinkStats",
    "available_rungs",
    "build_model",
    "build_stimuli",
    "build_stimulus",
    "case_seed",
    "case_signature",
    "compare_results",
    "divergence_signature",
    "drop_node",
    "find_open_duplicate",
    "generate_case",
    "load_entries",
    "load_entry",
    "process_finding",
    "run_case",
    "run_fuzz",
    "save_entry",
    "shrink_case",
]

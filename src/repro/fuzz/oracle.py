"""The differential oracle: one case, every engine rung, bit-for-bit.

The interpreted SSE engine defines the observable semantics; every other
rung must reproduce it exactly:

* ``sse_ac`` — the Accelerator analog (MEX-compiled actor functions);
* ``sse_rac`` — Rapid Accelerator (whole-model generated Python);
* ``accmos`` — the C codegen batch path (compile once, run via the
  descriptor protocol);
* ``accmos_stream`` — the same binary driven through a warm ``--serve``
  process (exercises the framing/stream protocol);
* ``accmos_inproc`` — the same program loaded as a shared library and
  driven through the packed binary ABI (exercises ``repro.inproc``);
* ``accmos_inproc_mt`` — the same library driven thread-parallel: the
  case runs as several copies sharded across private instances
  (exercises the instance pool and the deterministic threaded merge);
* ``accmos_baked`` — the legacy path with stimuli and step count baked
  into the C source (exercises the literal emitters).

Outputs are compared on raw bits (via :func:`signal_bits`, which also
canonicalizes NaN exactly like the generated C), checksums/coverage
bitmaps/diagnosis records on equality.  The Python rungs collect no
coverage or diagnostics, so only the AccMoS rungs are held to those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.codegen.descriptor import descriptors_for
from repro.coverage.report import CoverageReport
from repro.codegen.driver import find_c_compiler, supports_shared_objects
from repro.engines import SimulationOptions, SimulationResult, simulate
from repro.engines.accmos import _resolve_cache, _run_accmos_baked, compile_model
from repro.engines.base import signal_bits
from repro.fuzz.generate import CaseSpec, build_model, build_stimuli
from repro.schedule import preprocess

#: Comparison rungs in execution order.  ``sse`` is the reference and is
#: always run; it is not itself a rung.
ALL_RUNGS = (
    "sse_ac", "sse_rac", "accmos", "accmos_stream", "accmos_inproc",
    "accmos_inproc_mt", "accmos_baked",
)
PYTHON_RUNGS = ("sse_ac", "sse_rac")
C_RUNGS = (
    "accmos", "accmos_stream", "accmos_inproc", "accmos_inproc_mt",
    "accmos_baked",
)
_INPROC_RUNGS = ("accmos_inproc", "accmos_inproc_mt")


def available_rungs() -> tuple[str, ...]:
    """Every rung runnable on this machine (C rungs need a compiler;
    the in-process rungs additionally need working shared objects)."""
    if find_c_compiler() is None:
        return PYTHON_RUNGS
    if supports_shared_objects() is not True:
        return tuple(r for r in ALL_RUNGS if r not in _INPROC_RUNGS)
    return ALL_RUNGS


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between a rung and the SSE reference."""

    rung: str
    kind: str  # error | steps_run | outputs | checksums | halted_at | coverage | diagnostics
    detail: str

    def to_dict(self) -> dict:
        return {"rung": self.rung, "kind": self.kind, "detail": self.detail}


@dataclass
class OracleReport:
    """Everything one differential run of a case produced."""

    case: CaseSpec
    rungs: tuple[str, ...]
    divergences: list[Divergence] = field(default_factory=list)
    results: dict = field(default_factory=dict)  # rung -> SimulationResult
    skipped: list[str] = field(default_factory=list)
    #: The reference run's coverage report (bitmaps per metric).  Always
    #: present when the reference collects coverage — the guided fuzzer
    #: feeds on this, and by the oracle's own invariant the C rungs'
    #: bitmaps are identical, so no extra run is needed to obtain it.
    coverage: Optional[CoverageReport] = None

    @property
    def agreed(self) -> bool:
        return not self.divergences


def _bits_repr(value, dtype) -> str:
    return f"{value!r} (bits {signal_bits(value, dtype):#x})"


def _same_bits(a: dict, b: dict, out_dtypes: dict) -> bool:
    """Bitwise output equality (NaN-safe, like the oracle comparison)."""
    if set(a) != set(b):
        return False
    for name, value in a.items():
        dtype = out_dtypes.get(name)
        if dtype is None:
            if b[name] != value:
                return False
        elif signal_bits(b[name], dtype) != signal_bits(value, dtype):
            return False
    return True


def compare_results(
    reference: SimulationResult,
    other: SimulationResult,
    rung: str,
    out_dtypes: dict,
    *,
    structural: bool,
) -> list[Divergence]:
    """All fields on which ``other`` disagrees with the reference."""
    divergences: list[Divergence] = []

    def diverge(kind: str, detail: str) -> None:
        divergences.append(Divergence(rung=rung, kind=kind, detail=detail))

    if other.steps_run != reference.steps_run:
        diverge("steps_run", f"{reference.steps_run} vs {other.steps_run}")
    if other.halted_at != reference.halted_at:
        diverge("halted_at", f"{reference.halted_at} vs {other.halted_at}")
    for name, value in reference.outputs.items():
        if name not in other.outputs:
            diverge("outputs", f"{name}: missing")
            continue
        dtype = out_dtypes.get(name)
        if dtype is None:
            same = other.outputs[name] == value
        else:
            same = signal_bits(other.outputs[name], dtype) == signal_bits(value, dtype)
        if not same:
            diverge(
                "outputs",
                f"{name}: {_bits_repr(value, dtype)} vs "
                f"{_bits_repr(other.outputs[name], dtype)}"
                if dtype is not None
                else f"{name}: {value!r} vs {other.outputs[name]!r}",
            )
    if other.checksums != reference.checksums:
        keys = sorted(set(reference.checksums) | set(other.checksums))
        diffs = [
            f"{k}: {reference.checksums.get(k):#x} vs {other.checksums.get(k):#x}"
            for k in keys
            if reference.checksums.get(k) != other.checksums.get(k)
        ]
        diverge("checksums", "; ".join(diffs))
    if structural:
        if reference.coverage is not None:
            if other.coverage is None:
                diverge("coverage", "missing coverage report")
            elif other.coverage.bitmaps != reference.coverage.bitmaps:
                diverge(
                    "coverage",
                    f"[{reference.coverage.summary()}] vs "
                    f"[{other.coverage.summary()}]",
                )
        ref_diag = [(e.path, e.kind.value, e.first_step, e.count)
                    for e in reference.diagnostics]
        oth_diag = [(e.path, e.kind.value, e.first_step, e.count)
                    for e in other.diagnostics]
        if oth_diag != ref_diag:
            diverge("diagnostics", f"{ref_diag} vs {oth_diag}")
    return divergences


def run_case(
    case: CaseSpec,
    *,
    rungs: Optional[Sequence[str]] = None,
    keep_results: bool = False,
    timeout_seconds: Optional[float] = 120.0,
    cache=False,
) -> OracleReport:
    """Run one case through the reference and every requested rung.

    A rung that *raises* is itself a divergence (kind ``error``) — a
    generated case must never crash one engine and not the others.
    Errors during the reference run propagate: they mean the case is
    bad, not that the engines disagree.

    ``cache`` follows the engine convention: ``False`` (the default)
    compiles fresh every time — blind fuzzing rarely revisits a binary,
    and a cold cache is itself part of what the oracle exercises.  Pass
    ``None`` for the default artifact cache (the guided fuzzer does:
    its mutants mostly share a structure, so recompiles are pure waste)
    or an explicit :class:`ArtifactCache`.
    """
    rungs = tuple(rungs) if rungs is not None else available_rungs()
    report = OracleReport(case=case, rungs=rungs)

    model = build_model(case)
    prog = preprocess(model)
    out_dtypes = {b.name: b.dtype for b in prog.outports}
    options = SimulationOptions(steps=case.steps)
    resolved_cache = _resolve_cache(cache)

    reference = simulate(prog, build_stimuli(case), engine="sse", options=options)
    report.coverage = reference.coverage
    if keep_results:
        report.results["sse"] = reference

    def record(rung: str, runner) -> None:
        try:
            result = runner()
        except Exception as exc:  # noqa: BLE001 — engine crash = divergence
            report.divergences.append(Divergence(
                rung=rung, kind="error",
                detail=f"{type(exc).__name__}: {exc}",
            ))
            return
        report.divergences.extend(compare_results(
            reference, result, rung, out_dtypes,
            structural=rung in C_RUNGS,
        ))
        if keep_results:
            report.results[rung] = result

    for rung in PYTHON_RUNGS:
        if rung in rungs:
            record(rung, lambda r=rung: simulate(
                prog, build_stimuli(case), engine=r, options=options
            ))

    wanted_c = [
        r
        for r in (
            "accmos", "accmos_stream", "accmos_inproc", "accmos_inproc_mt",
        )
        if r in rungs
    ]
    if wanted_c:
        if descriptors_for(prog, build_stimuli(case)) is None:
            report.skipped.extend(wanted_c)
        else:
            compiled = compile_model(
                prog, options,
                cache=resolved_cache if resolved_cache is not None else False,
            )
            if "accmos" in wanted_c:
                record("accmos", lambda: compiled.run(
                    build_stimuli(case), options,
                    timeout_seconds=timeout_seconds,
                ))
            if "accmos_stream" in wanted_c:
                def stream_once():
                    (outcome,) = list(compiled.run_stream(
                        [(build_stimuli(case), options)],
                        timeout_seconds=timeout_seconds,
                    ))
                    if isinstance(outcome, Exception):
                        raise outcome
                    return outcome
                record("accmos_stream", stream_once)
            if "accmos_inproc" in wanted_c:
                def inproc_once():
                    (outcome,) = list(compiled.run_inproc(
                        [(build_stimuli(case), options)],
                        timeout_seconds=timeout_seconds,
                    ))
                    if isinstance(outcome, Exception):
                        raise outcome
                    return outcome
                record("accmos_inproc", inproc_once)
            if "accmos_inproc_mt" in wanted_c:
                def inproc_mt():
                    # Three copies of the case across three private
                    # instances: exercises the pool, the shard merge,
                    # and inter-instance isolation.  Every copy must
                    # agree with the reference; the first is compared.
                    outcomes = list(compiled.run_inproc(
                        [(build_stimuli(case), options)] * 3,
                        timeout_seconds=timeout_seconds,
                        threads=3,
                    ))
                    for outcome in outcomes:
                        if isinstance(outcome, Exception):
                            raise outcome
                    first = outcomes[0]
                    for other in outcomes[1:]:
                        if other.checksums != first.checksums or (
                            other.outputs != first.outputs
                            and not _same_bits(
                                first.outputs, other.outputs, out_dtypes
                            )
                        ):
                            raise AssertionError(
                                "threaded copies of one case disagree"
                            )
                    return first
                record("accmos_inproc_mt", inproc_mt)

    if "accmos_baked" in rungs:
        record("accmos_baked", lambda: _run_accmos_baked(
            prog, build_stimuli(case), options,
            workdir=None, keep_artifacts=False, cache=resolved_cache,
            timeout_seconds=timeout_seconds,
        ))
    return report

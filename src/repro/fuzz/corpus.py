"""The persistent reproducer corpus.

Every divergence the fuzzer finds is shrunk and checked in as one JSON
file under ``tests/corpus/``.  A pytest harness replays the corpus on
every run: entries with ``status: "fixed"`` are regression tests (all
rungs must agree), entries with ``status: "open"`` are known-failing
reproducers awaiting a fix (replayed as xfail, with the follow-up note
kept alongside).

Entry IDs are content hashes of the canonical case JSON, so re-finding
the same minimal reproducer never duplicates a file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.fuzz.generate import CaseSpec

#: Where the checked-in corpus lives, relative to the repository root.
DEFAULT_CORPUS_DIRNAME = "tests/corpus"


@dataclass
class CorpusEntry:
    """One checked-in reproducer."""

    case: CaseSpec
    status: str = "open"  # "open" (known failing) | "fixed" (regression test)
    divergences: list[dict] = field(default_factory=list)
    note: str = ""
    fuzz_seed: Optional[int] = None

    def to_dict(self) -> dict:
        d = {
            "status": self.status,
            "note": self.note,
            "fuzz_seed": self.fuzz_seed,
            "divergences": list(self.divergences),
            "case": self.case.to_dict(),
        }
        if self.divergences:
            d["signature"] = divergence_signature(self.divergences)
        return d

    @staticmethod
    def from_dict(d: dict) -> "CorpusEntry":
        return CorpusEntry(
            case=CaseSpec.from_dict(d["case"]),
            status=d.get("status", "open"),
            divergences=list(d.get("divergences", [])),
            note=d.get("note", ""),
            fuzz_seed=d.get("fuzz_seed"),
        )

    @property
    def signature(self) -> str:
        return divergence_signature(self.divergences)


def divergence_signature(divergences: list[dict]) -> str:
    """``rung/kind/field`` identity of a divergence's first disagreement.

    Distinct fuzz seeds frequently shrink to the *same* minimal
    reproducer of one underlying bug; keying open entries by this
    signature (rather than the full case hash) lets the campaign skip
    re-saving what is, for a human, the same finding.  ``field`` is the
    named output/checksum that differed first, empty for kinds without a
    per-field breakdown (errors, steps_run, coverage...).
    """
    if not divergences:
        return ""
    first = divergences[0]
    kind = first.get("kind", "")
    field_name = ""
    if kind in ("outputs", "checksums"):
        field_name = str(first.get("detail", "")).split(":", 1)[0].strip()
    return f"{first.get('rung', '')}/{kind}/{field_name}"


def find_open_duplicate(
    corpus_dir: Path, signature: str
) -> Optional[Path]:
    """Path of an existing ``open`` entry with this divergence signature,
    or None.  Entries without recorded divergences never match."""
    if not signature:
        return None
    for path, entry in load_entries(corpus_dir):
        if entry.status == "open" and entry.signature == signature:
            return path
    return None


def case_signature(case: CaseSpec) -> str:
    """Stable content hash of a case (names the corpus file)."""
    canonical = json.dumps(case.to_dict(), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def entry_path(corpus_dir: Path, entry: CorpusEntry) -> Path:
    return Path(corpus_dir) / f"case-{case_signature(entry.case)}.json"


def save_entry(corpus_dir: Path, entry: CorpusEntry) -> Path:
    """Write (or overwrite) the entry in the corpus; returns its path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = entry_path(corpus_dir, entry)
    path.write_text(json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: Path) -> CorpusEntry:
    return CorpusEntry.from_dict(json.loads(Path(path).read_text()))


def load_entries(corpus_dir: Path) -> list[tuple[Path, CorpusEntry]]:
    """Every corpus entry, sorted by file name for stable test ordering."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return [
        (path, load_entry(path))
        for path in sorted(corpus_dir.glob("case-*.json"))
    ]

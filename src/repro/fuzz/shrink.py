"""Automatic shrinking: delta-debug a diverging case to a minimal one.

Given a case and a ``still_fails`` predicate (normally "the oracle still
reports a divergence"), the shrinker greedily applies reduction passes
until a fixpoint or the attempt budget runs out:

1. **drop nodes** — remove one node plus every transitive consumer
   (largest cascades first, so one accepted candidate can erase a whole
   arm of the graph);
2. **shrink steps** — try 1, then halve repeatedly;
3. **simplify stimuli** — replace each generator with a constant
   pinning its first emitted value;
4. **shrink params** — truncate lookup tables, sequences, polynomial
   coefficients, and delay lengths.

Candidates that fail to build (or crash the predicate) are simply
rejected, so the result is always a *valid* reproducer.  The predicate
is the only thing consulted — the shrinker never assumes which rung or
field diverged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.fuzz.generate import CaseSpec, NodeSpec, build_stimulus

Predicate = Callable[[CaseSpec], bool]


@dataclass
class ShrinkStats:
    """What one shrink run did."""

    attempts: int = 0
    reductions: int = 0
    initial_actors: int = 0
    final_actors: int = 0
    initial_steps: int = 0
    final_steps: int = 0
    deadline_hit: bool = False  # the campaign's wall budget cut us off

    def summary(self) -> str:
        cut = " [deadline]" if self.deadline_hit else ""
        return (
            f"{self.initial_actors} -> {self.final_actors} actors, "
            f"{self.initial_steps} -> {self.final_steps} steps "
            f"({self.reductions} reduction(s) in {self.attempts} attempt(s))"
            f"{cut}"
        )


def _consumers(case: CaseSpec) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {n.name: set() for n in case.nodes}
    for node in case.nodes:
        for src in node.inputs:
            out.setdefault(src, set()).add(node.name)
    return out


def drop_node(case: CaseSpec, name: str) -> Optional[CaseSpec]:
    """Remove ``name`` and every transitive consumer; ``None`` when the
    removal would leave no value-producing node."""
    consumers = _consumers(case)
    dead = set()
    frontier = [name]
    while frontier:
        current = frontier.pop()
        if current in dead:
            continue
        dead.add(current)
        frontier.extend(consumers.get(current, ()))
    nodes = [n for n in case.nodes if n.name not in dead]
    if not any(n.block_type != "Inport" for n in nodes):
        return None
    # Inports that lost every consumer go too (with their stimuli).
    used = {src for n in nodes for src in n.inputs}
    nodes = [
        n for n in nodes
        if n.block_type != "Inport" or n.name in used
    ]
    live_inports = {n.name for n in nodes if n.block_type == "Inport"}
    stimuli = {k: v for k, v in case.stimuli.items() if k in live_inports}
    return replace(case, nodes=nodes, stimuli=stimuli)


def _cascade_size(case: CaseSpec, name: str) -> int:
    consumers = _consumers(case)
    seen = set()
    frontier = [name]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(consumers.get(current, ()))
    return len(seen)


def _first_value(spec: dict):
    stim = build_stimulus(spec)
    stim.reset()
    return stim.next()


def _shrunk_params(node: NodeSpec) -> Optional[NodeSpec]:
    """A smaller-parameter version of ``node``, or None if already minimal."""
    p = dict(node.params)
    if node.block_type == "Lookup1D" and len(p.get("breakpoints", ())) > 2:
        p["breakpoints"] = list(p["breakpoints"][:2])
        p["table"] = list(p["table"][:2])
        return replace(node, params=p)
    if node.block_type == "DirectLookup" and len(p.get("table", ())) > 1:
        p["table"] = list(p["table"][:1])
        return replace(node, params=p)
    if node.block_type == "Polynomial" and len(p.get("coeffs", ())) > 1:
        p["coeffs"] = list(p["coeffs"][:1])
        return replace(node, params=p)
    if node.block_type == "Delay" and p.get("length", 1) > 1:
        p["length"] = 1
        return replace(node, params=p)
    return None


class _Shrinker:
    def __init__(
        self,
        still_fails: Predicate,
        max_attempts: int,
        deadline: Optional[float] = None,
    ):
        self._predicate = still_fails
        self._max_attempts = max_attempts
        self._deadline = deadline
        self.stats = ShrinkStats()

    def _try(self, candidate: Optional[CaseSpec]) -> bool:
        """True when the candidate is valid AND still reproduces."""
        if candidate is None:
            return False
        if not self._budget_left():
            return False
        self.stats.attempts += 1
        try:
            if self._predicate(candidate):
                self.stats.reductions += 1
                return True
        except Exception:  # noqa: BLE001 — unbuildable candidate: reject
            pass
        return False

    def _budget_left(self) -> bool:
        if self.stats.attempts >= self._max_attempts:
            return False
        if (
            self._deadline is not None
            and time.perf_counter() >= self._deadline
        ):
            self.stats.deadline_hit = True
            return False
        return True

    # -- passes --------------------------------------------------------
    def pass_drop_nodes(self, case: CaseSpec) -> CaseSpec:
        progress = True
        while progress and self._budget_left():
            progress = False
            candidates = [n.name for n in case.nodes]
            candidates.sort(key=lambda n: -_cascade_size(case, n))
            for name in candidates:
                smaller = drop_node(case, name)
                if self._try(smaller):
                    case = smaller
                    progress = True
                    break
        return case

    def pass_shrink_steps(self, case: CaseSpec) -> CaseSpec:
        one = replace(case, steps=1)
        if case.steps > 1 and self._try(one):
            return one
        while case.steps > 1 and self._budget_left():
            smaller = replace(case, steps=case.steps // 2)
            if not self._try(smaller):
                break
            case = smaller
        return case

    def pass_simplify_stimuli(self, case: CaseSpec) -> CaseSpec:
        for name, spec in list(case.stimuli.items()):
            if spec.get("kind") == "constant":
                continue
            simplified = dict(case.stimuli)
            simplified[name] = {"kind": "constant", "value": _first_value(spec)}
            candidate = replace(case, stimuli=simplified)
            if self._try(candidate):
                case = candidate
        return case

    def pass_shrink_params(self, case: CaseSpec) -> CaseSpec:
        for i, node in enumerate(case.nodes):
            smaller_node = _shrunk_params(node)
            if smaller_node is None:
                continue
            nodes = list(case.nodes)
            nodes[i] = smaller_node
            candidate = replace(case, nodes=nodes)
            if self._try(candidate):
                case = candidate
        return case


def shrink_case(
    case: CaseSpec,
    still_fails: Predicate,
    *,
    max_attempts: int = 250,
    deadline: Optional[float] = None,
) -> tuple[CaseSpec, ShrinkStats]:
    """Minimize ``case`` while ``still_fails`` keeps returning True.

    The input case is assumed to fail already; the returned case is the
    smallest failing one found within ``max_attempts`` predicate calls.
    ``deadline`` (a ``time.perf_counter()`` instant) additionally bounds
    the run by wall clock — when a campaign-level time budget is nearly
    spent, shrinking stops at the best reduction found so far and
    ``stats.deadline_hit`` records that the budget cut it off.
    """
    shrinker = _Shrinker(still_fails, max_attempts, deadline)
    shrinker.stats.initial_actors = case.n_actors
    shrinker.stats.initial_steps = case.steps

    previous = None
    while previous is not case and shrinker._budget_left():
        previous = case
        case = shrinker.pass_drop_nodes(case)
        case = shrinker.pass_shrink_steps(case)
        case = shrinker.pass_simplify_stimuli(case)
        case = shrinker.pass_shrink_params(case)

    shrinker.stats.final_actors = case.n_actors
    shrinker.stats.final_steps = case.steps
    return case, shrinker.stats

"""The fuzz campaign loop: generate -> oracle -> shrink -> corpus.

Divergences do not stop the campaign — every case runs, every failure
is shrunk (when shrinking is enabled) and written to the corpus as an
``open`` entry for the replay harness to track until it is fixed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.generate import generate_case
from repro.fuzz.oracle import ALL_RUNGS, OracleReport, available_rungs, run_case
from repro.fuzz.shrink import shrink_case


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    cases: int = 100
    seed: int = 0
    steps: Optional[int] = None  # None = random per case
    max_actors: int = 14
    rungs: Optional[Sequence[str]] = None  # None = all available
    time_budget: Optional[float] = None  # wall seconds for the whole campaign
    shrink: bool = True
    max_shrink_attempts: int = 250
    corpus_dir: Optional[Path] = None  # None = don't persist reproducers
    timeout_seconds: Optional[float] = 120.0


@dataclass
class FuzzFinding:
    """One divergent case, possibly shrunk, possibly persisted."""

    seed: int
    report: OracleReport
    shrunk_report: Optional[OracleReport] = None
    shrink_summary: str = ""
    corpus_path: Optional[Path] = None

    @property
    def final_report(self) -> OracleReport:
        return self.shrunk_report or self.report


@dataclass
class FuzzOutcome:
    """What a campaign did."""

    rungs: tuple[str, ...]
    cases_run: int = 0
    elapsed: float = 0.0
    budget_exhausted: bool = False
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def divergent(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        verdict = (
            "all rungs agree" if not self.findings
            else f"{self.divergent} divergent case(s)"
        )
        budget = " (time budget hit)" if self.budget_exhausted else ""
        return (
            f"fuzz: {self.cases_run} case(s) in {self.elapsed:.1f}s "
            f"across {len(self.rungs)} rung(s): {verdict}{budget}"
        )


def _case_seed(base_seed: int, index: int) -> int:
    # Disjoint per-case streams for any base seed.
    return (base_seed << 20) + index


def run_fuzz(
    config: FuzzConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """Run one campaign; see :class:`FuzzConfig`.

    Raises ``ValueError`` when ``config.rungs`` names a rung that does
    not exist (a typo would otherwise silently fuzz nothing).
    """
    if config.rungs:
        unknown = [r for r in config.rungs if r not in ALL_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown rung(s): {', '.join(sorted(unknown))}; "
                f"valid rungs: {', '.join(ALL_RUNGS)}"
            )
    rungs = tuple(config.rungs) if config.rungs else available_rungs()
    outcome = FuzzOutcome(rungs=rungs)
    say = progress or (lambda _msg: None)
    started = time.perf_counter()

    for index in range(config.cases):
        if (
            config.time_budget is not None
            and time.perf_counter() - started >= config.time_budget
        ):
            outcome.budget_exhausted = True
            break
        seed = _case_seed(config.seed, index)
        case = generate_case(
            seed, max_actors=config.max_actors, steps=config.steps
        )
        case_started = time.perf_counter()
        with telemetry.span("fuzz.case", seed=seed, actors=case.n_actors):
            report = run_case(
                case, rungs=rungs, timeout_seconds=config.timeout_seconds
            )
        telemetry.counter_inc("fuzz.cases")
        telemetry.observe(
            "fuzz.case_seconds", time.perf_counter() - case_started
        )
        outcome.cases_run += 1
        if report.agreed:
            continue

        telemetry.counter_inc("fuzz.divergences")
        finding = FuzzFinding(seed=seed, report=report)
        outcome.findings.append(finding)
        say(
            f"case {index} (seed {seed}): {len(report.divergences)} "
            f"divergence(s), first: {report.divergences[0].rung} "
            f"{report.divergences[0].kind}"
        )

        shrunk = case
        if config.shrink:
            def still_fails(candidate) -> bool:
                telemetry.counter_inc("fuzz.shrink_steps")
                return not run_case(
                    candidate, rungs=rungs,
                    timeout_seconds=config.timeout_seconds,
                ).agreed

            with telemetry.span("fuzz.shrink", seed=seed):
                shrunk, stats = shrink_case(
                    case, still_fails,
                    max_attempts=config.max_shrink_attempts,
                )
            finding.shrink_summary = stats.summary()
            finding.shrunk_report = run_case(
                shrunk, rungs=rungs, timeout_seconds=config.timeout_seconds
            )
            say(f"  shrunk: {stats.summary()}")

        if config.corpus_dir is not None:
            entry = CorpusEntry(
                case=shrunk,
                status="open",
                divergences=[
                    d.to_dict() for d in finding.final_report.divergences
                ],
                note=(
                    "Found by `repro fuzz`; fix the divergence and flip "
                    "status to \"fixed\" so this becomes a regression test."
                ),
                fuzz_seed=seed,
            )
            finding.corpus_path = save_entry(config.corpus_dir, entry)
            telemetry.counter_inc("fuzz.corpus_entries")
            say(f"  reproducer -> {finding.corpus_path}")

    outcome.elapsed = time.perf_counter() - started
    return outcome

"""The fuzz campaign loop: generate -> oracle -> shrink -> corpus.

Divergences do not stop the campaign — every case runs, every failure
is shrunk (when shrinking is enabled) and written to the corpus as an
``open`` entry for the replay harness to track until it is fixed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.fuzz.corpus import (
    CorpusEntry,
    divergence_signature,
    find_open_duplicate,
    save_entry,
)
from repro.fuzz.generate import CaseSpec, generate_case
from repro.fuzz.oracle import ALL_RUNGS, OracleReport, available_rungs, run_case
from repro.fuzz.shrink import shrink_case


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    cases: int = 100
    seed: int = 0
    steps: Optional[int] = None  # None = random per case
    max_actors: int = 14
    rungs: Optional[Sequence[str]] = None  # None = all available
    time_budget: Optional[float] = None  # wall seconds for the whole campaign
    shrink: bool = True
    max_shrink_attempts: int = 250
    corpus_dir: Optional[Path] = None  # None = don't persist reproducers
    timeout_seconds: Optional[float] = 120.0


@dataclass
class FuzzFinding:
    """One divergent case, possibly shrunk, possibly persisted."""

    seed: int
    report: OracleReport
    shrunk_report: Optional[OracleReport] = None
    shrink_summary: str = ""
    corpus_path: Optional[Path] = None

    @property
    def final_report(self) -> OracleReport:
        return self.shrunk_report or self.report


@dataclass
class FuzzOutcome:
    """What a campaign did."""

    rungs: tuple[str, ...]
    cases_run: int = 0
    elapsed: float = 0.0
    budget_exhausted: bool = False
    duplicates: int = 0  # findings skipped: same divergence signature already open
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def divergent(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        verdict = (
            "all rungs agree" if not self.findings
            else f"{self.divergent} divergent case(s)"
        )
        budget = " (time budget hit)" if self.budget_exhausted else ""
        dupes = (
            f", {self.duplicates} duplicate(s) skipped" if self.duplicates else ""
        )
        return (
            f"fuzz: {self.cases_run} case(s) in {self.elapsed:.1f}s "
            f"across {len(self.rungs)} rung(s): {verdict}{dupes}{budget}"
        )


def case_seed(base_seed: int, index: int) -> int:
    """The derived seed of campaign case ``index``.

    Disjointness contract: for base seeds below ``2**32`` the streams of
    ``base_seed`` and ``base_seed + 1`` never overlap, because the index
    occupies the low 32 bits exclusively.  (The old 20-bit shift broke
    this quietly: case ``2**20`` of seed ``s`` equalled case 0 of seed
    ``s + 1``.)  Indices at or past ``2**32`` would spill into the base
    seed's bits, so they are rejected outright.
    """
    if not 0 <= index < 2**32:
        raise ValueError(
            f"case index {index} outside [0, 2**32): it would collide "
            "with another base seed's stream"
        )
    return (base_seed << 32) + index


#: Backwards-compatible alias (pre-existing callers used the old name).
_case_seed = case_seed


def process_finding(
    case: CaseSpec,
    report: OracleReport,
    *,
    seed: int,
    rungs: Sequence[str],
    shrink: bool = True,
    max_shrink_attempts: int = 250,
    timeout_seconds: Optional[float] = 120.0,
    corpus_dir: Optional[Path] = None,
    deadline: Optional[float] = None,
    say: Callable[[str], None] = lambda _msg: None,
) -> tuple[FuzzFinding, bool]:
    """Shrink a divergent case and persist the reproducer.

    The shared back half of both campaign drivers (blind and guided):
    shrink (bounded by ``max_shrink_attempts`` and the campaign
    ``deadline``), then — if a corpus is configured — skip persisting
    when an ``open`` entry with the same divergence signature already
    exists, else save.  Returns ``(finding, duplicate)``; on the
    duplicate path ``finding.corpus_path`` points at the existing entry.
    """
    finding = FuzzFinding(seed=seed, report=report)

    shrunk = case
    if shrink:
        def still_fails(candidate) -> bool:
            telemetry.counter_inc("fuzz.shrink_steps")
            return not run_case(
                candidate, rungs=rungs, timeout_seconds=timeout_seconds,
            ).agreed

        with telemetry.span("fuzz.shrink", seed=seed):
            shrunk, stats = shrink_case(
                case, still_fails,
                max_attempts=max_shrink_attempts,
                deadline=deadline,
            )
        finding.shrink_summary = stats.summary()
        finding.shrunk_report = run_case(
            shrunk, rungs=rungs, timeout_seconds=timeout_seconds
        )
        say(f"  shrunk: {stats.summary()}")

    duplicate = False
    if corpus_dir is not None:
        divergences = [d.to_dict() for d in finding.final_report.divergences]
        signature = divergence_signature(divergences)
        existing = find_open_duplicate(corpus_dir, signature)
        if existing is not None:
            duplicate = True
            finding.corpus_path = existing
            telemetry.counter_inc("fuzz.corpus_duplicates")
            say(f"  duplicate of {existing.name} ({signature}); not saved")
        else:
            entry = CorpusEntry(
                case=shrunk,
                status="open",
                divergences=divergences,
                note=(
                    "Found by `repro fuzz`; fix the divergence and flip "
                    "status to \"fixed\" so this becomes a regression test."
                ),
                fuzz_seed=seed,
            )
            finding.corpus_path = save_entry(corpus_dir, entry)
            telemetry.counter_inc("fuzz.corpus_entries")
            say(f"  reproducer -> {finding.corpus_path}")
    return finding, duplicate


def run_fuzz(
    config: FuzzConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """Run one campaign; see :class:`FuzzConfig`.

    Raises ``ValueError`` when ``config.rungs`` names a rung that does
    not exist (a typo would otherwise silently fuzz nothing).
    """
    if config.rungs:
        unknown = [r for r in config.rungs if r not in ALL_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown rung(s): {', '.join(sorted(unknown))}; "
                f"valid rungs: {', '.join(ALL_RUNGS)}"
            )
    rungs = tuple(config.rungs) if config.rungs else available_rungs()
    outcome = FuzzOutcome(rungs=rungs)
    say = progress or (lambda _msg: None)
    started = time.perf_counter()
    # The budget is enforced at the top of the case loop AND inside the
    # shrinker — a single expensive shrink would otherwise blow far past
    # it between loop checks.
    deadline = (
        started + config.time_budget
        if config.time_budget is not None else None
    )

    for index in range(config.cases):
        if deadline is not None and time.perf_counter() >= deadline:
            outcome.budget_exhausted = True
            break
        seed = case_seed(config.seed, index)
        case = generate_case(
            seed, max_actors=config.max_actors, steps=config.steps
        )
        case_started = time.perf_counter()
        with telemetry.span("fuzz.case", seed=seed, actors=case.n_actors):
            report = run_case(
                case, rungs=rungs, timeout_seconds=config.timeout_seconds
            )
        telemetry.counter_inc("fuzz.cases")
        telemetry.observe(
            "fuzz.case_seconds", time.perf_counter() - case_started
        )
        outcome.cases_run += 1
        if report.agreed:
            continue

        telemetry.counter_inc("fuzz.divergences")
        say(
            f"case {index} (seed {seed}): {len(report.divergences)} "
            f"divergence(s), first: {report.divergences[0].rung} "
            f"{report.divergences[0].kind}"
        )
        finding, duplicate = process_finding(
            case, report,
            seed=seed,
            rungs=rungs,
            shrink=config.shrink,
            max_shrink_attempts=config.max_shrink_attempts,
            timeout_seconds=config.timeout_seconds,
            corpus_dir=config.corpus_dir,
            deadline=deadline,
            say=say,
        )
        outcome.findings.append(finding)
        if duplicate:
            outcome.duplicates += 1

    if deadline is not None and time.perf_counter() >= deadline:
        outcome.budget_exhausted = True  # shrinking ate the remainder
    outcome.elapsed = time.perf_counter() - started
    return outcome

"""Seeded random-model generation for the differential fuzzer.

A fuzz case is a :class:`CaseSpec`: a serializable recipe (node list,
step count, stimulus specs) from which the concrete :class:`Model` and
stimuli are rebuilt on demand.  Keeping the *recipe* rather than the
built model is what makes shrinking and corpus replay possible — the
shrinker edits the recipe and rebuilds, and a corpus entry is just the
recipe as JSON.

The generator draws from the full actor registry: every executable
block type is reachable, including the structural ones (enabled
subsystems + Merge via the ``@guarded`` composite, data stores via
``@store``).  Connections are random but valid by construction: each
node consumes only earlier nodes, and dtype mismatches are bridged with
explicit DataTypeConversion nodes that live in the spec like any other
node (so the shrinker can drop them too).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.dtypes import DType
from repro.model.builder import ModelBuilder, Ref
from repro.model.model import Model
from repro.stimuli.generators import (
    ConstantStimulus,
    IntRandomStimulus,
    PulseStimulus,
    RampStimulus,
    SequenceStimulus,
    SineStimulus,
    StepStimulus,
    UniformRandomStimulus,
)

_DTYPE_BY_SHORT = {d.short_name: d for d in DType}

INT_DTYPES = (
    DType.I8, DType.I16, DType.I32, DType.I64,
    DType.U8, DType.U16, DType.U32, DType.U64,
)
FLOAT_DTYPES = (DType.F64, DType.F32)
NUMERIC_DTYPES = INT_DTYPES + FLOAT_DTYPES

#: Pseudo block types expanded into small structural patterns at build
#: time (the only way the generator reaches Merge/EnablePort/DataStore*).
GUARDED = "@guarded"
STORE = "@store"

_SINK_TYPES = {"Display", "Terminator", "Scope"}


@dataclass(frozen=True)
class NodeSpec:
    """One node of a fuzz case: a registry block type or a composite."""

    name: str
    block_type: str
    inputs: tuple[str, ...] = ()
    dtype: Optional[str] = None  # output dtype short name; None = inferred
    operator: Optional[str] = None
    params: dict = field(default_factory=dict)

    @property
    def out_dtype(self) -> Optional[DType]:
        return _DTYPE_BY_SHORT[self.dtype] if self.dtype else None

    def to_dict(self) -> dict:
        d = {"name": self.name, "block_type": self.block_type}
        if self.inputs:
            d["inputs"] = list(self.inputs)
        if self.dtype:
            d["dtype"] = self.dtype
        if self.operator is not None:
            d["operator"] = self.operator
        if self.params:
            d["params"] = dict(self.params)
        return d

    @staticmethod
    def from_dict(d: dict) -> "NodeSpec":
        return NodeSpec(
            name=d["name"],
            block_type=d["block_type"],
            inputs=tuple(d.get("inputs", ())),
            dtype=d.get("dtype"),
            operator=d.get("operator"),
            params=dict(d.get("params", {})),
        )


@dataclass
class CaseSpec:
    """A complete, serializable fuzz case."""

    name: str
    seed: int
    steps: int
    nodes: list[NodeSpec] = field(default_factory=list)
    stimuli: dict[str, dict] = field(default_factory=dict)

    @property
    def n_actors(self) -> int:
        """Spec-level size (what the shrinker minimizes)."""
        return sum(1 for n in self.nodes if n.block_type != "Inport")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "steps": self.steps,
            "nodes": [n.to_dict() for n in self.nodes],
            "stimuli": {k: dict(v) for k, v in self.stimuli.items()},
        }

    @staticmethod
    def from_dict(d: dict) -> "CaseSpec":
        return CaseSpec(
            name=d["name"],
            seed=int(d.get("seed", 0)),
            steps=int(d["steps"]),
            nodes=[NodeSpec.from_dict(n) for n in d["nodes"]],
            stimuli={k: dict(v) for k, v in d.get("stimuli", {}).items()},
        )


# ----------------------------------------------------------------------
# stimulus specs
# ----------------------------------------------------------------------
def build_stimulus(spec: dict):
    """Instantiate one stimulus from its serialized spec."""
    kind = spec["kind"]
    if kind == "constant":
        return ConstantStimulus(spec["value"])
    if kind == "sequence":
        return SequenceStimulus(spec["values"])
    if kind == "ramp":
        return RampStimulus(start=spec["start"], slope=spec["slope"])
    if kind == "step":
        return StepStimulus(
            at=spec["at"], before=spec["before"], after=spec["after"]
        )
    if kind == "pulse":
        return PulseStimulus(
            period=spec["period"], duty=spec["duty"],
            high=spec["high"], low=spec["low"],
        )
    if kind == "sine":
        return SineStimulus(
            amplitude=spec["amplitude"], period_steps=spec["period_steps"],
            phase=spec["phase"], bias=spec["bias"],
        )
    if kind == "uniform":
        return UniformRandomStimulus(spec["seed"], lo=spec["lo"], hi=spec["hi"])
    if kind == "int_random":
        return IntRandomStimulus(spec["seed"], spec["lo"], spec["hi"])
    raise ValueError(f"unknown stimulus kind {kind!r}")


def build_stimuli(case: CaseSpec) -> dict:
    """Fresh stimulus instances for every inport of the case."""
    return {name: build_stimulus(spec) for name, spec in case.stimuli.items()}


def _int_value(rng: random.Random, dtype: DType) -> int:
    if rng.random() < 0.12:  # boundary values provoke wrap diagnostics
        return rng.choice([dtype.min_value, dtype.max_value])
    lo = max(dtype.min_value, -30)
    hi = min(dtype.max_value, 30)
    return rng.randint(lo, hi)


def _float_value(rng: random.Random) -> float:
    if rng.random() < 0.04:  # non-finite params are first-class inputs
        return rng.choice([math.nan, math.inf, -math.inf])
    return round(rng.uniform(-10.0, 10.0), 3)


def _gen_stimulus(rng: random.Random, dtype: DType, steps: int) -> dict:
    if dtype.is_float:
        kind = rng.choice(
            ["constant", "sequence", "ramp", "step", "pulse", "sine", "uniform"]
        )
        if kind == "constant":
            return {"kind": "constant", "value": _float_value(rng)}
        if kind == "sequence":
            n = rng.randint(2, 6)
            return {"kind": "sequence",
                    "values": [_float_value(rng) for _ in range(n)]}
        if kind == "ramp":
            return {"kind": "ramp", "start": round(rng.uniform(-2, 2), 3),
                    "slope": round(rng.uniform(-1, 1), 3)}
        if kind == "step":
            return {"kind": "step", "at": rng.randint(0, max(1, steps - 1)),
                    "before": _float_value(rng), "after": _float_value(rng)}
        if kind == "pulse":
            period = rng.randint(2, 8)
            return {"kind": "pulse", "period": period,
                    "duty": rng.randint(1, period - 1),
                    "high": round(rng.uniform(0, 5), 3),
                    "low": round(rng.uniform(-5, 0), 3)}
        if kind == "sine":
            return {"kind": "sine", "amplitude": round(rng.uniform(0.5, 4), 3),
                    "period_steps": rng.randint(3, 40),
                    "phase": round(rng.uniform(0, 6.28), 3),
                    "bias": round(rng.uniform(-1, 1), 3)}
        lo = round(rng.uniform(-8, 0), 3)
        return {"kind": "uniform", "seed": rng.randint(1, 10_000),
                "lo": lo, "hi": round(lo + rng.uniform(0.5, 10), 3)}
    # integer inport
    kind = rng.choice(["constant", "sequence", "step", "pulse", "int_random"])
    if kind == "constant":
        return {"kind": "constant", "value": _int_value(rng, dtype)}
    if kind == "sequence":
        n = rng.randint(2, 6)
        return {"kind": "sequence",
                "values": [_int_value(rng, dtype) for _ in range(n)]}
    if kind == "step":
        return {"kind": "step", "at": rng.randint(0, max(1, steps - 1)),
                "before": _int_value(rng, dtype), "after": _int_value(rng, dtype)}
    if kind == "pulse":
        period = rng.randint(2, 8)
        return {"kind": "pulse", "period": period,
                "duty": rng.randint(1, period - 1),
                "high": _int_value(rng, dtype), "low": _int_value(rng, dtype)}
    lo = max(dtype.min_value, -40)
    hi = min(dtype.max_value, 40)
    return {"kind": "int_random", "seed": rng.randint(1, 10_000),
            "lo": lo, "hi": hi}


# ----------------------------------------------------------------------
# generation context
# ----------------------------------------------------------------------
class _Gen:
    """Mutable state threaded through the recipe functions."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.nodes: list[NodeSpec] = []
        #: name -> DType of every value-producing node
        self.refs: dict[str, DType] = {}
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"n{self._counter}"

    def emit(
        self,
        block_type: str,
        inputs: Sequence[str] = (),
        *,
        dtype: Optional[DType] = None,
        operator: Optional[str] = None,
        params: Optional[dict] = None,
        produces: Optional[DType] = None,
    ) -> str:
        """Append a node; ``produces`` records the pool dtype when the
        builder is left to infer it (``dtype=None``)."""
        name = self.fresh()
        self.nodes.append(NodeSpec(
            name=name, block_type=block_type, inputs=tuple(inputs),
            dtype=dtype.short_name if dtype else None,
            operator=operator, params=dict(params or {}),
        ))
        out = dtype or produces
        if out is not None and block_type not in _SINK_TYPES:
            self.refs[name] = out
        return name

    # -- ref picking ---------------------------------------------------
    def pick(self, pred: Callable[[DType], bool]) -> Optional[str]:
        names = [n for n, d in self.refs.items() if pred(d)]
        return self.rng.choice(names) if names else None

    def pick_num(self) -> Optional[str]:
        return self.pick(lambda d: not d.is_bool)

    def pick_bool(self) -> Optional[str]:
        name = self.pick(lambda d: d.is_bool)
        if name is not None:
            return name
        # Manufacture one: CompareToZero over any numeric ref.
        src = self.pick_num()
        if src is None:
            return None
        op = self.rng.choice(["==", "!=", "<", "<=", ">", ">="])
        return self.emit("CompareToZero", [src], dtype=DType.BOOL, operator=op)

    def coerced(self, src: str, want: DType) -> str:
        """Return ``src`` as a ``want``-typed ref, bridging with a DTC."""
        if self.refs[src] is want:
            return src
        return self.emit("DataTypeConversion", [src], dtype=want)

    def num_as(self, want: DType) -> Optional[str]:
        src = self.pick_num()
        return None if src is None else self.coerced(src, want)

    # -- dtype picking -------------------------------------------------
    def int_dtype(self) -> DType:
        return self.rng.choice(INT_DTYPES)

    def float_dtype(self) -> DType:
        return self.rng.choice(FLOAT_DTYPES)

    def num_dtype(self) -> DType:
        return self.rng.choice(NUMERIC_DTYPES)

    def param_value(self, dtype: DType):
        """A parameter literal conforming to the node's dtype family."""
        if dtype.is_float:
            return _float_value(self.rng)
        return _int_value(self.rng, dtype)


# ----------------------------------------------------------------------
# recipes — one per registry block type (plus the composites)
# ----------------------------------------------------------------------
def _r_constant(g: _Gen) -> bool:
    d = g.num_dtype()
    g.emit("Constant", dtype=d, params={"value": g.param_value(d)})
    return True


def _r_clock(g: _Gen) -> bool:
    g.emit("Clock", dtype=DType.F64)
    return True


def _r_ground(g: _Gen) -> bool:
    g.emit("Ground", dtype=DType.F64)
    return True


def _r_counter(g: _Gen) -> bool:
    g.emit("Counter", dtype=DType.I32, params={"limit": g.rng.randint(2, 9)})
    return True


def _r_sine_wave(g: _Gen) -> bool:
    g.emit("SineWave", dtype=DType.F64, params={
        "frequency": round(g.rng.uniform(0.001, 0.3), 4),
        "amplitude": round(g.rng.uniform(0.5, 3.0), 3),
        "phase": round(g.rng.uniform(0, 6.28), 3),
        "bias": round(g.rng.uniform(-1, 1), 3),
    })
    return True


def _r_ramp_source(g: _Gen) -> bool:
    g.emit("RampSource", dtype=DType.F64, params={
        "slope": round(g.rng.uniform(-0.5, 0.5), 4),
        "start": round(g.rng.uniform(-2, 2), 3),
    })
    return True


def _r_step_source(g: _Gen) -> bool:
    g.emit("StepSource", dtype=DType.F64, params={
        "at": g.rng.randint(0, 20),
        "before": round(g.rng.uniform(-2, 2), 3),
        "after": round(g.rng.uniform(-2, 2), 3),
    })
    return True


def _r_pulse_generator(g: _Gen) -> bool:
    period = g.rng.randint(2, 9)
    g.emit("PulseGenerator", dtype=DType.F64, params={
        "period": period, "duty": g.rng.randint(1, period - 1),
        "amplitude": round(g.rng.uniform(0.5, 3.0), 3),
    })
    return True


def _r_random_source(g: _Gen) -> bool:
    if g.rng.random() < 0.5:
        lo = round(g.rng.uniform(-4, 0), 3)
        g.emit("RandomSource", dtype=DType.F64, params={
            "dist": "uniform", "lo": lo,
            "hi": round(lo + g.rng.uniform(0.5, 8), 3),
            "seed": g.rng.randint(1, 10_000),
        })
    else:
        lo = g.rng.randint(-20, 0)
        g.emit("RandomSource", dtype=DType.I32, params={
            "dist": "int", "lo": lo, "hi": lo + g.rng.randint(1, 40),
            "seed": g.rng.randint(1, 10_000),
        })
    return True


def _r_sum(g: _Gen) -> bool:
    d = g.num_dtype()
    n = g.rng.randint(2, 4)
    inputs = [g.num_as(d) for _ in range(n)]
    if any(i is None for i in inputs):
        return False
    signs = "".join(g.rng.choice("+-") for _ in range(n))
    g.emit("Sum", inputs, dtype=d, operator=signs)
    return True


def _r_product(g: _Gen) -> bool:
    d = g.num_dtype()
    n = g.rng.randint(2, 3)
    inputs = [g.num_as(d) for _ in range(n)]
    if any(i is None for i in inputs):
        return False
    ops = "*" + "".join(g.rng.choice("*/") for _ in range(n - 1))
    g.emit("Product", inputs, dtype=d, operator=ops)
    return True


def _unary_math(block_type):
    def recipe(g: _Gen) -> bool:
        d = g.num_dtype()
        src = g.num_as(d)
        if src is None:
            return False
        g.emit(block_type, [src], dtype=d)
        return True
    return recipe


def _r_gain(g: _Gen) -> bool:
    d = g.num_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    k = g.param_value(d) if d.is_float else g.rng.randint(max(d.min_value, -4), 4)
    g.emit("Gain", [src], dtype=d, params={"gain": k})
    return True


def _r_bias(g: _Gen) -> bool:
    d = g.num_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    k = g.param_value(d) if d.is_float else g.rng.randint(max(d.min_value, -8), 8)
    g.emit("Bias", [src], dtype=d, params={"bias": k})
    return True


def _r_sqrt(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("Sqrt", [src], dtype=d)
    return True


def _r_math(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    op = g.rng.choice([
        "exp", "log", "log10", "sin", "cos", "tan", "asin", "acos", "atan",
        "sinh", "cosh", "tanh", "square", "reciprocal", "pow10",
    ])
    g.emit("Math", [src], dtype=d, operator=op)
    return True


def _r_min_max(g: _Gen) -> bool:
    d = g.num_dtype()
    n = g.rng.randint(2, 3)
    inputs = [g.num_as(d) for _ in range(n)]
    if any(i is None for i in inputs):
        return False
    g.emit("MinMax", inputs, dtype=d, operator=g.rng.choice(["min", "max"]))
    return True


def _r_mod(g: _Gen) -> bool:
    d = g.num_dtype()
    a, b = g.num_as(d), g.num_as(d)
    if a is None or b is None:
        return False
    g.emit("Mod", [a, b], dtype=d)
    return True


def _r_saturation(g: _Gen) -> bool:
    d = g.num_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    if d.is_float:
        lo = round(g.rng.uniform(-5, 0), 3)
        hi = round(lo + g.rng.uniform(0.5, 8), 3)
    else:
        lo = g.rng.randint(max(d.min_value, -20), 10)
        hi = lo + g.rng.randint(1, 15)
        hi = min(hi, d.max_value)
    g.emit("Saturation", [src], dtype=d, params={"lower": lo, "upper": hi})
    return True


def _r_dead_zone(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    start = round(g.rng.uniform(-3, 0), 3)
    g.emit("DeadZone", [src], dtype=d, params={
        "start": start, "end": round(start + g.rng.uniform(0.1, 4), 3),
    })
    return True


def _r_dtc(g: _Gen) -> bool:
    src = g.pick_num()
    if src is None:
        return False
    target = (DType.BOOL if g.rng.random() < 0.1 else g.num_dtype())
    g.emit("DataTypeConversion", [src], dtype=target)
    return True


def _r_rounding(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("Rounding", [src], dtype=d,
           operator=g.rng.choice(["floor", "ceil", "round", "fix"]))
    return True


def _r_quantizer(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("Quantizer", [src], dtype=d,
           params={"interval": g.rng.choice([0.1, 0.25, 0.5, 1.0, 3.0])})
    return True


def _r_shift(g: _Gen) -> bool:
    d = g.int_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("Shift", [src], dtype=d, operator=g.rng.choice(["<<", ">>"]),
           params={"amount": g.rng.randint(0, 7)})
    return True


def _r_bitwise(g: _Gen) -> bool:
    d = g.int_dtype()
    op = g.rng.choice(["AND", "OR", "XOR", "NOT"])
    n = 1 if op == "NOT" else g.rng.randint(2, 3)
    inputs = [g.num_as(d) for _ in range(n)]
    if any(i is None for i in inputs):
        return False
    g.emit("Bitwise", inputs, dtype=d, operator=op)
    return True


def _r_polynomial(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    n = g.rng.randint(1, 4)
    coeffs = [round(g.rng.uniform(-2, 2), 3) for _ in range(n)]
    g.emit("Polynomial", [src], dtype=d, params={"coeffs": coeffs})
    return True


def _r_power(g: _Gen) -> bool:
    d = g.float_dtype()
    base, expo = g.num_as(d), g.num_as(d)
    if base is None or expo is None:
        return False
    g.emit("Power", [base, expo], dtype=d)
    return True


def _r_relational(g: _Gen) -> bool:
    d = g.num_dtype()
    a, b = g.num_as(d), g.num_as(d)
    if a is None or b is None:
        return False
    g.emit("RelationalOperator", [a, b], dtype=DType.BOOL,
           operator=g.rng.choice(["==", "!=", "<", "<=", ">", ">="]))
    return True


def _r_compare_to_constant(g: _Gen) -> bool:
    src = g.pick_num()
    if src is None:
        return False
    d = g.refs[src]
    g.emit("CompareToConstant", [src], dtype=DType.BOOL,
           operator=g.rng.choice(["==", "!=", "<", "<=", ">", ">="]),
           params={"constant": g.param_value(d)})
    return True


def _r_logic(g: _Gen) -> bool:
    op = g.rng.choice(["AND", "OR", "NAND", "NOR", "XOR", "NOT"])
    n = 1 if op == "NOT" else g.rng.randint(2, 3)
    inputs = [g.pick_bool() for _ in range(n)]
    if any(i is None for i in inputs):
        return False
    g.emit("Logic", inputs, dtype=DType.BOOL, operator=op)
    return True


def _r_switch(g: _Gen) -> bool:
    d = g.num_dtype()
    on_true, on_false = g.num_as(d), g.num_as(d)
    control = g.pick_num()
    if on_true is None or on_false is None or control is None:
        return False
    thr = 0.5 if g.refs[control].is_float else g.rng.randint(-2, 2)
    g.emit("Switch", [on_true, control, on_false], dtype=d,
           params={"threshold": thr})
    return True


def _r_multiport_switch(g: _Gen) -> bool:
    d = g.num_dtype()
    control = g.num_as(DType.I32)
    if control is None:
        return False
    cases = [g.num_as(d) for _ in range(g.rng.randint(2, 4))]
    if any(c is None for c in cases):
        return False
    g.emit("MultiportSwitch", [control, *cases], dtype=d)
    return True


def _r_relay(g: _Gen) -> bool:
    d = g.num_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    if d.is_float:
        off = round(g.rng.uniform(-4, 0), 3)
        on = round(off + g.rng.uniform(0.5, 5), 3)
        on_v, off_v = round(g.rng.uniform(0, 8), 3), round(g.rng.uniform(-8, 0), 3)
    else:
        off = g.rng.randint(max(d.min_value, -10), 0)
        on = off + g.rng.randint(1, 10)
        on = min(on, d.max_value)
        on_v = g.rng.randint(0, min(d.max_value, 20))
        off_v = g.rng.randint(max(d.min_value, -20), 0)
    g.emit("Relay", [src], dtype=d, params={
        "on_threshold": on, "off_threshold": off,
        "on_value": on_v, "off_value": off_v,
        "initial_on": g.rng.random() < 0.5,
    })
    return True


def _stateful_unary(block_type):
    def recipe(g: _Gen) -> bool:
        d = g.num_dtype()
        src = g.num_as(d)
        if src is None:
            return False
        initial = (round(g.rng.uniform(-2, 2), 3) if d.is_float
                   else g.rng.randint(max(d.min_value, -5), min(d.max_value, 5)))
        g.emit(block_type, [src], dtype=d, params={"initial": initial})
        return True
    return recipe


def _r_delay(g: _Gen) -> bool:
    d = g.num_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    initial = (round(g.rng.uniform(-2, 2), 3) if d.is_float
               else g.rng.randint(max(d.min_value, -5), min(d.max_value, 5)))
    g.emit("Delay", [src], dtype=d,
           params={"length": g.rng.randint(1, 4), "initial": initial})
    return True


def _r_discrete_integrator(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("DiscreteIntegrator", [src], dtype=d, params={
        "gain": round(g.rng.uniform(-1, 1), 3),
        "initial": round(g.rng.uniform(-2, 2), 3),
    })
    return True


def _float_unary(block_type, **fixed_params):
    def recipe(g: _Gen) -> bool:
        d = g.float_dtype()
        src = g.num_as(d)
        if src is None:
            return False
        g.emit(block_type, [src], dtype=d, params=dict(fixed_params))
        return True
    return recipe


def _r_discrete_filter(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("DiscreteFilter", [src], dtype=d, params={
        "b0": round(g.rng.uniform(-0.9, 0.9), 3),
        "a1": round(g.rng.uniform(-0.9, 0.9), 3),
    })
    return True


def _r_rate_limiter(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    g.emit("RateLimiter", [src], dtype=d, params={
        "rising": round(g.rng.uniform(0.05, 2), 3),
        "falling": round(g.rng.uniform(0.05, 2), 3),
    })
    return True


def _r_continuous_integrator(g: _Gen) -> bool:
    src = g.num_as(DType.F64)
    if src is None:
        return False
    g.emit("ContinuousIntegrator", [src], dtype=DType.F64, params={
        "solver": g.rng.choice(["euler", "ab2", "ab3"]),
        "initial": round(g.rng.uniform(-1, 1), 3),
    })
    return True


def _r_lookup1d(g: _Gen) -> bool:
    d = g.float_dtype()
    src = g.num_as(d)
    if src is None:
        return False
    n = g.rng.randint(2, 5)
    start = round(g.rng.uniform(-5, 0), 3)
    bps = []
    for _ in range(n):
        bps.append(round(start, 3))
        start += g.rng.uniform(0.5, 3)
    table = [_float_value(g.rng) for _ in range(n)]
    g.emit("Lookup1D", [src], dtype=d,
           params={"breakpoints": bps, "table": table})
    return True


def _r_direct_lookup(g: _Gen) -> bool:
    index = g.num_as(DType.I32)
    if index is None:
        return False
    n = g.rng.randint(1, 5)
    if g.rng.random() < 0.5:
        table = [_float_value(g.rng) for _ in range(n)]
        d = DType.F64
    else:
        table = [g.rng.randint(-50, 50) for _ in range(n)]
        d = DType.I32
    g.emit("DirectLookup", [index], dtype=d, params={"table": table})
    return True


def _r_sink(g: _Gen) -> bool:
    src = g.pick_num()
    if src is None:
        return False
    g.emit(g.rng.choice(["Display", "Terminator", "Scope"]), [src])
    return True


def _r_guarded(g: _Gen) -> bool:
    control = g.pick_num()
    data = g.pick_num()
    if control is None or data is None:
        return False
    d = g.refs[data]
    g.emit(GUARDED, [control, data], dtype=d)
    return True


def _r_store(g: _Gen) -> bool:
    data = g.pick_num()
    if data is None:
        return False
    g.emit(STORE, [data], dtype=g.refs[data])
    return True


RECIPES: list[tuple[int, Callable[[_Gen], bool]]] = [
    (2, _r_constant),
    (1, _r_clock),
    (1, _r_ground),
    (1, _r_counter),
    (1, _r_sine_wave),
    (1, _r_ramp_source),
    (1, _r_step_source),
    (1, _r_pulse_generator),
    (1, _r_random_source),
    (4, _r_sum),
    (3, _r_product),
    (2, _r_gain),
    (2, _r_bias),
    (2, _unary_math("Abs")),
    (2, _unary_math("UnaryMinus")),
    (1, _unary_math("Signum")),
    (2, _r_sqrt),
    (3, _r_math),
    (2, _r_min_max),
    (3, _r_mod),
    (2, _r_saturation),
    (1, _r_dead_zone),
    (3, _r_dtc),
    (3, _r_rounding),
    (3, _r_quantizer),
    (2, _r_shift),
    (2, _r_bitwise),
    (1, _r_polynomial),
    (1, _r_power),
    (2, _r_relational),
    (1, _r_compare_to_constant),
    (2, _r_logic),
    (2, _r_switch),
    (1, _r_multiport_switch),
    (1, _r_relay),
    (2, _stateful_unary("UnitDelay")),
    (1, _stateful_unary("Memory")),
    (2, _stateful_unary("Accumulator")),
    (1, _r_delay),
    (1, _r_discrete_integrator),
    (1, _float_unary("DiscreteDerivative")),
    (1, _r_discrete_filter),
    (1, _r_rate_limiter),
    (1, _float_unary("ZeroOrderHold")),
    (1, _r_continuous_integrator),
    (2, _r_lookup1d),
    (1, _r_direct_lookup),
    (1, _r_sink),
    (1, _r_guarded),
    (1, _r_store),
]

_WEIGHTS = [w for w, _ in RECIPES]
_FNS = [fn for _, fn in RECIPES]


def generate_case(
    seed: int,
    *,
    max_actors: int = 14,
    min_actors: int = 4,
    steps: Optional[int] = None,
) -> CaseSpec:
    """One deterministic random case from ``seed``."""
    rng = random.Random(seed)
    g = _Gen(rng)

    n_inports = rng.randint(1, 3)
    inports = []
    for i in range(n_inports):
        d = rng.choice(NUMERIC_DTYPES)
        name = f"In{i + 1}"
        g.nodes.append(NodeSpec(
            name=name, block_type="Inport", dtype=d.short_name,
        ))
        g.refs[name] = d
        inports.append((name, d))

    target = rng.randint(min_actors, max_actors)
    attempts = 0
    while len(g.nodes) - n_inports < target and attempts < target * 12:
        attempts += 1
        fn = rng.choices(_FNS, weights=_WEIGHTS, k=1)[0]
        fn(g)

    n_steps = steps if steps is not None else rng.randint(8, 48)
    stimuli = {
        name: _gen_stimulus(rng, d, n_steps) for name, d in inports
    }
    return CaseSpec(
        name=f"Fuzz{seed & 0xFFFFFFFF:x}",
        seed=seed,
        steps=n_steps,
        nodes=g.nodes,
        stimuli=stimuli,
    )


def random_stimulus_spec(rng: random.Random, dtype: DType, steps: int) -> dict:
    """One random serialized stimulus spec for an inport of ``dtype``
    (public face of the generator's stimulus table, used by the guided
    mutator's stimulus-swap pass)."""
    return _gen_stimulus(rng, dtype, steps)


def extend_case(
    case: CaseSpec, rng: random.Random, *, max_new: int = 3
) -> Optional[CaseSpec]:
    """Grow ``case`` by appending 1..``max_new`` recipe-generated nodes
    that consume the existing dataflow frontier.

    This is the guided mutator's actor-insertion pass: a ``_Gen`` is
    primed with every value-producing node of the spec, so new nodes wire
    into the existing graph exactly like first-generation ones.  Returns
    ``None`` when no recipe managed to emit (e.g. a case with no usable
    refs within the attempt budget).
    """
    g = _Gen(rng)
    g.nodes = list(case.nodes)
    for node in case.nodes:
        d = node.out_dtype
        if d is not None and node.block_type not in _SINK_TYPES:
            g.refs[node.name] = d
    # Fresh names must not collide with existing ``n<k>`` nodes.
    g._counter = max(
        (
            int(node.name[1:])
            for node in case.nodes
            if node.name[:1] == "n" and node.name[1:].isdigit()
        ),
        default=0,
    )
    before = len(g.nodes)
    target = rng.randint(1, max_new)
    attempts = 0
    while len(g.nodes) - before < target and attempts < 12:
        attempts += 1
        fn = rng.choices(_FNS, weights=_WEIGHTS, k=1)[0]
        fn(g)
    if len(g.nodes) == before:
        return None
    return replace(case, nodes=g.nodes)


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------
def _zero_of(dtype: DType):
    return 0.0 if dtype.is_float else 0


def _expand_guarded(b: ModelBuilder, node: NodeSpec, refs, dtypes) -> Ref:
    """Enabled-subsystem pair merged into one signal: the only generator
    path that reaches Merge, EnablePort, and nested subsystem boundaries."""
    control, data = node.inputs
    cd = dtypes[control]
    d = node.out_dtype or dtypes[data]
    zero = b.constant(f"{node.name}_zero", _zero_of(cd), dtype=cd)
    hot = b.relational(f"{node.name}_hot", ">", refs[control], zero)
    cold = b.not_(f"{node.name}_cold", hot)

    s1 = b.subsystem(f"{node.name}_S1", inputs=[refs[data]])
    gain = 2.0 if d.is_float else 2
    o1 = s1.set_output(s1.inner.gain("Boost", s1.input_ref(0), gain, dtype=d))
    s1.set_enable(hot)

    s2 = b.subsystem(f"{node.name}_S2", inputs=[refs[data]])
    bias = 1.0 if d.is_float else 1
    o2 = s2.set_output(s2.inner.bias("Off", s2.input_ref(0), bias, dtype=d))
    s2.set_enable(cold)

    return b.merge(node.name, [o1, o2], dtype=d)


def _expand_store(b: ModelBuilder, node: NodeSpec, refs, dtypes) -> Ref:
    """DataStoreMemory + read-before-write pair around one input signal."""
    (data,) = node.inputs
    d = node.out_dtype or dtypes[data]
    store = b.data_store(f"{node.name}_mem", dtype=d, initial=_zero_of(d))
    rd = b.ds_read(node.name, store, dtype=d)
    b.ds_write(f"{node.name}_wr", store, refs[data])
    return rd


def build_model(case: CaseSpec) -> Model:
    """Rebuild the concrete model a spec describes.

    Every value-producing node that no other node consumes gets an
    Outport (``Y_<name>``) so the oracle observes the whole frontier of
    the dataflow graph; sink nodes and composite side-effects count as
    consumption.
    """
    b = ModelBuilder(case.name)
    refs: dict[str, Ref] = {}
    dtypes: dict[str, DType] = {}
    consumed: set[str] = set()
    producers: list[str] = []

    for node in case.nodes:
        consumed.update(node.inputs)
        if node.block_type == "Inport":
            refs[node.name] = b.inport(node.name, dtype=node.out_dtype or DType.F64)
        elif node.block_type == GUARDED:
            refs[node.name] = _expand_guarded(b, node, refs, dtypes)
        elif node.block_type == STORE:
            refs[node.name] = _expand_store(b, node, refs, dtypes)
        elif node.block_type in _SINK_TYPES:
            b.block(node.block_type, node.name,
                    [refs[i] for i in node.inputs], n_outputs=0)
            continue
        else:
            refs[node.name] = b.block(
                node.block_type,
                node.name,
                [refs[i] for i in node.inputs],
                operator=node.operator,
                out_dtype=node.out_dtype,
                params=dict(node.params) or None,
            )
        if node.out_dtype is not None:
            dtypes[node.name] = node.out_dtype
        elif node.inputs:
            dtypes[node.name] = dtypes.get(node.inputs[0], DType.F64)
        else:
            dtypes[node.name] = DType.F64
        producers.append(node.name)

    for name in producers:
        if name not in consumed:
            b.outport(f"Y_{name}", refs[name])
    return b.build()

"""Model file writer."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path

from repro.model.actor import Actor
from repro.model.model import Model
from repro.model.subsystem import Subsystem


def _actor_element(actor: Actor) -> ET.Element:
    el = ET.Element("actor", name=actor.name, type=actor.block_type)
    if actor.operator is not None:
        el.set("operator", actor.operator)
    ET.SubElement(
        el, "ports", inputs=str(actor.n_inputs), outputs=str(actor.n_outputs)
    )
    if actor.params:
        params = ET.SubElement(el, "params")
        params.text = json.dumps(actor.params, sort_keys=True)
    for direction, ports in (("in", actor.inputs), ("out", actor.outputs)):
        for port in ports:
            # Only non-default port facts are stored; the paper notes the
            # actors part records I/O types "as default values" otherwise.
            attrs = {}
            if port.dtype is not None:
                attrs["dtype"] = port.dtype.short_name
            if port.name != f"port{port.index}":
                attrs["name"] = port.name
            if attrs:
                ET.SubElement(
                    el, "port", dir=direction, index=str(port.index), **attrs
                )
    return el


def _subsystem_actors(scope: Subsystem) -> ET.Element:
    el = ET.Element("subsystem", name=scope.name)
    for actor in scope.actors.values():
        el.append(_actor_element(actor))
    for child in scope.subsystems.values():
        el.append(_subsystem_actors(child))
    return el


def _relationships(scope: Subsystem, path: str, parent: ET.Element) -> None:
    if scope.connections:
        scope_el = ET.SubElement(parent, "scope", path=path)
        for conn in scope.connections:
            ET.SubElement(
                scope_el,
                "connection",
                {
                    "from": f"{conn.src.actor}:{conn.src.port}",
                    "to": f"{conn.dst.actor}:{conn.dst.port}",
                },
            )
    for child in scope.subsystems.values():
        _relationships(child, f"{path}.{child.name}", parent)


def model_to_xml(model: Model) -> str:
    """Serialize a model to the two-part XML text."""
    root = ET.Element("model", name=model.name)
    if model.description:
        root.set("description", model.description)
    if model.metadata:
        meta = ET.SubElement(root, "metadata")
        meta.text = json.dumps(model.metadata, sort_keys=True)

    actors = ET.SubElement(root, "actors")
    actors.append(_subsystem_actors(model.root))

    relationships = ET.SubElement(root, "relationships")
    _relationships(model.root, model.root.name, relationships)

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def save_model(model: Model, path: str | Path) -> None:
    """Write a model file to disk."""
    Path(path).write_text(model_to_xml(model))

"""Model file parser (the paper's *model parser* module).

Reads the two parts in the order the paper describes: first the actors
part (basic per-actor information, separately stored), then the
relationships part reconnecting every signal.  The reconstructed model is
validated before it is returned.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path

from repro.dtypes import DType
from repro.model.actor import Actor
from repro.model.connection import Connection, EndPoint
from repro.model.errors import ParseError
from repro.model.model import Model
from repro.model.subsystem import Subsystem
from repro.model.validate import validate_model


def _parse_actor(el: ET.Element) -> Actor:
    name = el.get("name")
    block_type = el.get("type")
    if not name or not block_type:
        raise ParseError("actor element missing name or type")
    ports_el = el.find("ports")
    if ports_el is None:
        raise ParseError(f"actor {name!r}: missing ports element")
    n_inputs = int(ports_el.get("inputs", "0"))
    n_outputs = int(ports_el.get("outputs", "0"))

    params = {}
    params_el = el.find("params")
    if params_el is not None and params_el.text:
        params = json.loads(params_el.text)

    actor = Actor.create(
        name,
        block_type,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        operator=el.get("operator"),
        params=params,
    )
    for port_el in el.findall("port"):
        direction = port_el.get("dir")
        index = int(port_el.get("index", "0"))
        ports = actor.inputs if direction == "in" else actor.outputs
        if index >= len(ports):
            raise ParseError(f"actor {name!r}: port index {index} out of range")
        dtype = port_el.get("dtype")
        if dtype:
            ports[index].dtype = DType.parse(dtype)
        port_name = port_el.get("name")
        if port_name:
            ports[index].name = port_name
    return actor


def _parse_subsystem(el: ET.Element) -> Subsystem:
    scope = Subsystem(el.get("name", ""))
    if not scope.name:
        raise ParseError("subsystem element missing name")
    for child in el:
        if child.tag == "actor":
            scope.add_actor(_parse_actor(child))
        elif child.tag == "subsystem":
            scope.add_subsystem(_parse_subsystem(child))
        else:
            raise ParseError(f"unexpected element {child.tag!r} in actors part")
    return scope


def _parse_endpoint(text: str) -> EndPoint:
    actor, sep, port = text.rpartition(":")
    if not sep:
        raise ParseError(f"malformed endpoint {text!r} (want actor:port)")
    return EndPoint(actor, int(port))


def parse_model(text: str) -> Model:
    """Parse model-file XML text into a validated :class:`Model`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed model XML: {exc}") from None
    if root.tag != "model":
        raise ParseError(f"expected <model> root element, got <{root.tag}>")
    name = root.get("name")
    if not name:
        raise ParseError("model element missing name")

    # --- part 1: actors ---
    actors_el = root.find("actors")
    if actors_el is None:
        raise ParseError("model file has no actors part")
    scopes = actors_el.findall("subsystem")
    if len(scopes) != 1:
        raise ParseError("actors part must contain exactly one root subsystem")
    model_root = _parse_subsystem(scopes[0])

    # --- part 2: relationships ---
    relationships_el = root.find("relationships")
    if relationships_el is None:
        raise ParseError("model file has no relationships part")
    for scope_el in relationships_el.findall("scope"):
        path = scope_el.get("path", "")
        parts = path.split(".")
        if parts[0] != model_root.name:
            raise ParseError(f"relationship scope {path!r} outside the model")
        scope = model_root
        for part in parts[1:]:
            child = scope.subsystems.get(part)
            if child is None:
                raise ParseError(f"relationship scope {path!r} not found")
            scope = child
        for conn_el in scope_el.findall("connection"):
            src = conn_el.get("from")
            dst = conn_el.get("to")
            if not src or not dst:
                raise ParseError(f"scope {path!r}: connection missing from/to")
            scope.connect(Connection(_parse_endpoint(src), _parse_endpoint(dst)))

    model = Model(name=name, root=model_root, description=root.get("description", ""))
    meta_el = root.find("metadata")
    if meta_el is not None and meta_el.text:
        model.metadata = json.loads(meta_el.text)
    validate_model(model)
    return model


def load_model(path: str | Path) -> Model:
    """Read and parse a model file from disk."""
    return parse_model(Path(path).read_text())

"""The model file format.

Mirrors how the paper describes Simulink's storage (§3.1): a model file
has two parts — an *actors* part holding each block's fundamental
information (name, type, calculation operator, I/O port counts, with data
types recorded only where the modeller pinned them) and a *relationships*
part holding every data-flow connection.  The on-disk encoding is XML
(Simulink's ``.slx`` is itself zipped XML).

Round trip is lossless: ``parse_model(write_model(m)) == m`` structurally.
"""

from repro.slx.writer import model_to_xml, save_model
from repro.slx.parser import load_model, parse_model
from repro.slx.generic import (
    generic_to_model,
    load_generic,
    model_to_generic,
    save_generic,
)

__all__ = [
    "model_to_xml",
    "save_model",
    "parse_model",
    "load_model",
    "model_to_generic",
    "generic_to_model",
    "save_generic",
    "load_generic",
]

"""Generic JSON dataflow interchange (the paper's §5 extensibility).

The paper proposes "a well-structured intermediate representation that
ensures compatibility with various model-driven design tools"
(Ptolemy-II, SCADE, Tsmart...).  This module defines that interchange
surface: a flat, tool-neutral JSON encoding of a dataflow model —
blocks with dotted scope paths, typed output ports, and ``from -> to``
wires — plus lossless conversion to and from the native :class:`Model`.

An external tool only has to emit this JSON to get the whole AccMoS
pipeline (preprocessing, instrumentation, all four engines) for free.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.dtypes import DType
from repro.model.actor import Actor
from repro.model.connection import Connection, EndPoint
from repro.model.errors import ParseError
from repro.model.model import Model
from repro.model.subsystem import Subsystem
from repro.model.validate import validate_model

FORMAT_NAME = "accmos-dataflow"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _export_block(actor: Actor, scope_path: str) -> dict[str, Any]:
    block: dict[str, Any] = {
        "id": actor.name,
        "scope": scope_path,
        "type": actor.block_type,
        "inputs": actor.n_inputs,
        "outputs": [
            {"dtype": port.dtype.short_name} if port.dtype is not None else {}
            for port in actor.outputs
        ],
    }
    if actor.operator is not None:
        block["operator"] = actor.operator
    if actor.params:
        block["params"] = actor.params
    return block


def model_to_generic(model: Model) -> dict[str, Any]:
    """Encode a model as the generic interchange document."""
    blocks: list[dict[str, Any]] = []
    scopes: list[str] = []
    wires: list[dict[str, str]] = []

    def walk(scope: Subsystem, path: str) -> None:
        for actor in scope.actors.values():
            blocks.append(_export_block(actor, path))
        for conn in scope.connections:
            wires.append({"from": str(conn.src), "to": str(conn.dst),
                          "scope": path})
        for child in scope.subsystems.values():
            child_path = f"{path}.{child.name}" if path else child.name
            scopes.append(child_path)
            walk(child, child_path)

    walk(model.root, "")
    document: dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": model.name,
        "scopes": scopes,
        "blocks": blocks,
        "wires": wires,
    }
    if model.description:
        document["description"] = model.description
    if model.metadata:
        document["metadata"] = model.metadata
    return document


def save_generic(model: Model, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(model_to_generic(model), indent=2, sort_keys=False) + "\n"
    )


# ----------------------------------------------------------------------
# import
# ----------------------------------------------------------------------
def _parse_endpoint(text: str) -> EndPoint:
    name, sep, port = str(text).rpartition(":")
    if not sep:
        raise ParseError(f"malformed wire endpoint {text!r} (want block:port)")
    try:
        return EndPoint(name, int(port))
    except ValueError:
        raise ParseError(f"malformed wire endpoint {text!r}") from None


def generic_to_model(document: dict[str, Any]) -> Model:
    """Decode an interchange document into a validated :class:`Model`."""
    if document.get("format") != FORMAT_NAME:
        raise ParseError(
            f"not an {FORMAT_NAME} document (format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ParseError(
            f"unsupported {FORMAT_NAME} version {document.get('version')!r}"
        )
    name = document.get("name")
    if not name:
        raise ParseError("document has no model name")

    root = Subsystem(name)
    scope_index: dict[str, Subsystem] = {"": root}
    for dotted in document.get("scopes", ()):
        parts = dotted.split(".")
        parent = ".".join(parts[:-1])
        if parent not in scope_index:
            raise ParseError(f"scope {dotted!r} declared before parent {parent!r}")
        child = Subsystem(parts[-1])
        scope_index[parent].add_subsystem(child)
        scope_index[dotted] = child

    for block in document.get("blocks", ()):
        try:
            block_id = block["id"]
            block_type = block["type"]
        except KeyError as exc:
            raise ParseError(f"block missing required field {exc}") from None
        scope_path = block.get("scope", "")
        if scope_path not in scope_index:
            raise ParseError(f"block {block_id!r} references unknown scope "
                             f"{scope_path!r}")
        outputs = block.get("outputs", [])
        actor = Actor.create(
            block_id,
            block_type,
            n_inputs=int(block.get("inputs", 0)),
            n_outputs=len(outputs),
            operator=block.get("operator"),
            params=block.get("params", {}),
        )
        for port, spec in zip(actor.outputs, outputs):
            if spec.get("dtype"):
                port.dtype = DType.parse(spec["dtype"])
        scope_index[scope_path].add_actor(actor)

    for wire in document.get("wires", ()):
        scope_path = wire.get("scope", "")
        if scope_path not in scope_index:
            raise ParseError(f"wire references unknown scope {scope_path!r}")
        scope_index[scope_path].connect(
            Connection(_parse_endpoint(wire["from"]), _parse_endpoint(wire["to"]))
        )

    model = Model(
        name=name,
        root=root,
        description=document.get("description", ""),
    )
    model.metadata = dict(document.get("metadata", {}))
    validate_model(model)
    return model


def load_generic(path: str | Path) -> Model:
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ParseError(f"{path}: invalid JSON: {exc}") from None
    return generic_to_model(document)

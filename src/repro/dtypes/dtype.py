"""The scalar data-type lattice shared by every subsystem.

The set of types mirrors the Simulink built-in numeric types the paper's
diagnosis rules operate on: the eight fixed-width integers, IEEE single and
double, and boolean.
"""

from __future__ import annotations

import enum
from functools import lru_cache


class DType(enum.Enum):
    """A scalar signal data type.

    Members carry everything the rest of the library needs: bit width,
    signedness, value range, and the C / numpy spellings used by the code
    generator and the interpreted engines respectively.
    """

    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    I64 = "i64"
    U8 = "u8"
    U16 = "u16"
    U32 = "u32"
    U64 = "u64"
    F32 = "f32"
    F64 = "f64"
    BOOL = "bool"

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def is_bool(self) -> bool:
        return self is DType.BOOL

    @property
    def is_integer(self) -> bool:
        return not self.is_float and not self.is_bool

    @property
    def is_signed(self) -> bool:
        """True for signed integers and floats (bool is unsigned)."""
        if self.is_float:
            return True
        return self in (DType.I8, DType.I16, DType.I32, DType.I64)

    @property
    def bits(self) -> int:
        return _BITS[self]

    # ------------------------------------------------------------------
    # integer range
    # ------------------------------------------------------------------
    @property
    def min_value(self) -> int:
        """Smallest representable value (integers and bool only)."""
        if self.is_float:
            raise ValueError(f"{self} has no exact integer range")
        if self.is_bool:
            return 0
        if self.is_signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def max_value(self) -> int:
        """Largest representable value (integers and bool only)."""
        if self.is_float:
            raise ValueError(f"{self} has no exact integer range")
        if self.is_bool:
            return 1
        if self.is_signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    # ------------------------------------------------------------------
    # spellings
    # ------------------------------------------------------------------
    @property
    def c_name(self) -> str:
        """The stdint.h spelling used in generated C code."""
        return _C_NAMES[self]

    @property
    def numpy_name(self) -> str:
        return _NUMPY_NAMES[self]

    @property
    def short_name(self) -> str:
        """The compact spelling used in result protocols, e.g. ``i32``."""
        return self.value

    @property
    def printf_format(self) -> str:
        """printf conversion used by the generated result-output code."""
        if self.is_float:
            return "%.17g"
        if self is DType.U64:
            return "%llu"
        if self is DType.I64:
            return "%lld"
        if self.is_signed:
            return "%d"
        return "%u"

    @property
    def c_literal_suffix(self) -> str:
        if self is DType.I64:
            return "LL"
        if self is DType.U64:
            return "ULL"
        if self in (DType.U8, DType.U16, DType.U32):
            return "U"
        if self is DType.F32:
            return "f"
        return ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "DType":
        """Parse any accepted spelling (``i32``, ``int32``, ``double`` ...)."""
        key = text.strip().lower()
        try:
            return _ALIASES[key]
        except KeyError:
            raise ValueError(f"unknown data type spelling: {text!r}") from None


_BITS = {
    DType.I8: 8,
    DType.I16: 16,
    DType.I32: 32,
    DType.I64: 64,
    DType.U8: 8,
    DType.U16: 16,
    DType.U32: 32,
    DType.U64: 64,
    DType.F32: 32,
    DType.F64: 64,
    DType.BOOL: 8,
}

_C_NAMES = {
    DType.I8: "int8_t",
    DType.I16: "int16_t",
    DType.I32: "int32_t",
    DType.I64: "int64_t",
    DType.U8: "uint8_t",
    DType.U16: "uint16_t",
    DType.U32: "uint32_t",
    DType.U64: "uint64_t",
    DType.F32: "float",
    DType.F64: "double",
    DType.BOOL: "uint8_t",
}

_NUMPY_NAMES = {
    DType.I8: "int8",
    DType.I16: "int16",
    DType.I32: "int32",
    DType.I64: "int64",
    DType.U8: "uint8",
    DType.U16: "uint16",
    DType.U32: "uint32",
    DType.U64: "uint64",
    DType.F32: "float32",
    DType.F64: "float64",
    DType.BOOL: "bool",
}

_ALIASES: dict[str, DType] = {}
for _dt in DType:
    _ALIASES[_dt.value] = _dt
    if _dt is not DType.BOOL:
        # BOOL shares uint8_t storage with U8; 'uint8_t' must parse as U8.
        _ALIASES[_dt.c_name] = _dt
    _ALIASES[_dt.numpy_name] = _dt
_ALIASES.update(
    {
        "boolean": DType.BOOL,
        "single": DType.F32,
        "double": DType.F64,
        "int": DType.I32,
        "uint": DType.U32,
        "char": DType.I8,
        "short": DType.I16,
        "short int": DType.I16,
        "long": DType.I64,
        "long long": DType.I64,
        "unsigned char": DType.U8,
        "unsigned short": DType.U16,
        "unsigned int": DType.U32,
        "unsigned long": DType.U64,
    }
)

I8 = DType.I8
I16 = DType.I16
I32 = DType.I32
I64 = DType.I64
U8 = DType.U8
U16 = DType.U16
U32 = DType.U32
U64 = DType.U64
F32 = DType.F32
F64 = DType.F64
BOOL = DType.BOOL

SIGNED_DTYPES = (I8, I16, I32, I64)
UNSIGNED_DTYPES = (U8, U16, U32, U64)
INTEGER_DTYPES = SIGNED_DTYPES + UNSIGNED_DTYPES
FLOAT_DTYPES = (F32, F64)


@lru_cache(maxsize=None)
def promote(a: DType, b: DType) -> DType:
    """Result type of a binary arithmetic op, following Simulink's rule of
    thumb for same-family operands and a float-wins rule across families.

    This is deliberately simpler than C's usual arithmetic conversions:
    Simulink blocks carry an explicit output type, and the model builder
    normally makes operand types agree.  ``promote`` is the default when the
    model does not specify an output type.
    """
    if a is b:
        return a
    if a.is_float or b.is_float:
        if DType.F64 in (a, b):
            return DType.F64
        return DType.F32
    if a.is_bool:
        return b
    if b.is_bool:
        return a
    # Both integers.  Wider wins; on equal width, signed wins (so that
    # mixed-sign models keep their sign information — diagnosis cares).
    if a.bits != b.bits:
        return a if a.bits > b.bits else b
    return a if a.is_signed else b

"""Typed values with C-compatible semantics.

Simulink models carry explicit data types on every signal (``int32``,
``uint8``, ``double``, ...), and the errors AccMoS diagnoses — wrap on
overflow, downcast, precision loss — are artifacts of fixed-width
arithmetic.  This package provides:

* :class:`DType` — the scalar type lattice used across the whole library,
* wrap-around arithmetic that matches what ``gcc``-compiled C code does,
* checked casts that report overflow / precision-loss / downcast flags,
* helpers mapping every :class:`DType` onto its C and numpy spellings.

All simulation engines (interpreted and generated-code alike) route scalar
arithmetic through this package, which is what makes the cross-engine
equivalence property (SSE output == AccMoS output, bit for bit on integers)
testable.
"""

from repro.dtypes.dtype import (
    DType,
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    INTEGER_DTYPES,
    FLOAT_DTYPES,
    SIGNED_DTYPES,
    UNSIGNED_DTYPES,
    promote,
)
from repro.dtypes.arith import (
    ArithFlags,
    checked_add,
    checked_cast,
    checked_div,
    checked_mod,
    checked_mul,
    checked_neg,
    checked_sub,
    coerce_float,
    wrap,
    wrap_add,
    wrap_mul,
    wrap_neg,
    wrap_sub,
)

__all__ = [
    "DType",
    "BOOL",
    "I8",
    "I16",
    "I32",
    "I64",
    "U8",
    "U16",
    "U32",
    "U64",
    "F32",
    "F64",
    "INTEGER_DTYPES",
    "FLOAT_DTYPES",
    "SIGNED_DTYPES",
    "UNSIGNED_DTYPES",
    "promote",
    "ArithFlags",
    "wrap",
    "wrap_add",
    "wrap_sub",
    "wrap_mul",
    "wrap_neg",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_mod",
    "checked_neg",
    "checked_cast",
    "coerce_float",
]

"""C-compatible scalar arithmetic with error-flag reporting.

Two layers are provided:

* ``wrap_*`` — raw two's-complement wrap-around arithmetic, exactly what the
  generated C code computes (signed overflow is performed in unsigned
  arithmetic there, so it is well-defined and matches this module).
* ``checked_*`` — the same arithmetic, plus an :class:`ArithFlags` record
  saying *what went wrong on the way*: wrap on overflow, division by zero,
  precision loss, NaN/Inf production.  The interpreted SSE engine and the
  diagnosis instrumentation both consume these flags.

Division follows C semantics (truncation toward zero); a zero divisor yields
a flagged result of 0 so that simulation can continue deterministically, and
the generated C emits the identical guard (avoiding undefined behaviour and
keeping both engines bit-identical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dtypes.dtype import DType


@dataclass(frozen=True)
class ArithFlags:
    """What a checked operation observed.

    The flag names follow the Simulink runtime-diagnostic vocabulary used in
    the paper: *wrap on overflow*, *division by zero*, *precision loss*.
    """

    overflow: bool = False
    div_by_zero: bool = False
    precision_loss: bool = False
    non_finite: bool = False
    out_of_bounds: bool = False

    def __bool__(self) -> bool:
        return (
            self.overflow
            or self.div_by_zero
            or self.precision_loss
            or self.non_finite
            or self.out_of_bounds
        )

    def merge(self, other: "ArithFlags") -> "ArithFlags":
        if not other:
            return self
        if not self:
            return other
        return ArithFlags(
            overflow=self.overflow or other.overflow,
            div_by_zero=self.div_by_zero or other.div_by_zero,
            precision_loss=self.precision_loss or other.precision_loss,
            non_finite=self.non_finite or other.non_finite,
            out_of_bounds=self.out_of_bounds or other.out_of_bounds,
        )


OK = ArithFlags()
_OVERFLOW = ArithFlags(overflow=True)
_DIV_BY_ZERO = ArithFlags(div_by_zero=True)
_PRECISION_LOSS = ArithFlags(precision_loss=True)
_NON_FINITE = ArithFlags(non_finite=True)
OUT_OF_BOUNDS = ArithFlags(out_of_bounds=True)


# ----------------------------------------------------------------------
# raw wrap arithmetic
# ----------------------------------------------------------------------
def wrap(value: int, dtype: DType) -> int:
    """Reduce an unbounded integer to ``dtype``'s range, two's-complement."""
    if dtype.is_bool:
        return 1 if value else 0
    if dtype.is_float:
        raise ValueError("wrap() applies to integer types only")
    mask = (1 << dtype.bits) - 1
    value &= mask
    if dtype.is_signed and value > dtype.max_value:
        value -= 1 << dtype.bits
    return value


_F32_OVERFLOW_EDGE = 3.0e38  # anything below this narrows without overflow


def coerce_float(value: float, dtype: DType) -> float:
    """Round a Python float to the storage precision of ``dtype``.

    ``f32`` signals must round-trip through IEEE single precision so the
    interpreted engine matches the generated C bit for bit.  Values beyond
    single range overflow to inf silently (C's narrowing conversion does
    the same without any signal).
    """
    if dtype is DType.F32:
        if -_F32_OVERFLOW_EDGE < value < _F32_OVERFLOW_EDGE:
            return float(np.float32(value))
        with np.errstate(over="ignore"):
            return float(np.float32(value))
    return float(value)


def wrap_add(a: int, b: int, dtype: DType) -> int:
    return wrap(a + b, dtype)


def wrap_sub(a: int, b: int, dtype: DType) -> int:
    return wrap(a - b, dtype)


def wrap_mul(a: int, b: int, dtype: DType) -> int:
    return wrap(a * b, dtype)


def wrap_neg(a: int, dtype: DType) -> int:
    return wrap(-a, dtype)


def _trunc_div(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_mod(a: int, b: int) -> int:
    """C ``%``: remainder with the sign of the dividend."""
    return a - _trunc_div(a, b) * b


# ----------------------------------------------------------------------
# checked arithmetic
# ----------------------------------------------------------------------
def _checked_float(value: float, dtype: DType) -> tuple[float, ArithFlags]:
    value = coerce_float(value, dtype)
    if math.isnan(value) or math.isinf(value):
        return value, _NON_FINITE
    return value, OK


def checked_add(a, b, dtype: DType):
    """``a + b`` in ``dtype``; returns ``(result, flags)``."""
    if dtype.is_float:
        return _checked_float(a + b, dtype)
    exact = int(a) + int(b)
    result = wrap(exact, dtype)
    return result, (OK if result == exact else _OVERFLOW)


def checked_sub(a, b, dtype: DType):
    """``a - b`` in ``dtype``; returns ``(result, flags)``."""
    if dtype.is_float:
        return _checked_float(a - b, dtype)
    exact = int(a) - int(b)
    result = wrap(exact, dtype)
    return result, (OK if result == exact else _OVERFLOW)


def checked_mul(a, b, dtype: DType):
    """``a * b`` in ``dtype``; returns ``(result, flags)``."""
    if dtype.is_float:
        return _checked_float(a * b, dtype)
    exact = int(a) * int(b)
    result = wrap(exact, dtype)
    return result, (OK if result == exact else _OVERFLOW)


def checked_neg(a, dtype: DType):
    """``-a`` in ``dtype``; returns ``(result, flags)``."""
    if dtype.is_float:
        return _checked_float(-a, dtype)
    exact = -int(a)
    result = wrap(exact, dtype)
    return result, (OK if result == exact else _OVERFLOW)


def checked_div(a, b, dtype: DType):
    """``a / b`` in ``dtype``; returns ``(result, flags)``.

    Integer division truncates toward zero (C semantics).  A zero divisor
    returns a flagged 0 — the generated C contains the identical guard.
    INT_MIN / -1 is flagged as overflow and wraps.
    """
    if dtype.is_float:
        if b == 0:
            # IEEE produces +-inf / nan; flag it as division by zero.
            value = math.nan if a == 0 else math.inf if a > 0 else -math.inf
            return coerce_float(value, dtype), _DIV_BY_ZERO
        return _checked_float(a / b, dtype)
    a = int(a)
    b = int(b)
    if b == 0:
        return 0, _DIV_BY_ZERO
    exact = _trunc_div(a, b)
    result = wrap(exact, dtype)
    return result, (OK if result == exact else _OVERFLOW)


def checked_mod(a, b, dtype: DType):
    """``a % b`` in ``dtype`` (sign of dividend); returns ``(result, flags)``."""
    if dtype.is_float:
        if b == 0:
            return coerce_float(math.nan, dtype), _DIV_BY_ZERO
        return _checked_float(math.fmod(a, b), dtype)
    a = int(a)
    b = int(b)
    if b == 0:
        return 0, _DIV_BY_ZERO
    exact = _trunc_mod(a, b)
    result = wrap(exact, dtype)
    return result, (OK if result == exact else _OVERFLOW)


def checked_cast(value, src: DType, dst: DType):
    """Convert ``value`` from ``src`` to ``dst``; returns ``(result, flags)``.

    Overflow means the value wrapped (integer target too narrow); precision
    loss means a fractional part was truncated (float → integer) or an
    integer was not exactly representable (wide integer → float).
    """
    if dst.is_bool:
        return (1 if value else 0), OK
    if dst.is_float:
        result = coerce_float(float(value), dst)
        flags = OK
        if src.is_integer and int(result) != int(value):
            flags = _PRECISION_LOSS
        if math.isnan(result) or math.isinf(result):
            flags = flags.merge(_NON_FINITE)
        return result, flags
    # integer destination
    if src.is_float:
        if math.isnan(value) or math.isinf(value):
            return 0, _NON_FINITE
        truncated = int(value)  # C float->int conversion truncates
        flags = OK if float(truncated) == float(value) else _PRECISION_LOSS
        result = wrap(truncated, dst)
        if not (dst.min_value <= truncated <= dst.max_value):
            flags = flags.merge(_OVERFLOW)
        return result, flags
    ivalue = int(value)
    result = wrap(ivalue, dst)
    return result, (OK if result == ivalue else _OVERFLOW)

"""Calculation diagnosis (§3.2.B of the paper).

The diagnosable error kinds mirror the runtime diagnostics Simulink enables
by default — wrap on overflow, division by zero, precision loss, array out
of bounds — plus the static *downcast* configuration warning of the paper's
Figure 4, and a non-finite (NaN/Inf) check for float paths.

Which kinds apply to an actor depends on its type and operator (a Product
with a ``/`` needs division-by-zero diagnosis, with ``*`` it does not);
:func:`applicable_kinds` encodes that table.  Users add their own checks
with :class:`CustomDiagnosis` callbacks.
"""

from repro.diagnosis.events import DiagnosticEvent, DiagnosticKind, DiagnosticLog
from repro.diagnosis.rules import applicable_kinds, static_downcast_warnings
from repro.diagnosis.custom import CustomDiagnosis

__all__ = [
    "DiagnosticKind",
    "DiagnosticEvent",
    "DiagnosticLog",
    "applicable_kinds",
    "static_downcast_warnings",
    "CustomDiagnosis",
]

"""Which diagnoses apply where.

The paper: "the type and number of diagnoses vary depending on the actor
type and its operator.  For example, a Product actor with the '/' operator
needs to diagnose division by zero errors; ... with the '*' operator, this
diagnosing becomes unnecessary."  :func:`applicable_kinds` is that table;
the instrumentation step uses it to decide what to wire into each actor,
and the generated diagnostic functions only contain the applicable checks.

:func:`static_downcast_warnings` is the paper's Figure 4 sizeof-style
check: an integer calculation actor whose output type is narrower than an
input type is flagged once, statically.
"""

from __future__ import annotations

from repro.actors.registry import get_spec
from repro.diagnosis.events import DiagnosticEvent, DiagnosticKind
from repro.schedule.program import FlatActor, FlatProgram

_K = DiagnosticKind


def applicable_kinds(fa: FlatActor) -> frozenset[DiagnosticKind]:
    """Runtime diagnosis kinds that can fire at this actor."""
    spec = get_spec(fa.block_type)
    if not spec.is_calculation:
        # Branch actors can still raise out-of-bounds (MultiportSwitch).
        if fa.block_type == "MultiportSwitch":
            return frozenset({_K.ARRAY_OUT_OF_BOUNDS})
        return frozenset()

    out_dtype = fa.actor.outputs[0].dtype if fa.actor.outputs else None
    kinds: set[DiagnosticKind] = set()
    bt, op = fa.block_type, fa.actor.operator

    integer_out = out_dtype is not None and out_dtype.is_integer
    float_out = out_dtype is not None and out_dtype.is_float

    if bt in ("Sum", "Gain", "Bias", "Abs", "UnaryMinus", "Accumulator", "Shift"):
        if integer_out:
            kinds.add(_K.WRAP_ON_OVERFLOW)
    if bt == "Product":
        if integer_out:
            kinds.add(_K.WRAP_ON_OVERFLOW)
        if op and "/" in op:
            kinds.add(_K.DIV_BY_ZERO)
    if bt == "Mod":
        kinds.add(_K.DIV_BY_ZERO)
        if integer_out:
            kinds.add(_K.WRAP_ON_OVERFLOW)
    if bt == "Math":
        kinds.add(_K.NON_FINITE)
        if op == "reciprocal":
            kinds.add(_K.DIV_BY_ZERO)
    if bt in ("Sqrt", "Power", "Polynomial"):
        kinds.add(_K.NON_FINITE)
    if bt == "DataTypeConversion":
        if integer_out:
            kinds.update({_K.WRAP_ON_OVERFLOW, _K.PRECISION_LOSS})
        else:
            kinds.update({_K.PRECISION_LOSS, _K.NON_FINITE})
    if bt == "DataStoreWrite":
        kinds.add(_K.WRAP_ON_OVERFLOW)
    if bt == "DirectLookup":
        kinds.add(_K.ARRAY_OUT_OF_BOUNDS)
    if bt in ("DiscreteIntegrator", "DiscreteFilter", "DiscreteDerivative"):
        kinds.add(_K.NON_FINITE)

    # Any integer calculation whose inputs are wider can lose bits on the
    # implicit input casts (runtime precision loss / wrap); mixed
    # float-to-int casts likewise.
    if integer_out:
        for port in fa.actor.inputs:
            if port.dtype is None:
                continue
            if port.dtype.is_float:
                kinds.update({_K.PRECISION_LOSS, _K.WRAP_ON_OVERFLOW})
            elif port.dtype.is_integer and port.dtype.bits > out_dtype.bits:
                kinds.add(_K.WRAP_ON_OVERFLOW)
    if float_out and bt in ("Sum", "Product", "Gain", "Bias"):
        kinds.add(_K.NON_FINITE)

    return frozenset(kinds)


def downcast_pairs(fa: FlatActor) -> list[tuple[str, str]]:
    """(input dtype, output dtype) pairs that statically narrow.

    Mirrors Figure 4's ``sizeof(out) < sizeof(in)`` test, in bits and only
    for integer-to-integer calculation paths (float narrowing is reported
    through runtime precision loss instead).
    """
    spec = get_spec(fa.block_type)
    if not spec.is_calculation or not fa.actor.outputs:
        return []
    out_dtype = fa.actor.outputs[0].dtype
    if out_dtype is None or not out_dtype.is_integer:
        return []
    pairs = []
    for port in fa.actor.inputs:
        if port.dtype is not None and port.dtype.is_integer and (
            port.dtype.bits > out_dtype.bits
        ):
            pairs.append((port.dtype.short_name, out_dtype.short_name))
    return pairs


def static_downcast_warnings(prog: FlatProgram) -> list[DiagnosticEvent]:
    """All static downcast findings of a program (Figure 4 semantics)."""
    warnings = []
    for fa in prog.actors:
        for in_name, out_name in downcast_pairs(fa):
            warnings.append(
                DiagnosticEvent(
                    path=fa.path,
                    kind=DiagnosticKind.DOWNCAST,
                    first_step=-1,
                    count=1,
                    message=(
                        f"output type {out_name} is narrower than input type "
                        f"{in_name}; downcast may exist"
                    ),
                )
            )
    return warnings


def store_write_downcast(fa: FlatActor, store_dtype, in_dtype) -> bool:
    """Static downcast test for DataStoreWrite (store narrower than input)."""
    return (
        store_dtype.is_integer
        and in_dtype is not None
        and in_dtype.is_integer
        and in_dtype.bits > store_dtype.bits
    )

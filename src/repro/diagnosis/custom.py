"""User-defined signal diagnosis (paper §3.2.B, *Custom Signal Diagnose*).

A :class:`CustomDiagnosis` attaches a predicate to one actor: whenever the
predicate holds on the actor's runtime inputs/outputs, a CUSTOM diagnostic
fires.  Two forms of the predicate are carried so every engine can run it:

* ``predicate`` — a Python callable ``(step, inputs, outputs) -> bool``,
  used by the interpreted engines;
* ``c_predicate`` — a C expression over ``step``, ``in0..inN``, and
  ``out0..outN``, inlined into AccMoS's generated code.

For the engines to agree, the two must express the same condition; helpers
like :func:`output_above` build matched pairs for common checks (threshold
monitors, sudden-change detection is expressible with a UnitDelay in the
model itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

Predicate = Callable[[int, tuple, tuple], bool]


@dataclass
class CustomDiagnosis:
    """A user-defined check on one actor's runtime signals."""

    actor_path: str
    message: str
    predicate: Optional[Predicate] = None
    c_predicate: Optional[str] = None

    def __post_init__(self) -> None:
        if self.predicate is None and self.c_predicate is None:
            raise ValueError(
                "CustomDiagnosis needs a Python predicate, a C predicate, or both"
            )


def output_above(actor_path: str, limit, *, port: int = 0) -> CustomDiagnosis:
    """Fire when an output exceeds ``limit`` (matched Python/C pair)."""
    return CustomDiagnosis(
        actor_path=actor_path,
        message=f"output exceeds {limit}",
        predicate=lambda step, inputs, outputs: outputs[port] > limit,
        c_predicate=f"out{port} > {limit}",
    )


def output_below(actor_path: str, limit, *, port: int = 0) -> CustomDiagnosis:
    """Fire when an output drops under ``limit`` (matched Python/C pair)."""
    return CustomDiagnosis(
        actor_path=actor_path,
        message=f"output below {limit}",
        predicate=lambda step, inputs, outputs: outputs[port] < limit,
        c_predicate=f"out{port} < {limit}",
    )


def output_outside(actor_path: str, lo, hi, *, port: int = 0) -> CustomDiagnosis:
    """Fire when an output leaves [lo, hi] (matched Python/C pair)."""
    return CustomDiagnosis(
        actor_path=actor_path,
        message=f"output outside [{lo}, {hi}]",
        predicate=lambda step, inputs, outputs: not (lo <= outputs[port] <= hi),
        c_predicate=f"(out{port} < {lo}) || (out{port} > {hi})",
    )


def input_equals(actor_path: str, value, *, port: int = 0) -> CustomDiagnosis:
    """Fire when an input hits an exact value (matched Python/C pair)."""
    return CustomDiagnosis(
        actor_path=actor_path,
        message=f"input {port} equals {value}",
        predicate=lambda step, inputs, outputs: inputs[port] == value,
        c_predicate=f"in{port} == {value}",
    )

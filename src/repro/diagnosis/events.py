"""Diagnostic event records and the per-run aggregation log.

Over a 50-million-step simulation the same wrap can fire millions of
times; reports therefore aggregate per (actor path, kind): first step,
occurrence count, and one representative message — enough to reproduce the
paper's detection-time measurements (the first step *is* the detection
point) without unbounded memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class DiagnosticKind(enum.Enum):
    """One diagnosable error category."""

    WRAP_ON_OVERFLOW = "wrap_on_overflow"
    DIV_BY_ZERO = "div_by_zero"
    PRECISION_LOSS = "precision_loss"
    NON_FINITE = "non_finite"
    ARRAY_OUT_OF_BOUNDS = "array_out_of_bounds"
    DOWNCAST = "downcast"  # static configuration warning
    CUSTOM = "custom"

    @property
    def title(self) -> str:
        return {
            "wrap_on_overflow": "Wrap on overflow",
            "div_by_zero": "Division by zero",
            "precision_loss": "Precision loss",
            "non_finite": "Non-finite value",
            "array_out_of_bounds": "Array out of bounds",
            "downcast": "Downcast",
            "custom": "Custom diagnosis",
        }[self.value]


# ArithFlags field name -> kind (runtime flag mapping shared by engines).
FLAG_KINDS = (
    ("overflow", DiagnosticKind.WRAP_ON_OVERFLOW),
    ("div_by_zero", DiagnosticKind.DIV_BY_ZERO),
    ("precision_loss", DiagnosticKind.PRECISION_LOSS),
    ("non_finite", DiagnosticKind.NON_FINITE),
    ("out_of_bounds", DiagnosticKind.ARRAY_OUT_OF_BOUNDS),
)


@dataclass
class DiagnosticEvent:
    """Aggregated occurrences of one kind at one actor."""

    path: str
    kind: DiagnosticKind
    first_step: int  # -1 for static (pre-simulation) warnings
    count: int = 1
    message: str = ""

    def key(self) -> tuple[str, str]:
        return (self.path, self.kind.value)

    def __str__(self) -> str:
        when = "static" if self.first_step < 0 else f"step {self.first_step}"
        return (
            f"WARNING: {self.kind.title} at {self.path} "
            f"(first: {when}, count: {self.count})"
        )


class DiagnosticLog:
    """Per-run aggregation with optional halt-on-first semantics."""

    def __init__(self, halt_on: Optional[set[DiagnosticKind]] = None):
        self._events: dict[tuple[str, str], DiagnosticEvent] = {}
        self._halt_on = halt_on or set()
        self.halted_at: Optional[int] = None
        self.halt_event: Optional[DiagnosticEvent] = None

    def record(
        self, path: str, kind: DiagnosticKind, step: int, message: str = ""
    ) -> bool:
        """Record one occurrence; returns True if the run should halt."""
        key = (path, kind.value)
        event = self._events.get(key)
        if event is None:
            event = DiagnosticEvent(path, kind, step, 0, message)
            self._events[key] = event
        event.count += 1
        if kind in self._halt_on and self.halted_at is None:
            self.halted_at = step
            self.halt_event = event
            return True
        return False

    def add_static(self, path: str, kind: DiagnosticKind, message: str) -> None:
        key = (path, kind.value)
        if key not in self._events:
            self._events[key] = DiagnosticEvent(path, kind, -1, 1, message)

    def set_aggregate(
        self, path: str, kind: DiagnosticKind, first_step: int, count: int,
        message: str = "",
    ) -> None:
        """Install a pre-aggregated record (used by the generated-code
        result parser, which receives totals rather than occurrences).

        Records under the same key merge — several custom diagnoses on one
        actor aggregate exactly like the interpreted engine's log does.
        """
        key = (path, kind.value)
        existing = self._events.get(key)
        if existing is None or existing.first_step < 0:
            self._events[key] = DiagnosticEvent(path, kind, first_step, count, message)
        else:
            if first_step < existing.first_step:
                existing.first_step = first_step
                existing.message = message or existing.message
            existing.count += count

    def events(self) -> list[DiagnosticEvent]:
        """Events sorted by first occurrence, statics first."""
        return sorted(
            self._events.values(), key=lambda e: (e.first_step, e.path, e.kind.value)
        )

    def __len__(self) -> int:
        return len(self._events)

    def first_runtime_step(self, kind: Optional[DiagnosticKind] = None) -> Optional[int]:
        """Earliest runtime occurrence (of one kind, or any)."""
        steps = [
            e.first_step
            for e in self._events.values()
            if e.first_step >= 0 and (kind is None or e.kind is kind)
        ]
        return min(steps) if steps else None

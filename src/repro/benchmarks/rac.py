"""RAC — robotic arm controller (Table 1: 667 actors, 57 subsystems).
The largest model; control-heavy per the paper's analysis (mode logic,
per-joint limit supervision) around a PD servo core.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="RAC",
    description="Robotic arm controller",
    n_actors=667,
    n_subsystems=57,
    seed=0x0AC1,
    compute_weight=0.35,
    shares=(0.05, 0.12, 0.35, 0.48),
)


def _joint_servo(b: ModelBuilder, index: int, setpoint, feedback):
    """PD position servo for one joint, with limit supervision."""
    j = b.subsystem(f"Joint{index}", inputs=[setpoint, feedback])
    sp, fb = j.input_ref(0), j.input_ref(1)
    err = j.inner.sub("Err", sp, fb)
    p_term = j.inner.gain("P", err, 4.0)
    d_term = j.inner.block("DiscreteDerivative", "D", [err], params={})
    d_scaled = j.inner.gain("Kd", d_term, 0.5)
    cmd = j.inner.add("Cmd", p_term, d_scaled)
    safe = j.inner.saturation("Torque", cmd, -20.0, 20.0)
    railed = j.inner.logic(
        "Railed", "OR",
        [
            j.inner.block(
                "CompareToConstant", "HiRail", [cmd], operator=">",
                params={"constant": 20.0},
            ),
            j.inner.block(
                "CompareToConstant", "LoRail", [cmd], operator="<",
                params={"constant": -20.0},
            ),
        ],
    )
    j.set_output(safe, name="TorqueOut")
    j.set_output(railed, name="RailedOut")
    return j


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    target1 = b.inport("Target1", dtype=F64)
    target2 = b.inport("Target2", dtype=F64)
    pos1 = b.inport("Pos1", dtype=F64)
    pos2 = b.inport("Pos2", dtype=F64)
    mode = b.inport("OpMode", dtype=I32)

    j1 = _joint_servo(b, 1, target1, pos1)
    j2 = _joint_servo(b, 2, target2, pos2)

    # --- mode supervision: 0 stop, 1 slow, 2 full ------------------------
    mode_abs = b.abs_("ModeAbs", mode)
    mode_idx = b.block("Mod", "ModeIdx", [mode_abs, b.constant("NModes", 3)])
    scale = b.multiport_switch(
        "Scale", mode_idx,
        [b.constant("Stop", 0.0), b.constant("Slow", 0.25), b.constant("Full", 1.0)],
    )
    t1 = b.mul("T1", j1.out(0), scale)
    t2 = b.mul("T2", j2.out(0), scale)

    fault = b.logic("Fault", "OR", [j1.out(1), j2.out(1)])
    latched = b.data_store("fault_latch", dtype=I32, initial=0)
    prev = b.ds_read("FaultPrev", latched)
    hold = b.logic("Hold", "OR", [fault, b.relational("Was", ">", prev, b.constant("Z0", 0))])
    b.ds_write("FaultSet", latched, hold)

    safe1 = b.switch("Safe1", b.constant("Zero1", 0.0), hold, t1, threshold=1)
    safe2 = b.switch("Safe2", b.constant("Zero2", 0.0), hold, t2, threshold=1)
    b.outport("Torque1", safe1)
    b.outport("Torque2", safe2)
    b.outport("FaultOut", hold)

    return CoreRefs(int_ref=mode_idx, float_ref=t1)


def build() -> Model:
    return build_from_core(SPEC, _core)

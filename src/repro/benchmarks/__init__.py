"""The evaluation benchmark models.

Deterministic generators for the ten industrial models of the paper's
Table 1 — matching its ``#Actor`` / ``#SubSystem`` counts exactly and the
structural mix its analysis describes (LANS/LEDLC/SPV/TCP computation-
heavy, CPUT/RAC control-heavy) — plus the Figure-1 motivating model and
the CSEV error injections of the §4 case study.

Each model has a hand-written domain core (the CSEV charging logic with
its ``quantity`` data store, the TCP handshake state machine, ...) and is
filled to its Table-1 size with seeded pattern subsystems: some always
active, some gated by conditions of varying rarity, some permanently
disabled — which is what gives the Table-3 coverage-over-time dynamics.
"""

from repro.benchmarks.factory import (
    BENCHMARKS,
    TABLE1,
    BenchmarkSpec,
    benchmark_stimuli,
    build_benchmark,
)
from repro.benchmarks.motivating import build_motivating_model
from repro.benchmarks.inject import (
    build_csev_with_power_downcast,
    build_csev_with_quantity_overflow,
)

__all__ = [
    "BENCHMARKS",
    "TABLE1",
    "BenchmarkSpec",
    "build_benchmark",
    "benchmark_stimuli",
    "build_motivating_model",
    "build_csev_with_quantity_overflow",
    "build_csev_with_power_downcast",
]

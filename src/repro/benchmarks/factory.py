"""Benchmark model factory.

Builds each Table-1 model from a hand-written domain core plus seeded
pattern subsystems, hitting the paper's ``#Actor`` / ``#SubSystem`` counts
exactly.  Pattern subsystems fall into four activation categories, which
shape the Table-3 coverage-over-time behaviour:

* ``always`` — unconditionally executed;
* ``common`` — enabled by a frequently true comparison on a model input;
* ``late`` — enabled by a StepSource that only turns on after a seeded
  step threshold (log-uniform in 10^3..10^8), so faster engines reach more
  of them within a wall-clock budget — the mechanism behind AccMoS's
  coverage lead;
* ``never`` — enabled by a constant 0: unreachable with these test cases,
  capping every model's coverage ceiling below 100% like the paper's.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dtypes import DType, I32
from repro.model.builder import ModelBuilder, Ref
from repro.model.model import Model
from repro.benchmarks.patterns import (
    COMPUTE_KINDS,
    CONTROL_KINDS,
    pad_chain,
    pattern_subsystem,
)

# Minimum body budget per pattern kind (see patterns._BODIES).
_KIND_MIN = {"float_chain": 1, "int_chain": 1, "lookup": 3, "branch": 7, "counter": 7}


@dataclass(frozen=True)
class BenchmarkSpec:
    """Target shape of one Table-1 model."""

    name: str
    description: str
    n_actors: int
    n_subsystems: int
    seed: int
    compute_weight: float  # fraction of pattern subsystems that are compute
    shares: tuple[float, float, float, float]  # always, common, late, never
    int_dtype: DType = I32
    # Fraction of compute-pattern subsystems built from integer arithmetic
    # (the code gcc optimizes hardest) rather than float/libm chains.  The
    # paper's computation-heavy models (LANS/LEDLC/SPV/TCP) set this high;
    # everything else stays mostly float/control so the Table-2 ranking
    # reflects the paper's analysis.
    int_bias: float = 0.15


@dataclass
class CoreRefs:
    """What a domain core hands to the factory for filling."""

    int_ref: Ref  # an i32-ish signal to branch patterns off
    float_ref: Ref  # a float signal to branch patterns off


CoreFn = Callable[[ModelBuilder, random.Random], CoreRefs]


def _assign_categories(n: int, shares, rng: random.Random) -> list[str]:
    names = ("always", "common", "late", "never")
    counts = [int(round(share * n)) for share in shares]
    while sum(counts) > n:
        counts[counts.index(max(counts))] -= 1
    while sum(counts) < n:
        counts[0] += 1
    cats = [name for name, count in zip(names, counts) for _ in range(count)]
    rng.shuffle(cats)
    return cats


def _plan_sizes(total: int, minima: list[int], rng: random.Random) -> list[int]:
    sizes = list(minima)
    rest = total - sum(sizes)
    if rest < 0:
        raise ValueError(
            f"cannot fit {len(minima)} pattern subsystems into {total} actors"
        )
    for _ in range(rest):
        sizes[rng.randrange(len(sizes))] += 1
    return sizes


def _choose_kind(
    budget: int, compute_weight: float, int_bias: float, rng: random.Random
) -> str:
    pool = [k for k in COMPUTE_KINDS if _KIND_MIN[k] <= budget]
    control = [k for k in CONTROL_KINDS if _KIND_MIN[k] <= budget]
    if control and rng.random() > compute_weight:
        return rng.choice(control)
    if "int_chain" in pool and rng.random() < int_bias:
        return "int_chain"
    return rng.choice(pool)


def _enable_ref(
    b: ModelBuilder, category: str, refs: CoreRefs, rng: random.Random
) -> Optional[Ref]:
    if category == "always":
        return None
    if category == "common":
        return b.block(
            "CompareToConstant", b.fresh_name("En"), [refs.int_ref],
            operator=">", params={"constant": rng.randint(-20, 60)},
        )
    if category == "late":
        at = int(math.exp(rng.uniform(math.log(1e3), math.log(1e8))))
        return b.block(
            "StepSource", b.fresh_name("EnLate"),
            params={"at": at, "before": 0, "after": 1},
        )
    return b.constant(b.fresh_name("EnNever"), 0)


def build_from_core(spec: BenchmarkSpec, core: CoreFn) -> Model:
    """Assemble a benchmark model: core, pattern fill, exact-count pad."""
    rng = random.Random(spec.seed)
    b = ModelBuilder(spec.name)
    refs = core(b, rng)
    model = b.scope  # root scope; counts read through the Model below
    partial = Model(spec.name, root=b.scope)

    n_subs = spec.n_subsystems - partial.n_subsystems
    if n_subs < 0:
        raise ValueError(f"{spec.name}: core already exceeds the subsystem target")
    categories = _assign_categories(n_subs, spec.shares, rng)

    # Reserve root actors: one enable source per non-always subsystem,
    # plus a small pad margin so sizes never have to hit exact minima.
    enable_overhead = sum(1 for c in categories if c != "always")
    pad_margin = min(4, max(0, spec.n_actors - partial.n_actors - enable_overhead) // 80)
    available = (
        spec.n_actors - partial.n_actors - enable_overhead - pad_margin
    )
    minima = []
    for category in categories:
        overhead = 2 + (1 if category != "always" else 0)
        minima.append(overhead + 1)  # smallest body is a 1-actor chain
    sizes = _plan_sizes(available, minima, rng)

    for i, (category, size) in enumerate(zip(categories, sizes)):
        enable = _enable_ref(b, category, refs, rng)
        overhead = 2 + (1 if enable is not None else 0)
        kind = _choose_kind(size - overhead, spec.compute_weight,
                            spec.int_bias, rng)
        src = refs.float_ref if kind in ("float_chain", "lookup", "counter") else refs.int_ref
        pattern_subsystem(
            b, f"Blk{i + 1}_{category}", kind, src, size, rng,
            enable=enable, int_dtype=spec.int_dtype,
        )

    remaining = spec.n_actors - partial.n_actors
    pad_chain(b, refs.float_ref, remaining, None)

    built = b.build()
    if built.n_actors != spec.n_actors or built.n_subsystems != spec.n_subsystems:
        raise AssertionError(
            f"{spec.name}: built {built.n_actors} actors / "
            f"{built.n_subsystems} subsystems, wanted {spec.n_actors} / "
            f"{spec.n_subsystems}"
        )
    built.description = spec.description
    return built


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _module_builder(module_name: str):
    def build() -> Model:
        import importlib

        module = importlib.import_module(f"repro.benchmarks.{module_name}")
        return module.build()

    return build


BENCHMARKS: dict[str, Callable[[], Model]] = {
    name: _module_builder(name.lower())
    for name in (
        "CPUT", "CSEV", "FMTM", "LANS", "LEDLC",
        "RAC", "SPV", "TCP", "TWC", "UTPC",
    )
}

# Table 1 of the paper: functionality, #Actor, #SubSystem.
TABLE1 = {
    "CPUT": ("AutoSAR CPU task dispatch system", 275, 27),
    "CSEV": ("Charging system of electric vehicle", 152, 17),
    "FMTM": ("Factory Multi-point Temperature Monitor", 276, 42),
    "LANS": ("LAN Switch controller", 570, 39),
    "LEDLC": ("LED light controller", 170, 31),
    "RAC": ("Robotic arm controller", 667, 57),
    "SPV": ("Solar PV panel output control", 131, 16),
    "TCP": ("TCP three-way handshake protocol", 330, 42),
    "TWC": ("Train wheel speed controller", 214, 13),
    "UTPC": ("Underwater thruster power control", 214, 21),
}


def build_benchmark(name: str) -> Model:
    """Build one Table-1 benchmark model by name."""
    try:
        builder = BENCHMARKS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None
    return builder()


def benchmark_stimuli(prog, *, seed: int = 1):
    """The evaluation's random test cases for a benchmark program."""
    from repro.stimuli import default_stimuli

    return default_stimuli(prog, seed=seed)

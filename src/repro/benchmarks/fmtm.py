"""FMTM — factory multi-point temperature monitor (Table 1: 276 actors,
42 subsystems).  Many small per-sensor subsystems: filter, calibrate,
compare against limits, aggregate alarms.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="FMTM",
    description="Factory Multi-point Temperature Monitor",
    n_actors=276,
    n_subsystems=42,
    seed=0xF313,
    compute_weight=0.55,
    shares=(0.05, 0.10, 0.37, 0.48),
)

N_SENSORS = 3


def _sensor_channel(b: ModelBuilder, index: int, raw, limit: float):
    """One measurement channel: scale, smooth, range-check."""
    ch = b.subsystem(f"Sensor{index}", inputs=[raw])
    x = ch.input_ref(0)
    scaled = ch.inner.gain("Scale", x, 120.0)  # [0,1) -> degrees C
    offset = ch.inner.bias("Offset", scaled, -5.0 * index)
    smooth = ch.inner.block(
        "DiscreteFilter", "Smooth", [offset], params={"b0": 0.25, "a1": 0.75}
    )
    alarm = ch.inner.block(
        "CompareToConstant", "Alarm", [smooth], operator=">",
        params={"constant": limit},
    )
    ch.set_output(smooth, name="TempOut")
    ch.set_output(alarm, name="AlarmOut")
    return ch


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    raws = [b.inport(f"Probe{i}", dtype=F64) for i in range(N_SENSORS)]
    scan = b.inport("Scan", dtype=I32)

    channels = [
        _sensor_channel(b, i, raw, limit)
        for i, (raw, limit) in enumerate(zip(raws, (95.0, 90.0, 85.0)))
    ]

    temps = [ch.out(0) for ch in channels]
    alarms = [ch.out(1) for ch in channels]

    hottest = b.min_max("Hottest", "max", temps)
    mean3 = b.gain("Mean", b.sum_("TempSum", temps), 1.0 / N_SENSORS)
    any_alarm = b.logic("AnyAlarm", "OR", alarms)
    all_alarm = b.logic("AllAlarm", "AND", alarms)

    # Scan-selected channel readout.
    scan_abs = b.abs_("ScanAbs", scan)
    scan_idx = b.block("Mod", "ScanIdx", [scan_abs, b.constant("NSensors", N_SENSORS)])
    selected = b.multiport_switch("Selected", scan_idx, temps)

    b.outport("HottestOut", hottest)
    b.outport("MeanTemp", mean3)
    b.outport("AnyAlarmOut", any_alarm)
    b.outport("Critical", all_alarm)
    b.outport("SelectedOut", selected)

    return CoreRefs(int_ref=scan_idx, float_ref=hottest)


def build() -> Model:
    return build_from_core(SPEC, _core)

"""SPV — solar PV panel output control (Table 1: 131 actors, 16
subsystems).  The smallest model and strongly computation-bound: power
curve interpolation, perturb-and-observe tracking, efficiency maths.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="SPV",
    description="Solar PV panel output control",
    n_actors=131,
    n_subsystems=16,
    seed=0x59F5,
    compute_weight=0.85,
    int_bias=0.7,
    shares=(0.28, 0.15, 0.07, 0.50),
)

# Panel IV power curve vs normalized operating voltage.
CURVE_BP = [0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 1.0]
CURVE_PW = [0.0, 0.35, 0.65, 0.88, 0.96, 1.0, 0.85, 0.0]


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    irradiance = b.inport("Irradiance", dtype=F64)  # 0..1
    cell_temp = b.inport("CellTemp", dtype=F64)
    grid_ok = b.inport("GridOk", dtype=I32)

    # --- maximum power point tracking (perturb & observe) -----------------
    mppt = b.subsystem("MPPT", inputs=[irradiance])
    irr = mppt.input_ref(0)
    vop = mppt.inner.block(
        "DiscreteIntegrator", "Vop", [
            mppt.inner.dead_zone("Perturb", mppt.inner.block(
                "DiscreteDerivative", "dIrr", [irr], params={}
            ), -0.001, 0.001)
        ], params={"gain": 0.5, "initial": 0.7},
    )
    vclamped = mppt.inner.saturation("Vclamp", vop, 0.0, 1.0)
    mppt.set_output(vclamped)
    vnorm = mppt.out(0)

    # --- panel power model ---------------------------------------------------
    curve = b.lookup1d("IVCurve", vnorm, CURVE_BP, CURVE_PW)
    raw_power = b.mul("RawPower", curve, irradiance)
    # Temperature derating: -0.4%/degree above 25C (temp input is 0..1 -> 0..80C).
    degrees = b.gain("Degrees", cell_temp, 80.0)
    excess = b.dead_zone("Excess", degrees, 0.0, 25.0)
    derate = b.sub("Derate", b.constant("One", 1.0), b.gain("TempCo", excess, 0.004))
    derated = b.mul("Derated", raw_power, derate)
    watts = b.gain("Watts", derated, 320.0)

    # --- grid interface -------------------------------------------------------
    # Export only when the grid is up AND the panel is producing AND the
    # cells are not critically hot — a combination condition (MC/DC target).
    grid_up = b.relational("GridUp", ">", grid_ok, b.constant("Z", 0))
    producing = b.relational("Producing", ">", watts, b.constant("MinW", 1.0))
    cool = b.relational("Cool", "<", degrees, b.constant("MaxC", 75.0))
    exporting = b.logic("Exporting", "AND", [grid_up, producing, cool])
    out_watts = b.switch(
        "OutWatts", watts, exporting, b.constant("Island", 0.0), threshold=1
    )
    energy = b.accumulator("EnergyWh", b.gain("PerStep", out_watts, 1.0 / 3600.0))

    b.outport("PowerW", out_watts)
    b.outport("EnergyOut", energy)
    b.outport("VopOut", vnorm)

    return CoreRefs(int_ref=grid_ok, float_ref=watts)


def build() -> Model:
    return build_from_core(SPEC, _core)

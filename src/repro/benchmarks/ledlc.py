"""LEDLC — LED light controller (Table 1: 170 actors, 31 subsystems).
Computation-heavy: gamma lookup, PWM synthesis, soft-start ramping.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="LEDLC",
    description="LED light controller",
    n_actors=170,
    n_subsystems=31,
    seed=0x1EDC,
    compute_weight=0.80,
    int_bias=0.75,
    shares=(0.25, 0.20, 0.08, 0.47),
)

GAMMA_BP = [0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0]
GAMMA_TABLE = [0.0, 0.004, 0.022, 0.063, 0.135, 0.245, 0.402, 0.617, 1.0]


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    level = b.inport("Level", dtype=F64)     # requested brightness 0..1
    daylight = b.inport("Daylight", dtype=F64)
    enable = b.inport("Enable", dtype=I32)

    # --- gamma correction + daylight compensation ------------------------
    gamma = b.lookup1d("Gamma", level, GAMMA_BP, GAMMA_TABLE)
    comp = b.sub("Comp", gamma, b.gain("DayScale", daylight, 0.3))
    target = b.saturation("Target", comp, 0.0, 1.0)

    # --- soft start (slew-limited brightness) -----------------------------
    soft = b.block(
        "RateLimiter", "SoftStart", [target],
        params={"rising": 0.02, "falling": 0.05},
    )

    # --- PWM synthesis ------------------------------------------------------
    pwm = b.subsystem("PWM", inputs=[soft])
    duty = pwm.input_ref(0)
    carrier = pwm.inner.block("Counter", "Carrier", params={"limit": 256})
    carrier_f = pwm.inner.gain("CarrierF", carrier, 1.0 / 256.0)
    on = pwm.inner.relational("On", ">=", duty, carrier_f)
    pwm.set_output(on)
    # Drive only when enabled AND it is dark enough AND a duty is requested
    # — a combination condition (MC/DC target).
    en_on = b.relational("EnOn", ">", enable, b.constant("Z", 0))
    dark = b.relational("Dark", "<", daylight, b.constant("Dusk", 0.35))
    wants = b.relational("Wants", ">", level, b.constant("MinLevel", 0.01))
    drive = b.logic("Drive", "AND", [en_on, dark, wants])
    gated = b.switch(
        "Gated", pwm.out(0), drive, b.constant("Off", 0), threshold=1
    )
    b.outport("LedDrive", gated)
    b.outport("Brightness", soft)

    # --- power estimate -----------------------------------------------------
    watts = b.mul("Watts", soft, b.constant("MaxW", 18.0))
    b.outport("Power", watts)

    return CoreRefs(int_ref=enable, float_ref=soft)


def build() -> Model:
    return build_from_core(SPEC, _core)

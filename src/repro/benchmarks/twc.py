"""TWC — train wheel speed controller (Table 1: 214 actors, 13
subsystems).  Few, large subsystems (the lowest subsystem count per actor
in Table 1): slip detection from wheel vs. train speed, adhesion-limited
traction command, brake release logic.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="TWC",
    description="Train wheel speed controller",
    n_actors=214,
    n_subsystems=13,
    seed=0x73C2,
    compute_weight=0.60,
    shares=(0.15, 0.12, 0.28, 0.45),
)


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    wheel = b.inport("WheelSpeed", dtype=F64)
    train = b.inport("TrainSpeed", dtype=F64)
    demand = b.inport("TractionDemand", dtype=F64)
    brake = b.inport("BrakeRequest", dtype=I32)

    # --- slip detection -----------------------------------------------------
    slip = b.subsystem("SlipDetect", inputs=[wheel, train])
    w, t = slip.input_ref(0), slip.input_ref(1)
    ws = slip.inner.gain("WheelKph", w, 300.0)
    ts = slip.inner.gain("TrainKph", t, 300.0)
    diff = slip.inner.sub("Diff", ws, ts)
    mag = slip.inner.abs_("Mag", diff)
    ratio = slip.inner.div(
        "Ratio", mag, slip.inner.bias("Floor", ts, 1.0)
    )
    slipping = slip.inner.block(
        "CompareToConstant", "Slipping", [ratio], operator=">",
        params={"constant": 0.08},
    )
    slip.set_output(slipping, name="SlipOut")
    slip.set_output(ratio, name="RatioOut")

    # --- adhesion-limited traction --------------------------------------------
    limited = b.block(
        "RateLimiter", "Jerk", [demand], params={"rising": 0.05, "falling": 0.2}
    )
    cut = b.switch(
        "SlipCut", b.gain("Half", limited, 0.5), slip.out(0), limited, threshold=1
    )
    traction = b.saturation("Traction", cut, 0.0, 1.0)

    # --- brake interlock ---------------------------------------------------------
    braking = b.relational("Braking", ">", brake, b.constant("Z", 0))
    command = b.switch("Command", b.constant("Coast", 0.0), braking, traction, threshold=1)
    effort = b.gain("EffortKN", command, 250.0)

    # --- odometer ------------------------------------------------------------------
    dist = b.accumulator("Odometer", b.gain("PerStep", train, 0.01))

    b.outport("TractionCmd", effort)
    b.outport("SlipOut", slip.out(0))
    b.outport("Distance", dist)

    return CoreRefs(int_ref=brake, float_ref=effort)


def build() -> Model:
    return build_from_core(SPEC, _core)

"""CPUT — AutoSAR CPU task dispatch system (Table 1: 275 actors, 27
subsystems).  Control-heavy: priority arbitration, preemption logic, a
running-task store, and a watchdog — the branchy structure the paper's
analysis credits with *lower* AccMoS speedups than compute-bound models.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="CPUT",
    description="AutoSAR CPU task dispatch system",
    n_actors=275,
    n_subsystems=27,
    seed=0xC907,
    compute_weight=0.30,
    shares=(0.08, 0.12, 0.32, 0.48),
)


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    req_a = b.inport("ReqA", dtype=I32)
    req_b = b.inport("ReqB", dtype=I32)
    req_c = b.inport("ReqC", dtype=I32)
    load = b.inport("Load", dtype=F64)

    # --- priority arbitration -----------------------------------------
    prio_a = b.abs_("PrioA", req_a)
    prio_b = b.abs_("PrioB", req_b)
    prio_c = b.abs_("PrioC", req_c)
    ab = b.relational("AoverB", ">=", prio_a, prio_b)
    winner_ab = b.switch("WinAB", prio_a, ab, prio_b, threshold=1)
    abc = b.relational("ABoverC", ">=", winner_ab, prio_c)
    top_prio = b.switch("WinABC", winner_ab, abc, prio_c, threshold=1)

    task_id_ab = b.switch("IdAB", b.constant("IdA", 0), ab, b.constant("IdB", 1), threshold=1)
    task_id = b.switch("Id", task_id_ab, abc, b.constant("IdC", 2), threshold=1)

    # --- dispatch / preemption -----------------------------------------
    running = b.data_store("running_task", dtype=I32, initial=-1)
    current = b.ds_read("Current", running)
    idle = b.relational("Idle", "<", current, b.constant("NoTask", 0))
    urgent = b.block(
        "CompareToConstant", "Urgent", [top_prio], operator=">",
        params={"constant": 80},
    )
    dispatch = b.logic("Dispatch", "OR", [idle, urgent])
    next_task = b.switch("NextTask", task_id, dispatch, current, threshold=1)
    b.ds_write("Store", running, next_task)

    # --- time-slice accounting ------------------------------------------
    slice_counter = b.counter("Slice", limit=16)
    slice_end = b.relational(
        "SliceEnd", "==", slice_counter, b.constant("SliceMax", 15)
    )
    b.outport("Running", next_task)
    b.outport("Preempt", slice_end)

    # --- watchdog subsystem ----------------------------------------------
    wd = b.subsystem("Watchdog", inputs=[load])
    load_in = wd.input_ref(0)
    filt = wd.inner.block(
        "DiscreteFilter", "LoadAvg", [load_in], params={"b0": 0.1, "a1": 0.9}
    )
    over = wd.inner.block(
        "CompareToConstant", "Overload", [filt], operator=">",
        params={"constant": 0.85},
    )
    wd.set_output(over)
    b.outport("WatchdogTrip", wd.out(0))

    return CoreRefs(int_ref=top_prio, float_ref=load)


def build() -> Model:
    return build_from_core(SPEC, _core)

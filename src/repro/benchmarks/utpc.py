"""UTPC — underwater thruster power control (Table 1: 214 actors, 21
subsystems).  Depth-dependent power compensation, thermal accumulation,
and battery budget supervision.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="UTPC",
    description="Underwater thruster power control",
    n_actors=214,
    n_subsystems=21,
    seed=0x09FC,
    compute_weight=0.60,
    shares=(0.08, 0.12, 0.18, 0.62),
)


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    thrust_cmd = b.inport("ThrustCmd", dtype=F64)  # 0..1
    depth = b.inport("Depth", dtype=F64)  # 0..1 -> 0..500 m
    water_temp = b.inport("WaterTemp", dtype=F64)
    battery = b.inport("BatteryMilliV", dtype=I32)

    # --- depth compensation: drag rises with pressure ----------------------
    meters = b.gain("Meters", depth, 500.0)
    # Pressure factor: 1 + 0.0008*m + 0.0000006*m^2 (Horner polynomial).
    pressure = b.block(
        "Polynomial", "Pressure", [meters],
        params={"coeffs": [0.0000006, 0.0008, 1.0]},
    )
    compensated = b.mul("Compensated", thrust_cmd, pressure)

    # --- motor power and thermal model -------------------------------------
    power = b.subsystem("MotorPower", inputs=[compensated, water_temp])
    cmd, wt = power.input_ref(0), power.input_ref(1)
    squared = power.inner.math("Squared", "square", cmd)
    watts = power.inner.gain("Watts", squared, 1200.0)
    cooling = power.inner.gain("Cooling", wt, -40.0)
    heat = power.inner.add("NetHeat", watts, cooling)
    core_temp = power.inner.block(
        "DiscreteFilter", "CoreTemp", [heat], params={"b0": 0.02, "a1": 0.98}
    )
    hot = power.inner.block(
        "CompareToConstant", "Overheat", [core_temp], operator=">",
        params={"constant": 55.0},
    )
    power.set_output(watts, name="WattsOut")
    power.set_output(hot, name="HotOut")

    # --- battery budget -----------------------------------------------------
    volts_ok = b.relational(
        "VoltsOk", ">", battery, b.constant("MinMilliV", 10)
    )
    runnable = b.logic("Runnable", "AND", [volts_ok, b.not_("Cool", power.out(1))])
    applied = b.switch("Applied", power.out(0), runnable, b.constant("Idle", 0.0), threshold=1)
    drawn = b.accumulator("EnergyJ", b.gain("PerStep", applied, 0.001))

    b.outport("MotorWatts", applied)
    b.outport("EnergyOut", drawn)
    b.outport("OverheatOut", power.out(1))

    return CoreRefs(int_ref=battery, float_ref=applied)


def build() -> Model:
    return build_from_core(SPEC, _core)

"""Parametric subsystem patterns used to fill benchmark models.

Every pattern adds an *exact* number of actors (counting the subsystem's
own boundary ports and any enable port), so the factory can hit Table 1's
per-model actor counts precisely.  Patterns are seeded: the same model
name always generates the same structure.

Two families mirror the paper's structural analysis:

* *compute* patterns — chains of arithmetic actors (the kind whose
  generated code benefits most from compiler optimization, §4);
* *control* patterns — relational/logic/switch clusters (branchy code,
  smaller speedups, and the source of condition/decision/MC/DC points).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dtypes import I32, DType
from repro.model.builder import ModelBuilder, Ref


def pad_chain(b: ModelBuilder, src: Ref, count: int, dtype: Optional[DType]) -> Ref:
    """Append exactly ``count`` pass-through-ish actors after ``src``."""
    ref = src
    for _ in range(count):
        ref = b.gain(b.fresh_name("Pad"), ref, 1, dtype=dtype)
    return ref


_FLOAT_OPS = ("gain", "bias", "saturate", "deadzone", "quantize", "math",
              "filter", "delay", "ratelimit", "round")
_INT_OPS = ("gain", "bias", "abs", "shift", "delay", "saturate")
_MATH_SAFE = ("sin", "cos", "tanh", "atan", "square")


def _float_chain_body(inner: ModelBuilder, src: Ref, budget: int, rng: random.Random) -> Ref:
    """``budget`` cost-1 float actors chained after ``src``."""
    ref = src
    for i in range(budget):
        name = inner.fresh_name("Op")
        if i % 4 == 3:
            # Periodic clamping keeps rng-assembled chains finite.
            ref = inner.saturation(name, ref, -1e6, 1e6)
            continue
        op = rng.choice(_FLOAT_OPS)
        if op == "gain":
            ref = inner.gain(name, ref, rng.choice([0.5, 1.25, 2.0, -1.5]))
        elif op == "bias":
            ref = inner.bias(name, ref, rng.choice([-3.0, 0.25, 7.5]))
        elif op == "saturate":
            ref = inner.saturation(name, ref, -500.0, 500.0)
        elif op == "deadzone":
            ref = inner.dead_zone(name, ref, -1.0, 1.0)
        elif op == "quantize":
            ref = inner.quantizer(name, ref, rng.choice([0.25, 0.5, 2.0]))
        elif op == "math":
            ref = inner.math(name, rng.choice(_MATH_SAFE), ref)
        elif op == "filter":
            ref = inner.block(
                "DiscreteFilter", name, [ref], params={"b0": 0.3, "a1": 0.7}
            )
        elif op == "delay":
            ref = inner.unit_delay(name, ref, initial=0.0)
        elif op == "ratelimit":
            ref = inner.block(
                "RateLimiter", name, [ref],
                params={"rising": 10.0, "falling": 10.0},
            )
        else:  # round
            ref = inner.rounding(name, rng.choice(["floor", "ceil", "round"]), ref)
    return ref


def _int_chain_body(
    inner: ModelBuilder, src: Ref, budget: int, rng: random.Random, dtype: DType
) -> Ref:
    """``budget`` cost-1 integer actors chained after ``src``."""
    ref = src
    for i in range(budget):
        name = inner.fresh_name("Op")
        if i % 5 == 4:
            lo, hi = dtype.min_value // 2, dtype.max_value // 2
            ref = inner.saturation(name, ref, lo, hi, dtype=dtype)
            continue
        op = rng.choice(_INT_OPS)
        if op == "gain":
            ref = inner.gain(name, ref, rng.choice([2, 3, -2]), dtype=dtype)
        elif op == "bias":
            ref = inner.bias(name, ref, rng.choice([-7, 5, 13]), dtype=dtype)
        elif op == "abs":
            ref = inner.abs_(name, ref, dtype=dtype)
        elif op == "shift":
            ref = inner.shift(name, ">>", ref, rng.choice([1, 2]), dtype=dtype)
        elif op == "delay":
            ref = inner.unit_delay(name, ref, initial=0, dtype=dtype)
        else:
            lo, hi = dtype.min_value // 4, dtype.max_value // 4
            ref = inner.saturation(name, ref, lo, hi, dtype=dtype)
    return ref


def _branch_body(inner: ModelBuilder, src: Ref, budget: int, rng: random.Random) -> Ref:
    """Control-flavoured body: comparisons, logic, switches.

    Minimum budget 7; the remainder is more compare/switch rounds or pads.
    """
    ref = src
    remaining = budget
    first = True
    while remaining >= 7 or (first and remaining >= 7):
        first = False
        t1, t2 = rng.randint(-50, 50), rng.randint(-50, 50)
        r1 = inner.block(
            "CompareToConstant", inner.fresh_name("Cmp"), [ref],
            operator=rng.choice([">", "<", ">="]), params={"constant": t1},
        )
        r2 = inner.block(
            "CompareToConstant", inner.fresh_name("Cmp"), [ref],
            operator=rng.choice(["<=", "!=", "=="]), params={"constant": t2},
        )
        lg = inner.logic(
            inner.fresh_name("Lg"), rng.choice(["AND", "OR", "XOR"]), [r1, r2]
        )
        alt = inner.gain(inner.fresh_name("Alt"), ref, rng.choice([2, -1, 3]))
        neg = inner.neg(inner.fresh_name("Neg"), ref)
        ref = inner.switch(
            inner.fresh_name("Sw"), alt, lg, neg, threshold=1
        )
        remaining -= 6
    return pad_chain(inner, ref, remaining, None)


def _counter_body(inner: ModelBuilder, src: Ref, budget: int, rng: random.Random) -> Ref:
    """Timer/counter logic (min 6): counter, pulse, compares, a switch."""
    counter = inner.counter(
        inner.fresh_name("Cnt"), limit=rng.choice([7, 24, 60, 100])
    )
    period = rng.choice([16, 48, 128])
    pulse = inner.block(
        "PulseGenerator", inner.fresh_name("Pulse"),
        params={"period": period, "duty": period // 4, "amplitude": 1},
    )
    near_end = inner.block(
        "CompareToConstant", inner.fresh_name("Late"), [counter],
        operator=">", params={"constant": 3},
    )
    gate = inner.logic(inner.fresh_name("Gate"), "AND", [pulse, near_end])
    ref = inner.switch(
        inner.fresh_name("Sw"), src, gate,
        inner.constant(inner.fresh_name("Idle"), 0), threshold=1,
    )
    return pad_chain(inner, ref, budget - 6, None)


def _lookup_body(inner: ModelBuilder, src: Ref, budget: int, rng: random.Random) -> Ref:
    """Table-driven body (min 3): saturate, interpolate, quantize."""
    safe = inner.saturation(inner.fresh_name("Clamp"), src, -10.0, 10.0)
    n = rng.choice([5, 9])
    bp = [(-10.0 + 20.0 * i / (n - 1)) for i in range(n)]
    table = [rng.uniform(-5.0, 5.0) for _ in range(n)]
    ref = inner.lookup1d(inner.fresh_name("Lut"), safe, bp, table)
    return pad_chain(inner, ref, budget - 2, None)


_BODIES = {
    "float_chain": (_float_chain_body, 1),
    "int_chain": (None, 1),  # dispatched specially (dtype argument)
    "branch": (_branch_body, 7),
    "counter": (_counter_body, 7),
    "lookup": (_lookup_body, 3),
}

COMPUTE_KINDS = ("float_chain", "int_chain", "lookup")
CONTROL_KINDS = ("branch", "counter")

MIN_PATTERN_ACTORS = 2 + max(m for _, m in _BODIES.values()) + 1  # ports+body+enable


def pattern_subsystem(
    b: ModelBuilder,
    name: str,
    kind: str,
    src: Ref,
    n_actors: int,
    rng: random.Random,
    *,
    enable: Optional[Ref] = None,
    int_dtype: DType = I32,
) -> Ref:
    """Create one pattern subsystem with exactly ``n_actors`` actors.

    The count includes the inport, outport, and (when ``enable`` is given)
    the enable port.  Returns the parent-scope output reference.
    """
    overhead = 2 + (1 if enable is not None else 0)
    budget = n_actors - overhead
    _, min_budget = _BODIES[kind]
    if budget < min_budget:
        raise ValueError(
            f"pattern {kind!r} needs at least {min_budget + overhead} actors, "
            f"got {n_actors}"
        )
    sub = b.subsystem(name, inputs=[src])
    inner_src = sub.input_ref(0)
    if kind == "int_chain":
        ref = _int_chain_body(sub.inner, inner_src, budget, rng, int_dtype)
    else:
        body, _ = _BODIES[kind]
        ref = body(sub.inner, inner_src, budget, rng)
    out = sub.set_output(ref)
    if enable is not None:
        sub.set_enable(enable)
    return out

"""TCP — three-way handshake protocol model (Table 1: 330 actors, 42
subsystems).  A connection state machine (CLOSED → SYN_SENT/SYN_RCVD →
ESTABLISHED) with sequence-number arithmetic and retransmission timers;
computation-heavy per the paper's Table-2 analysis (the checksum/sequence
arithmetic dominates).
"""

from __future__ import annotations

import random

from repro.dtypes import I32, U32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="TCP",
    description="TCP three-way handshake protocol",
    n_actors=330,
    n_subsystems=42,
    seed=0x7C93,
    compute_weight=0.75,
    int_bias=0.85,
    shares=(0.12, 0.15, 0.15, 0.58),
)

CLOSED, SYN_SENT, SYN_RCVD, ESTABLISHED = 0, 1, 2, 3


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    syn = b.inport("SynFlag", dtype=I32)
    ack = b.inport("AckFlag", dtype=I32)
    rst = b.inport("RstFlag", dtype=I32)
    seq_in = b.inport("SeqIn", dtype=I32)

    got_syn = b.relational("GotSyn", ">", syn, b.constant("Z1", 0))
    got_ack = b.relational("GotAck", ">", ack, b.constant("Z2", 0))
    got_rst = b.relational("GotRst", ">", rst, b.constant("Z3", 0))
    synack = b.logic("SynAck", "AND", [got_syn, got_ack])

    # --- connection state machine -----------------------------------------
    state_store = b.data_store("conn_state", dtype=I32, initial=CLOSED)
    state = b.ds_read("State", state_store)
    in_closed = b.block(
        "CompareToConstant", "InClosed", [state], operator="==",
        params={"constant": CLOSED},
    )
    in_syn_sent = b.block(
        "CompareToConstant", "InSynSent", [state], operator="==",
        params={"constant": SYN_SENT},
    )
    in_syn_rcvd = b.block(
        "CompareToConstant", "InSynRcvd", [state], operator="==",
        params={"constant": SYN_RCVD},
    )

    # CLOSED --syn--> SYN_RCVD (passive) ; CLOSED --(local open pulse)--> SYN_SENT
    local_open = b.block(
        "PulseGenerator", "LocalOpen", params={"period": 97, "duty": 1, "amplitude": 1},
    )
    open_now = b.relational("OpenNow", ">", local_open, b.constant("Z4", 0))
    passive = b.logic("Passive", "AND", [in_closed, got_syn])
    active = b.logic("Active", "AND", [in_closed, open_now])
    to_estab_a = b.logic("EstabA", "AND", [in_syn_sent, synack])
    to_estab_b = b.logic("EstabB", "AND", [in_syn_rcvd, got_ack])
    established = b.logic("Established", "OR", [to_estab_a, to_estab_b])

    after_open = b.switch("AfterOpen", b.constant("SSent", SYN_SENT), active, state, threshold=1)
    after_passive = b.switch("AfterSyn", b.constant("SRcvd", SYN_RCVD), passive, after_open, threshold=1)
    after_estab = b.switch("AfterEstab", b.constant("SEst", ESTABLISHED), established, after_passive, threshold=1)
    next_state = b.switch("NextState", b.constant("SClosed", CLOSED), got_rst, after_estab, threshold=1)
    b.ds_write("StoreState", state_store, next_state)

    # --- sequence number arithmetic -----------------------------------------
    seq_u = b.dtc("SeqU", seq_in, U32)
    isn = b.block("Counter", "ISN", params={"limit": 1 << 16})
    isn_u = b.dtc("IsnU", isn, U32)
    next_seq = b.add("NextSeq", seq_u, b.constant("One", 1, dtype=U32), dtype=U32)
    ack_no = b.add("AckNo", next_seq, isn_u, dtype=U32)
    cksum1 = b.bitwise("Ck1", "XOR", [seq_u, ack_no], dtype=U32)
    cksum2 = b.shift("Ck2", ">>", cksum1, 16, dtype=U32)
    cksum = b.bitwise("Ck3", "XOR", [cksum1, cksum2], dtype=U32)

    # --- retransmission timer -------------------------------------------------
    rto = b.subsystem("Retransmit", inputs=[next_state])
    st_in = rto.input_ref(0)
    waiting = rto.inner.block(
        "CompareToConstant", "Waiting", [st_in], operator="<",
        params={"constant": ESTABLISHED},
    )
    timer = rto.inner.block("Counter", "Timer", params={"limit": 64})
    expired = rto.inner.block(
        "CompareToConstant", "Expired", [timer], operator="==",
        params={"constant": 63},
    )
    resend = rto.inner.logic("Resend", "AND", [waiting, expired])
    rto.set_output(resend)

    b.outport("ConnState", next_state)
    b.outport("AckNumber", ack_no)
    b.outport("Checksum", cksum)
    b.outport("RetransmitOut", rto.out(0))

    return CoreRefs(int_ref=next_state, float_ref=b.gain("SeqF", seq_in, 0.01))


def build() -> Model:
    return build_from_core(SPEC, _core)

"""CSEV — charging system of an electric vehicle (Table 1: 152 actors,
17 subsystems).

The §4 case-study model.  Its core carries the two structures the paper
injects errors into:

* a ``quantity`` DataStoreMemory (int32) accumulating charged energy.  The
  healthy model widens to int64, saturates below INT32_MAX, and narrows
  back before the store write; the *injected* variant accumulates directly
  in int32, so a long simulation eventually wraps (error 1);
* a charging-power Product from rated voltage and current.  Healthy output
  type int32; the injected variant narrows it to short int (int16), which
  wraps immediately (error 2).
"""

from __future__ import annotations

import random

from repro.dtypes import I16, I32, I64
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="CSEV",
    description="Charging system of electric vehicle",
    n_actors=152,
    n_subsystems=17,
    seed=0xC5EF,
    compute_weight=0.55,
    shares=(0.30, 0.14, 0.06, 0.50),
)

# Rated voltage/current per charging mode (slow AC, fast AC, DC, supercharge).
RATED_VOLTAGE = [220, 240, 400, 800]
RATED_CURRENT = [16, 32, 125, 250]
QUANTITY_CAP = 2_000_000_000  # healthy clamp, just under INT32_MAX


def _build_core(b: ModelBuilder, rng: random.Random,
                inject_quantity_overflow: bool,
                inject_power_downcast: bool) -> CoreRefs:
    from repro.dtypes import F64

    mode_raw = b.inport("Mode", dtype=I32)
    plug = b.inport("Plug", dtype=I32)
    demand = b.inport("Demand", dtype=I32)
    ambient = b.inport("Ambient", dtype=F64)

    # --- charging mode selection -------------------------------------
    mode_abs = b.abs_("ModeAbs", mode_raw)
    mode = b.block("Mod", "ModeWrap", [mode_abs, b.constant("NModes", 4)])
    rated_v = b.direct_lookup("RatedV", mode, RATED_VOLTAGE)
    rated_c = b.direct_lookup("RatedC", mode, RATED_CURRENT)

    # --- charging power (case-study error 2 lives here) ---------------
    power_dtype = I16 if inject_power_downcast else I32
    power = b.mul("Power", rated_v, rated_c, dtype=power_dtype)
    plugged = b.relational("Plugged", ">", plug, b.constant("Zero", 0))
    charging = b.switch(
        "Charging", power, plugged, b.constant("NoCharge", 0),
        threshold=1, dtype=I32,
    )
    flow = b.abs_("Flow", charging, dtype=I32)

    # --- quantity accumulation (case-study error 1 lives here) --------
    store = b.data_store("quantity", dtype=I32, initial=0)
    q_now = b.ds_read("ReadQ", store)
    if inject_quantity_overflow:
        # Injected: accumulate directly in int32 — wraps after a long run.
        q_next = b.add("AddQ", q_now, flow, dtype=I32)
        q_next = b.gain("QPad1", q_next, 1, dtype=I32)
        q_next = b.gain("QPad2", q_next, 1, dtype=I32)
        q_next = b.gain("QPad3", q_next, 1, dtype=I32)
    else:
        # Healthy: widen, clamp below INT32_MAX, narrow back.
        q_wide = b.dtc("QWide", q_now, I64)
        q_sum = b.add("AddQ", q_wide, flow, dtype=I64)
        q_clamped = b.saturation("QClamp", q_sum, 0, QUANTITY_CAP, dtype=I64)
        q_next = b.dtc("QNarrow", q_clamped, I32)
    b.ds_write("WriteQ", store, q_next)

    # --- state of charge and thermal model ----------------------------
    soc = b.gain("SoC", q_next, 1, dtype=I32)
    full = b.relational("Full", ">=", soc, b.constant("Cap", QUANTITY_CAP))
    b.outport("ChargeDone", full)
    b.outport("Quantity", soc)

    heat = b.subsystem("Thermal", inputs=[ambient, charging])
    amb_in, chg_in = heat.input_ref(0), heat.input_ref(1)
    watts = heat.inner.gain("Watts", chg_in, 0.001)
    rise = heat.inner.block(
        "DiscreteFilter", "Rise", [watts], params={"b0": 0.2, "a1": 0.8}
    )
    temp = heat.inner.add("PackTemp", amb_in, rise)
    hot = heat.inner.block(
        "CompareToConstant", "Hot", [temp], operator=">", params={"constant": 60.0}
    )
    heat.set_output(temp, name="TempOut")
    heat.set_output(hot, name="HotOut")
    b.outport("PackTemp", heat.out(0))

    # Derate only while actually charging AND hot AND not already full —
    # a combination condition (MC/DC target).
    derate_ctl = b.logic(
        "DerateCtl", "AND", [heat.out(1), plugged, b.not_("NotFull", full)]
    )
    derate = b.switch(
        "Derate", b.constant("HalfRate", 0), derate_ctl,
        b.constant("FullRate", 1), threshold=1,
    )
    b.terminator("DerateEnd", derate)

    return CoreRefs(int_ref=flow, float_ref=heat.out(0))


def build(
    *,
    inject_quantity_overflow: bool = False,
    inject_power_downcast: bool = False,
) -> Model:
    def core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
        return _build_core(
            b, rng, inject_quantity_overflow, inject_power_downcast
        )

    return build_from_core(SPEC, core)

"""LANS — LAN switch controller (Table 1: 570 actors, 39 subsystems).
Computation-heavy (one of the four models with the largest AccMoS/SSE
ratios in Table 2): address hashing, per-port byte accounting, and rate
estimation dominate over control flow.
"""

from __future__ import annotations

import random

from repro.dtypes import F64, I32, U32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.benchmarks.factory import BenchmarkSpec, CoreRefs, build_from_core

SPEC = BenchmarkSpec(
    name="LANS",
    description="LAN Switch controller",
    n_actors=570,
    n_subsystems=39,
    seed=0x1A45,
    compute_weight=0.82,
    int_bias=0.85,
    shares=(0.10, 0.25, 0.15, 0.50),
)

N_PORTS = 4


def _core(b: ModelBuilder, rng: random.Random) -> CoreRefs:
    src_addr = b.inport("SrcAddr", dtype=I32)
    dst_addr = b.inport("DstAddr", dtype=I32)
    length = b.inport("Length", dtype=I32)
    noise = b.inport("LineNoise", dtype=F64)

    # --- address hash (bit-mix pipeline) --------------------------------
    a_u = b.dtc("AddrU", dst_addr, U32)
    h1 = b.shift("H1", ">>", a_u, 3, dtype=U32)
    h2 = b.bitwise("H2", "XOR", [a_u, h1], dtype=U32)
    h3 = b.shift("H3", "<<", h2, 2, dtype=U32)
    h4 = b.bitwise("H4", "XOR", [h2, h3], dtype=U32)
    port_u = b.block("Mod", "PortHash", [h4, b.constant("NPorts", N_PORTS, dtype=U32)])
    port = b.dtc("Port", port_u, I32)

    # --- per-port byte accounting ----------------------------------------
    size = b.saturation("FrameLen", length, 64, 1518, dtype=I32)
    totals = []
    for p in range(N_PORTS):
        is_port = b.block(
            "CompareToConstant", f"IsPort{p}", [port], operator="==",
            params={"constant": p},
        )
        credited = b.switch(f"Credit{p}", size, is_port, b.constant(f"Z{p}", 0), threshold=1)
        total = b.accumulator(f"Bytes{p}", credited, dtype=I32)
        totals.append(total)
    grand = b.sum_("GrandTotal", totals, dtype=I32)

    # --- rate estimation ---------------------------------------------------
    rate = b.subsystem("RateEst", inputs=[size, noise])
    sz, nz = rate.input_ref(0), rate.input_ref(1)
    szf = rate.inner.gain("Widen", sz, 1.0)
    jitter = rate.inner.mul("Jitter", szf, nz)
    ewma = rate.inner.block(
        "DiscreteFilter", "EWMA", [jitter], params={"b0": 0.05, "a1": 0.95}
    )
    rate.set_output(ewma)

    # --- learning / flooding decision ---------------------------------------
    known = b.relational("Known", "==", src_addr, dst_addr)
    flood = b.not_("Flood", known)
    b.outport("FwdPort", port)
    b.outport("TotalBytes", grand)
    b.outport("LineRate", rate.out(0))
    b.outport("FloodOut", flood)

    return CoreRefs(int_ref=size, float_ref=rate.out(0))


def build() -> Model:
    return build_from_core(SPEC, _core)

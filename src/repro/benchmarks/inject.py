"""Error injection for the §4 case study.

Two wrap-on-overflow errors are injected into the CSEV model, exactly as
the paper describes:

1. **quantity overflow** — the charged-energy data store accumulates in
   int32 without the healthy widen-clamp-narrow guard, so a long charging
   simulation eventually wraps (the paper detects this with the
   ``in1 > 0 && in2 > 0 && out < 0`` condition at the add actor; here the
   Sum actor's checked add raises the same wrap flag at the same step);
2. **power downcast overflow** — the charging-power product's output type
   is short int (int16) while rated voltage/current are int32, wrapping
   immediately in the high-power modes (the paper's ``sizeof`` mismatch;
   here both the static downcast warning and the runtime wrap fire).
"""

from __future__ import annotations

from repro.model.model import Model
from repro.benchmarks import csev

# Actor paths of the injected faults (the diagnosis targets).
QUANTITY_ADD_PATH = "CSEV_AddQ"
POWER_PRODUCT_PATH = "CSEV_Power"


def build_csev_with_quantity_overflow() -> Model:
    """CSEV with case-study error 1 (slow accumulator wrap)."""
    return csev.build(inject_quantity_overflow=True)


def build_csev_with_power_downcast() -> Model:
    """CSEV with case-study error 2 (immediate product wrap + downcast)."""
    return csev.build(inject_power_downcast=True)


def build_csev_healthy() -> Model:
    """The uninjected CSEV (no wraps; the guard clamps instead)."""
    return csev.build()

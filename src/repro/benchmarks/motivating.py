"""The Figure-1 motivating model.

Two inputs are independently accumulated and their running sums are added;
with positive inputs the Sum actor's int32 result grows monotonically and
eventually wraps — the long-term-execution error class the paper opens
with.  ``overflow_rate`` tunes how many steps the wrap takes
(roughly ``INT32_MAX / overflow_rate`` steps).
"""

from __future__ import annotations

from repro.dtypes import I32
from repro.model.builder import ModelBuilder
from repro.model.model import Model
from repro.stimuli import IntRandomStimulus


def build_motivating_model() -> Model:
    """Figure 1: accumulate two inputs, sum the accumulators."""
    b = ModelBuilder("Motivate")
    a = b.inport("InportA", dtype=I32)
    c = b.inport("InportB", dtype=I32)
    acc_a = b.accumulator("AccumA", a, dtype=I32)
    acc_b = b.accumulator("AccumB", c, dtype=I32)
    total = b.add("Sum", acc_a, acc_b, dtype=I32)
    b.outport("Outport", total)
    return b.build()


def motivating_stimuli(*, overflow_rate: int = 40_000, seed: int = 11):
    """Positive random inputs sized so the Sum wraps after roughly
    ``INT32_MAX / overflow_rate`` steps."""
    half = overflow_rate // 2
    return {
        "InportA": IntRandomStimulus(seed, 1, half),
        "InportB": IntRandomStimulus(seed + 1, 1, half),
    }


def expected_overflow_step(*, overflow_rate: int = 40_000) -> int:
    """Rough step at which the wrap should appear (for test tolerances)."""
    mean_step_growth = 2 * (1 + overflow_rate // 2) / 2
    return int((2**31) / mean_step_growth)

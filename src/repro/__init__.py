"""AccMoS reproduction: accelerating Simulink-style model simulation via
code generation.

Reimplementation of *AccMoS: Accelerating Model Simulation for Simulink
via Code Generation* (DAC 2024): a dataflow-model ecosystem — model
format, preprocessing, 50+ actor semantics, coverage, diagnosis — with
four simulation engines: the interpreted SSE baseline, Accelerator and
Rapid-Accelerator analogs, and AccMoS itself (instrumented C generation +
gcc + execution).

Quickstart::

    from repro import ModelBuilder, simulate
    from repro.dtypes import I32

    b = ModelBuilder("Demo")
    x = b.inport("X", dtype=I32)
    acc = b.accumulator("Acc", x, dtype=I32)
    b.outport("Y", acc)
    result = simulate(b.build(), engine="accmos", steps=1_000_000)
    print(result.summary())
"""

from repro import telemetry
from repro.dtypes import DType
from repro.model import Actor, Model, ModelBuilder, Subsystem
from repro.schedule import FlatProgram, preprocess
from repro.engines import (
    ENGINES,
    SimulationOptions,
    SimulationResult,
    run_accmos,
    run_sse,
    run_sse_ac,
    run_sse_rac,
    simulate,
)
from repro.campaign import CampaignOutcome, run_campaign
from repro.runner import (
    ArtifactCache,
    JobResult,
    SimulationJob,
    run_job,
    run_jobs,
)
from repro.diagnosis import CustomDiagnosis, DiagnosticKind
from repro.coverage import CoverageReport, Metric
from repro.stimuli import (
    ConstantStimulus,
    IntRandomStimulus,
    SequenceStimulus,
    Stimulus,
    TestCaseTable,
    UniformRandomStimulus,
    default_stimuli,
)

__version__ = "1.0.0"

__all__ = [
    "DType",
    "Actor",
    "Model",
    "ModelBuilder",
    "Subsystem",
    "FlatProgram",
    "preprocess",
    "simulate",
    "ENGINES",
    "SimulationOptions",
    "SimulationResult",
    "run_sse",
    "run_sse_ac",
    "run_sse_rac",
    "run_accmos",
    "run_campaign",
    "CampaignOutcome",
    "ArtifactCache",
    "SimulationJob",
    "JobResult",
    "run_job",
    "run_jobs",
    "CustomDiagnosis",
    "DiagnosticKind",
    "CoverageReport",
    "Metric",
    "Stimulus",
    "ConstantStimulus",
    "SequenceStimulus",
    "IntRandomStimulus",
    "UniformRandomStimulus",
    "TestCaseTable",
    "default_stimuli",
    "telemetry",
    "__version__",
]

"""The Accelerator mode's "MEX" intermediate: per-actor compiled functions.

Simulink's Accelerator mode compiles the model into an intermediate MEX
binary but still *executes it interpretively* inside the host process.
The analog here: every stateless, non-special actor is compiled — via the
same per-actor code emission the Rapid-Accelerator backend uses — into a
small specialized Python function ``f(signals)`` that reads its input
slots, computes inline, and writes its output slots.  No semantics-object
dispatch, no tuple packing, no StepResult.

Stateful actors, Merge, and boundary actors keep their generic semantics
closures (state handling stays in one place); data stores move into the
compiled module's globals, which works because only the stateless
DataStoreRead/DataStoreWrite actors touch them.

Correctness rides on the same emission layer as ``sse_rac`` plus the
cross-engine equivalence suite.
"""

from __future__ import annotations

from typing import Callable

from repro.actors.registry import get_spec
from repro.codegen.pybackend import _PyEmit, _emit_actor
from repro.dtypes import coerce_float
from repro.actors.math_ops import int_param
from repro.schedule.program import FlatProgram

_UNCOMPILED = ("Inport", "Outport", "Terminator", "Scope", "Display", "Merge")


def _is_compilable(fa) -> bool:
    spec = get_spec(fa.block_type)
    return (
        spec.executable
        and not spec.stateful
        and fa.block_type not in _UNCOMPILED
    )


def compile_mex_functions(
    prog: FlatProgram,
) -> dict[int, Callable]:
    """Compile every eligible actor; returns {flat index: f(signals)}."""
    emitter = _PyEmit(prog)
    module_lines = [
        "import math as _math",
        "import numpy as _np",
        "from repro.actors.math_ops import (",
        "    _MATH_FNS as _MF, _ROUNDING_FNS as _RF, c_pow as _pow,",
        "    c_round as _cround, c_sqrt as _sqrt,",
        ")",
        "from repro.codegen.pybackend import (",
        "    _fdiv, _fdiv32, _fmod, make_int_helpers,",
        ")",
        "_sin = _math.sin",
        # repr() spells non-finite floats as bare names (nan, inf, -inf);
        # bind them so every repr'd parameter is a valid expression here.
        "nan = _math.nan",
        "inf = _math.inf",
        "def _c32(x):",
        "    return float(_np.float32(x))",
        "globals().update(make_int_helpers())",
    ]
    from repro.actors.math_ops import _MATH_FNS, _ROUNDING_FNS

    for op in _MATH_FNS:
        module_lines.append(f"_math_{op} = _MF[{op!r}]")
    for op in _ROUNDING_FNS:
        module_lines.append(f"_round_{op} = _RF[{op!r}]")

    # Data stores live as module globals (only compiled actors touch them).
    for info in prog.stores.values():
        if info.dtype.is_float:
            initial = coerce_float(float(info.initial), info.dtype)
        else:
            initial = int_param(info.initial, info.dtype)
        module_lines.append(f"store_{info.name} = {initial!r}")

    prologue_len = len(module_lines)
    compiled: list[int] = []
    for fa in prog.actors:
        if not _is_compilable(fa):
            continue
        body: list[str] = []
        _emit_actor(emitter, fa, body)
        if not body:
            continue
        fn_lines = [f"def _actor_{fa.index}(signals):"]
        if fa.block_type == "DataStoreWrite":
            fn_lines.append(f"    global store_{fa.actor.params['store']}")
        for sid in dict.fromkeys(fa.input_sids):
            fn_lines.append(f"    s{sid} = signals[{sid}]")
        fn_lines.extend(f"    {line}" for line in body)
        for sid in fa.output_sids:
            fn_lines.append(f"    signals[{sid}] = s{sid}")
        module_lines.extend(fn_lines)
        compiled.append(fa.index)

    # Stateless actors may still have emitted init lines (lookup tables);
    # they become module globals ahead of the function definitions — but
    # after the prologue, whose nan/inf bindings their literals may need.
    source = "\n".join(
        module_lines[:prologue_len]
        + emitter.init_lines
        + module_lines[prologue_len:]
    )
    namespace: dict = {}
    exec(compile(source, f"<mex:{prog.model.name}>", "exec"), namespace)
    return {index: namespace[f"_actor_{index}"] for index in compiled}

"""Shared option and result schema for all engines."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.coverage.report import CoverageReport
from repro.diagnosis.custom import CustomDiagnosis
from repro.diagnosis.events import DiagnosticEvent, DiagnosticKind
from repro.dtypes import DType

_U64_MASK = 0xFFFFFFFFFFFFFFFF
CHECKSUM_PRIME = 1099511628211  # FNV-1a 64 prime, also used by generated C


def signal_bits(value, dtype: DType) -> int:
    """The 64-bit pattern a value contributes to an output checksum.

    Integers sign-extend to 64 bits and reinterpret unsigned (C:
    ``(uint64_t)(int64_t)v``); doubles take their IEEE bits; f32 takes its
    32-bit pattern zero-extended.  Bit-identical to the generated C.
    """
    if dtype.is_float:
        # NaNs canonicalize to the positive quiet pattern, exactly like
        # the C runtime's acc_bits_* helpers: hardware-generated NaNs
        # (e.g. inf - inf on x86) carry the sign bit, and which payload
        # an operation produces is not pinned down by IEEE 754.
        if dtype is DType.F32:
            if value != value:
                return 0x7FC00000
            return struct.unpack("<I", struct.pack("<f", value))[0]
        if value != value:
            return 0x7FF8000000000000
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    return int(value) & _U64_MASK


def checksum_step(acc: int, bits: int) -> int:
    """One checksum update; same recurrence as the C runtime."""
    return ((acc * CHECKSUM_PRIME) + bits) & _U64_MASK


@dataclass
class SimulationOptions:
    """How to run a simulation (engine-independent)."""

    steps: int = 1000
    coverage: bool = True
    diagnostics: bool = True
    collect: Union[Sequence[str], str] = "outports"
    diagnose: Union[Sequence[str], str] = "all"
    custom: tuple[CustomDiagnosis, ...] = ()
    # Stop at the first diagnostic of one of these kinds (detection-time
    # experiments).  None = never halt.
    halt_on: Optional[frozenset[DiagnosticKind]] = None
    # Stop when this much wall time has elapsed (coverage-vs-time
    # experiments); checked periodically, so runs overshoot slightly.
    time_budget: Optional[float] = None
    # Max recorded samples per monitored signal.
    monitor_limit: int = 256
    # Maintain per-outport checksums over every step (cross-engine
    # equivalence); tiny overhead, on by default.
    checksum: bool = True

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        if self.halt_on is not None:
            self.halt_on = frozenset(self.halt_on)
        self.custom = tuple(self.custom)


@dataclass
class SimulationResult:
    """What every engine reports."""

    engine: str
    model_name: str
    steps_requested: int
    steps_run: int
    wall_time: float
    outputs: dict[str, object] = field(default_factory=dict)
    checksums: dict[str, int] = field(default_factory=dict)
    coverage: Optional[CoverageReport] = None
    diagnostics: list[DiagnosticEvent] = field(default_factory=list)
    halted_at: Optional[int] = None
    monitored: dict[str, list[tuple[int, object]]] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def steps_per_second(self) -> float:
        if self.wall_time <= 0:
            return float("inf")
        return self.steps_run / self.wall_time

    def diagnostic(self, path: str, kind: DiagnosticKind) -> Optional[DiagnosticEvent]:
        for event in self.diagnostics:
            if event.path == path and event.kind is kind:
                return event
        return None

    def first_detection_step(self, kind: Optional[DiagnosticKind] = None) -> Optional[int]:
        steps = [
            e.first_step
            for e in self.diagnostics
            if e.first_step >= 0 and (kind is None or e.kind is kind)
        ]
        return min(steps) if steps else None

    def summary(self) -> str:
        parts = [
            f"{self.engine}: {self.steps_run}/{self.steps_requested} steps "
            f"in {self.wall_time:.3f}s"
        ]
        if self.coverage is not None:
            parts.append(self.coverage.summary())
        if self.diagnostics:
            parts.append(f"{len(self.diagnostics)} diagnostic(s)")
        return "; ".join(parts)

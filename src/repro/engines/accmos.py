"""The AccMoS engine: instrumented C code generation + gcc + execution.

This is the paper's system end to end: plan instrumentation (Algorithm 1),
synthesize the simulation code from the actor template library, import the
test cases, compile with ``-O3``, execute, and parse coverage/diagnosis/
monitor results back into the shared schema.

Two execution shapes share that pipeline:

* **compile-once / run-many** (the default): the generated program is
  stimulus-agnostic — it reads stimulus descriptors, step counts, and
  per-case deadlines from stdin — so one binary per
  ``(FlatProgram, InstrumentationPlan)`` serves every test case, and the
  artifact cache turns a whole seed campaign into a single gcc
  invocation.  :func:`compile_model` returns a :class:`CompiledModel`
  whose :meth:`~CompiledModel.run`/:meth:`~CompiledModel.run_batch`
  reuse the binary; ``run_batch`` executes M cases in one process with
  framed output and full per-case state/coverage/diagnostic reset.
* **legacy baked-in**: stimuli and step count compiled in as constants.
  Kept as the fallback for custom :class:`Stimulus` subclasses without a
  ``runtime_descriptor()``.

Both shapes are bit-for-bit equivalent to each other and to the SSE
reference — the repository's core invariant.

``wall_time`` is the binary's own measurement of its simulation loop —
the quantity the paper's Table 2 reports.  Code generation and compilation
times are in ``result.extra`` (``generate_seconds``, ``compile_seconds``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Optional, Sequence, Union

from repro import telemetry
from repro.codegen.compose import (
    ProgramLayout,
    generate_c_program,
    generate_reusable_c_program,
)
from repro.codegen.descriptor import descriptors_for, encode_case
from repro.codegen.driver import (
    CompiledSimulation,
    ParseTables,
    ServerError,
    SimulationServer,
    compile_c_program,
    parse_batch_result,
    parse_result,
)
from repro.engines.base import SimulationOptions, SimulationResult
from repro.inproc.abi import (
    decode_coverage,
    decode_result,
    encode_case_binary,
    result_buffer_size,
)
from repro.inproc.library import LibraryFault, LoadedModel
from repro.inproc.parallel import InstancePool, default_instance_pool
from repro.instrument import build_plan
from repro.instrument.plan import InstrumentationPlan
from repro.model.errors import (
    CompilationError,
    SimulationError,
    SimulationTimeout,
)
from repro.schedule.program import FlatProgram
from repro.stimuli.base import Stimulus

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache

# One batch case: a stimuli mapping, or (stimuli, options) to override
# the per-case runtime options (steps / time_budget).
BatchCase = Union[
    Mapping[str, Stimulus],
    "tuple[Mapping[str, Stimulus], Optional[SimulationOptions]]",
]


@dataclass
class AccMoSArtifacts:
    """Everything produced on the way to a result, for inspection."""

    source: str
    source_path: Optional[Path]
    binary_path: Optional[Path]
    generate_seconds: float
    compile_seconds: float


def _resolve_cache(cache):
    if cache is None:
        from repro.runner.cache import default_cache

        return default_cache()
    if cache is False:
        return None
    return cache


def _structural_fingerprint(options: SimulationOptions) -> tuple:
    """The option fields that shape the generated source (and therefore
    the compiled binary).  ``steps`` and ``time_budget`` are runtime
    inputs of the reusable program and deliberately excluded."""
    collect = options.collect
    diagnose = options.diagnose
    return (
        options.coverage,
        options.diagnostics,
        collect if isinstance(collect, str) else tuple(collect),
        diagnose if isinstance(diagnose, str) else tuple(diagnose),
        tuple(options.custom),
        options.halt_on,
        options.monitor_limit,
        options.checksum,
    )


@dataclass
class CompiledModel:
    """A reusable compiled simulation: one binary, any number of cases.

    Produced by :func:`compile_model`.  The binary is specialized on the
    program and the structural options only; stimuli, step counts, and
    per-case deadlines are streamed to it at run time.
    """

    prog: FlatProgram
    plan: InstrumentationPlan
    layout: ProgramLayout
    options: SimulationOptions
    compiled: CompiledSimulation
    source: str
    generate_seconds: float
    _fingerprint: tuple = field(default=(), repr=False)
    _inproc_disabled: bool = field(default=False, repr=False, compare=False)
    _inproc_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self):
        if not self._fingerprint:
            self._fingerprint = _structural_fingerprint(self.options)

    @property
    def cache_hit(self) -> bool:
        return self.compiled.cache_hit

    @property
    def compile_seconds(self) -> float:
        return self.compiled.compile_seconds

    # ------------------------------------------------------------------
    def run(
        self,
        stimuli: Mapping[str, Stimulus],
        options: Optional[SimulationOptions] = None,
        *,
        timeout_seconds: Optional[float] = None,
    ) -> SimulationResult:
        """Run one case on the reused binary; raises
        :class:`SimulationTimeout` when ``timeout_seconds`` is exceeded."""
        (outcome,) = self._dispatch(
            [(stimuli, options)], timeout_seconds=timeout_seconds
        )
        if isinstance(outcome, SimulationTimeout):
            raise outcome
        return outcome

    def run_batch(
        self,
        cases: Sequence[BatchCase],
        *,
        timeout_seconds: Optional[float] = None,
    ) -> list[Union[SimulationResult, SimulationTimeout]]:
        """Run M cases back-to-back in one process invocation.

        Returns one entry per case, in order: a result, or a
        :class:`SimulationTimeout` instance for cases that blew the
        per-case deadline (the batch continues with the next case —
        state is fully reset in between either way).
        """
        with telemetry.span(
            "accmos.batch", model=self.prog.model.name, cases=len(cases)
        ) as batch_span:
            outcomes = self._dispatch(
                list(cases), timeout_seconds=timeout_seconds
            )
            batch_span.set(
                timeouts=sum(
                    1 for o in outcomes if isinstance(o, SimulationTimeout)
                )
            )
        telemetry.counter_inc("engine.accmos.batches")
        telemetry.counter_inc("engine.accmos.batch_cases", len(cases))
        return outcomes

    # ------------------------------------------------------------------
    def serve(self, *, handshake_timeout: float = 10.0) -> "ModelServer":
        """Spawn a warm ``--serve`` process bound to this binary.

        The returned :class:`ModelServer` accepts an unbounded stream of
        cases with zero respawns; hand it to :meth:`run_stream` (or keep
        it in a :class:`~repro.runner.servers.ServerPool`) to amortize
        process startup across batches and jobs.
        """
        return ModelServer(self, handshake_timeout=handshake_timeout)

    def run_stream(
        self,
        cases: Sequence[BatchCase],
        *,
        timeout_seconds: Optional[float] = None,
        server: "Optional[ModelServer]" = None,
        window: int = 4,
    ) -> Iterator[Union[SimulationResult, SimulationTimeout]]:
        """Stream M cases through a warm server, yielding results as
        each case's frame completes.

        Submission runs ``window`` cases ahead of parsing so the C
        process always has work queued while Python parses earlier
        frames — execution and parsing overlap instead of serializing.
        Outcomes arrive in submit order with :meth:`run_batch`'s
        contract (per-case :class:`SimulationTimeout` entries instead of
        raising).

        ``server`` reuses an existing warm :class:`ModelServer` (e.g.
        from a pool); without it a private server is spawned and closed
        around the stream.  On a crash, protocol desync, or per-case
        deadline overrun at the process level, the server is killed and
        restarted once and the unfinished cases are resubmitted; a
        second consecutive failure on the same case falls back to the
        spawn-per-batch :meth:`run_batch` path — results are therefore
        always produced, byte-identical to the non-server path.
        """
        cases = list(cases)
        if not cases:
            return
        normalized = [self._normalize(case) for case in cases]
        records = [
            encode_case(
                descriptors,
                steps=options.steps,
                time_budget=options.time_budget,
                deadline=timeout_seconds,
            )
            for options, descriptors in normalized
        ]
        tables = ParseTables.for_layout(self.layout)
        # The in-binary deadline does the real limiting (emitting
        # ``timeout 1`` in the frame); the read deadline is a backstop
        # against a wedged process.
        read_timeout = (
            None if timeout_seconds is None else timeout_seconds + 5.0
        )
        owned = server is None
        if owned:
            server = self.serve()
        n = len(cases)
        done = 0
        failures = 0
        try:
            with telemetry.span(
                "accmos.stream", model=self.prog.model.name, cases=n
            ):
                while done < n:
                    try:
                        sub = done
                        submit_times: dict[int, float] = {}
                        while sub < min(done + max(1, window), n):
                            server.server.submit(records[sub])
                            submit_times[sub] = time.perf_counter()
                            sub += 1
                        while done < n:
                            frame = server.server.read_frame(
                                timeout=read_timeout
                            )
                            latency = (
                                time.perf_counter() - submit_times[done]
                            )
                            telemetry.observe(
                                "runner.server.submit_to_result_seconds",
                                latency,
                            )
                            t0 = time.perf_counter()
                            result = parse_result(
                                frame,
                                self.prog,
                                self.plan,
                                self.layout,
                                normalized[done][0],
                                engine="accmos",
                                tables=tables,
                            )
                            parse_seconds = time.perf_counter() - t0
                            outcome = self._finalize(
                                result,
                                index=done,
                                batch_size=n,
                                timeout_seconds=timeout_seconds,
                                execute_seconds=latency,
                                parse_seconds=parse_seconds,
                            )
                            done += 1
                            failures = 0
                            if sub < n:
                                server.server.submit(records[sub])
                                submit_times[sub] = time.perf_counter()
                                sub += 1
                            yield outcome
                    except ServerError:
                        failures += 1
                        server.server.kill()
                        if failures < 2:
                            try:
                                server.restart()
                                continue  # resubmit from `done`
                            except Exception:
                                pass
                        # Two strikes on the same case (or the restart
                        # itself failed): fall back to spawn-per-batch
                        # for everything unfinished.
                        telemetry.counter_inc("runner.server_fallbacks")
                        for outcome in self._dispatch(
                            cases[done:], timeout_seconds=timeout_seconds
                        ):
                            yield outcome
                        return
        finally:
            if owned:
                server.close()

    # ------------------------------------------------------------------
    @property
    def inproc_available(self) -> bool:
        """False once a fault has quarantined the in-process rung."""
        return not self._inproc_disabled

    def load(self) -> LoadedModel:
        """A fresh private in-process instance of this model's library.

        Compiles the ``.so`` form lazily (same cache entry as the
        executable) and performs the ABI handshake.  Each instance has
        its own copy of the C globals and is single-threaded; callers
        wanting parallelism load one per thread.
        """
        shared = self.compiled.ensure_shared()
        return LoadedModel(
            shared,
            result_size=result_buffer_size(
                self.layout, self.plan, self.options
            ),
        )

    def _instance_key(self) -> str:
        """This model's key in the process-wide instance pool.

        Content-addressed: the ``.so`` path comes from the artifact
        cache, so distinct handles over the same structure share warm
        instances."""
        return InstancePool.instance_key(
            self.compiled.ensure_shared(),
            result_buffer_size(self.layout, self.plan, self.options),
        )

    def _acquire_instance(self) -> "tuple[str, LoadedModel]":
        key = self._instance_key()
        return key, default_instance_pool().acquire(key, self.load)

    def _quarantine_inproc(self, reason: Exception) -> None:
        """Retire the in-process rung for this model: all subsequent
        ``run_inproc`` calls drop straight to the ``--serve`` rung.
        Idempotent and thread-safe — with N worker threads, the first
        fault wins and the rest observe the flag."""
        with self._inproc_lock:
            if self._inproc_disabled:
                return
            self._inproc_disabled = True
        telemetry.counter_inc("engine.inproc.fallbacks")

    def _run_case_inproc(
        self,
        lib: LoadedModel,
        record: bytes,
        options: SimulationOptions,
        *,
        index: int,
        batch_size: int,
        timeout_seconds: Optional[float],
    ) -> Union[SimulationResult, SimulationTimeout]:
        """One case on one instance: run, decode, finalize, count."""
        t0 = time.perf_counter()
        buf = lib.run_case(record)
        execute_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = decode_result(
            buf,
            self.prog,
            self.plan,
            self.layout,
            options,
            engine="accmos",
        )
        parse_seconds = time.perf_counter() - t0
        outcome = self._finalize(
            result,
            index=index,
            batch_size=batch_size,
            timeout_seconds=timeout_seconds,
            execute_seconds=execute_seconds,
            parse_seconds=parse_seconds,
        )
        telemetry.counter_inc("engine.inproc.cases")
        return outcome

    def run_inproc(
        self,
        cases: Sequence[BatchCase],
        *,
        timeout_seconds: Optional[float] = None,
        library: Optional[LoadedModel] = None,
        threads: int = 1,
        shards: Optional[Sequence[Sequence[int]]] = None,
    ) -> list[Union[SimulationResult, SimulationTimeout]]:
        """Run M cases in-process: zero spawns, zero text, zero pipes.

        Same contract as :meth:`run_batch` — one outcome per case in
        order, per-case deadlines (enforced *inside* the library via the
        record's deadline field) surfacing as
        :class:`SimulationTimeout` entries.  Any library fault — load
        failure, ABI mismatch, non-zero run status — quarantines the
        in-process rung for this model and transparently finishes the
        affected cases on the crash-isolated ``--serve`` rung,
        preserving the stream→batch→baked fallback ladder below it.
        Results are byte-identical either way.

        ``threads=N`` partitions the cases across N worker threads, each
        holding a *private* pooled instance (private inode → private C
        globals); ``ctypes`` releases the GIL around ``acc_lib_run_case``
        so the C simulation loops genuinely run in parallel.  Outcomes
        are written into a preallocated slot per case index, so the
        merge is deterministic by construction — ``threads=N`` is
        bit-for-bit identical to ``threads=1``.  ``shards`` optionally
        supplies an explicit index partition (the runner's cost model
        packs by LPT); the default is a round-robin stride.

        ``library`` runs the batch sequentially on an explicit
        :class:`~repro.inproc.library.LoadedModel` instead of a pooled
        instance (tests use it to induce faults).
        """
        cases = list(cases)
        if not cases:
            return []
        normalized = [self._normalize(case) for case in cases]
        records = [
            encode_case_binary(
                descriptors,
                steps=options.steps,
                time_budget=options.time_budget,
                deadline=timeout_seconds,
            )
            for options, descriptors in normalized
        ]
        threads = max(1, int(threads))
        if library is None and (threads > 1 or shards is not None):
            outcomes = self._run_inproc_threaded(
                cases,
                normalized,
                records,
                threads=threads,
                shards=shards,
                timeout_seconds=timeout_seconds,
            )
            telemetry.counter_inc("engine.inproc.runs")
            return outcomes
        outcomes: list[Union[SimulationResult, SimulationTimeout]] = []
        with telemetry.span(
            "accmos.inproc", model=self.prog.model.name, cases=len(cases)
        ) as span:
            lib = library
            pool_key = None
            if lib is None and not self._inproc_disabled:
                try:
                    pool_key, lib = self._acquire_instance()
                except (CompilationError, LibraryFault, OSError) as exc:
                    self._quarantine_inproc(exc)
            try:
                for index in range(len(cases)):
                    if lib is not None:
                        try:
                            outcomes.append(
                                self._run_case_inproc(
                                    lib,
                                    records[index],
                                    normalized[index][0],
                                    index=index,
                                    batch_size=len(cases),
                                    timeout_seconds=timeout_seconds,
                                )
                            )
                            continue
                        except LibraryFault as exc:
                            self._quarantine_inproc(exc)
                            lib = None
                    # In-process rung unavailable: finish on the server
                    # rung.
                    span.set(fallback=True)
                    outcomes.extend(
                        self.run_stream(
                            cases[index:], timeout_seconds=timeout_seconds
                        )
                    )
                    break
            finally:
                if pool_key is not None and lib is not None:
                    default_instance_pool().release(pool_key, lib)
        telemetry.counter_inc("engine.inproc.runs")
        return outcomes

    def _run_inproc_threaded(
        self,
        cases: "list[BatchCase]",
        normalized: list,
        records: "list[bytes]",
        *,
        threads: int,
        shards: Optional[Sequence[Sequence[int]]],
        timeout_seconds: Optional[float],
    ) -> list[Union[SimulationResult, SimulationTimeout]]:
        """The thread-parallel body of :meth:`run_inproc`.

        Each worker owns one pooled instance and one shard of case
        indices, writing outcomes into its cases' preallocated slots.
        The first fault quarantines the model; every worker drains its
        remaining indices into ``pending``, and pending cases finish on
        the server rung *in index order* — the same ladder, the same
        bytes, as the sequential path.
        """
        n = len(cases)
        if shards is None:
            shards = [list(range(t, n, threads)) for t in range(threads)]
        shards = [list(shard) for shard in shards if len(shard)]
        flat = sorted(i for shard in shards for i in shard)
        if flat != list(range(n)):
            raise ValueError(
                "shards must partition the case indices exactly once"
            )
        outcomes: "list" = [None] * n
        pending: "list[int]" = []
        errors: "list[BaseException]" = []
        merge_lock = threading.Lock()
        shard_walls: "list[float]" = [0.0] * len(shards)

        def worker(slot: int, shard: "list[int]") -> None:
            t0 = time.perf_counter()
            lib = None
            pool_key = None
            try:
                for pos, index in enumerate(shard):
                    if lib is None:
                        if self._inproc_disabled:
                            with merge_lock:
                                pending.extend(shard[pos:])
                            return
                        try:
                            pool_key, lib = self._acquire_instance()
                        except (
                            CompilationError,
                            LibraryFault,
                            OSError,
                        ) as exc:
                            self._quarantine_inproc(exc)
                            with merge_lock:
                                pending.extend(shard[pos:])
                            return
                    try:
                        outcome = self._run_case_inproc(
                            lib,
                            records[index],
                            normalized[index][0],
                            index=index,
                            batch_size=n,
                            timeout_seconds=timeout_seconds,
                        )
                    except LibraryFault as exc:
                        # run_case retired the instance already; mirror
                        # the sequential semantics — one fault
                        # quarantines the whole model.
                        lib = None
                        self._quarantine_inproc(exc)
                        with merge_lock:
                            pending.extend(shard[pos:])
                        return
                    with merge_lock:
                        outcomes[index] = outcome
            except BaseException as exc:  # decode/finalize bugs: surface
                with merge_lock:
                    errors.append(exc)
            finally:
                if pool_key is not None and lib is not None:
                    default_instance_pool().release(pool_key, lib)
                shard_walls[slot] = time.perf_counter() - t0

        with telemetry.span(
            "accmos.inproc",
            model=self.prog.model.name,
            cases=n,
            threads=len(shards),
        ) as span:
            telemetry.gauge_set("engine.inproc.threads", len(shards))
            workers = [
                threading.Thread(
                    target=worker,
                    args=(slot, shard),
                    name=f"accmos-inproc-{slot}",
                    daemon=True,
                )
                for slot, shard in enumerate(shards)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
            if errors:
                raise errors[0]
            makespan = max(shard_walls) if shard_walls else 0.0
            for wall in shard_walls:
                telemetry.observe(
                    "engine.inproc.shard_makespan_seconds", wall
                )
            if makespan > 0 and len(shard_walls) > 1:
                telemetry.gauge_set(
                    "engine.inproc.pack_efficiency",
                    sum(shard_walls) / (len(shard_walls) * makespan),
                )
            if pending:
                # Ladder fallback for faulted/drained cases, in index
                # order so the server stream sees a deterministic batch.
                span.set(fallback=True, pending=len(pending))
                pending.sort()
                fallback = self.run_stream(
                    [cases[i] for i in pending],
                    timeout_seconds=timeout_seconds,
                )
                for index, outcome in zip(pending, fallback):
                    outcomes[index] = outcome
        return outcomes

    def probe_coverage(
        self,
        cases: Sequence[BatchCase],
        *,
        timeout_seconds: Optional[float] = None,
    ) -> list[Optional[dict]]:
        """Coverage bitmaps only, as cheaply as this model can produce them.

        The guided-fuzz replay path: runs each case on the in-process
        library and slices just the coverage words out of the packed
        result buffer (:func:`repro.inproc.abi.decode_coverage`),
        skipping output/diagnostic/monitor decoding entirely.  One entry
        per case, in order — a ``{Metric: Bitmap}`` dict, or ``None``
        for cases that timed out or when the model collects no
        coverage.  A library fault quarantines the in-process rung and
        the remaining cases finish on :meth:`run_batch` (full decode,
        same bitmaps).

        Instances come from the process-wide
        :func:`~repro.inproc.parallel.default_instance_pool`, keyed by
        the content-addressed artifact path — guided-fuzz replay, which
        compiles a fresh handle per seed, reuses one warm instance
        instead of paying a copy + ``dlopen`` + handshake per probe.
        """
        cases = list(cases)
        if not cases:
            return []
        normalized = [self._normalize(case) for case in cases]
        records = [
            encode_case_binary(
                descriptors,
                steps=options.steps,
                time_budget=options.time_budget,
                deadline=timeout_seconds,
            )
            for options, descriptors in normalized
        ]
        probes: list[Optional[dict]] = []
        with telemetry.span(
            "accmos.probe", model=self.prog.model.name, cases=len(cases)
        ) as span:
            lib = None
            pool_key = None
            if not self._inproc_disabled:
                try:
                    pool_key, lib = self._acquire_instance()
                except (CompilationError, LibraryFault, OSError) as exc:
                    self._quarantine_inproc(exc)
            try:
                for index in range(len(cases)):
                    if lib is not None:
                        try:
                            buf = lib.run_case(records[index])
                            probes.append(decode_coverage(
                                buf, self.layout, self.plan,
                                normalized[index][0],
                            ))
                            telemetry.counter_inc("engine.inproc.probes")
                            continue
                        except LibraryFault as exc:
                            self._quarantine_inproc(exc)
                            lib = None
                    # Fallback: full batch run, keep only the bitmaps.
                    span.set(fallback=True)
                    for outcome in self.run_batch(
                        cases[index:], timeout_seconds=timeout_seconds
                    ):
                        if (
                            isinstance(outcome, SimulationTimeout)
                            or outcome.coverage is None
                        ):
                            probes.append(None)
                        else:
                            probes.append(dict(outcome.coverage.bitmaps))
                    break
            finally:
                if pool_key is not None and lib is not None:
                    default_instance_pool().release(pool_key, lib)
        return probes

    # ------------------------------------------------------------------
    def _normalize(self, case: BatchCase):
        if isinstance(case, tuple):
            stimuli, options = case
        else:
            stimuli, options = case, None
        options = options if options is not None else self.options
        if _structural_fingerprint(options) != self._fingerprint:
            raise SimulationError(
                "case options change the instrumentation or program "
                "structure (only steps/time_budget may vary per case); "
                "compile a new model for them"
            )
        missing = [
            b.name for b in self.prog.inports if b.name not in stimuli
        ]
        if missing:
            raise SimulationError(f"no stimulus for inport(s): {missing}")
        descriptors = descriptors_for(self.prog, stimuli)
        if descriptors is None:
            raise SimulationError(
                "stimulus without runtime_descriptor(); such streams "
                "need the legacy baked-in path (run_accmos falls back "
                "automatically)"
            )
        return options, descriptors

    def _dispatch(
        self,
        cases: list[BatchCase],
        *,
        timeout_seconds: Optional[float],
    ) -> list[Union[SimulationResult, SimulationTimeout]]:
        """Encode → execute → parse; shared by run() and run_batch()."""
        normalized = [self._normalize(case) for case in cases]
        payload = "".join(
            encode_case(
                descriptors,
                steps=options.steps,
                time_budget=options.time_budget,
                deadline=timeout_seconds,
            )
            for options, descriptors in normalized
        )
        # The in-binary deadline (checked every 512 steps) is the real
        # limit; the process-level timeout is only a backstop against a
        # wedged binary, scaled to the whole batch.
        process_timeout = (
            None
            if timeout_seconds is None
            else timeout_seconds * len(cases) + 5.0
        )

        t0 = time.perf_counter()
        with telemetry.span("execute"):
            stdout = self.compiled.execute(
                input_text=payload, timeout_seconds=process_timeout
            )
        execute_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        with telemetry.span("parse"):
            results = parse_batch_result(
                stdout,
                self.prog,
                self.plan,
                self.layout,
                [options for options, _ in normalized],
                engine="accmos",
            )
        parse_seconds = time.perf_counter() - t0

        share = 1.0 / max(1, len(results))
        return [
            self._finalize(
                result,
                index=index,
                batch_size=len(results),
                timeout_seconds=timeout_seconds,
                execute_seconds=execute_seconds * share,
                parse_seconds=parse_seconds * share,
            )
            for index, result in enumerate(results)
        ]

    def _finalize(
        self,
        result: SimulationResult,
        *,
        index: int,
        batch_size: int,
        timeout_seconds: Optional[float],
        execute_seconds: float,
        parse_seconds: float,
    ) -> Union[SimulationResult, SimulationTimeout]:
        """Per-case telemetry + extra fields; shared by batch and stream."""
        if result.extra.pop("deadline_exceeded", False):
            telemetry.counter_inc("engine.accmos.timeouts")
            return SimulationTimeout(
                f"simulation case {index} exceeded its "
                f"{timeout_seconds:g}s wall-clock budget (stopped "
                f"in-binary after {result.steps_run} steps)"
            )
        telemetry.counter_inc("engine.accmos.runs")
        telemetry.counter_inc("engine.accmos.steps", result.steps_run)
        telemetry.counter_inc("diagnostics.events", len(result.diagnostics))
        if result.wall_time > 0:
            telemetry.observe(
                "engine.accmos.steps_per_sec",
                result.steps_run / result.wall_time,
            )
        result.extra.update(
            generate_seconds=self.generate_seconds,
            compile_seconds=self.compiled.compile_seconds,
            execute_seconds=execute_seconds,
            parse_seconds=parse_seconds,
            cache_hit=self.compiled.cache_hit,
            source_lines=self.source.count("\n") + 1,
            batch_size=batch_size,
            batch_index=index,
        )
        return result


class ModelServer:
    """A warm ``--serve`` process bound to one :class:`CompiledModel`.

    Thin lifecycle wrapper over the wire-level
    :class:`~repro.codegen.driver.SimulationServer`: it knows how to
    respawn the process in place (:meth:`restart`) so pool handles stay
    valid across crashes, and it books the spawn/restart telemetry.
    """

    def __init__(
        self, model: CompiledModel, *, handshake_timeout: float = 10.0
    ) -> None:
        self.model = model
        self.restarts = 0
        self._handshake_timeout = handshake_timeout
        self._server = self._spawn()

    def _spawn(self) -> SimulationServer:
        with telemetry.span(
            "server.spawn", model=self.model.prog.model.name
        ):
            server = SimulationServer(
                self.model.compiled,
                handshake_timeout=self._handshake_timeout,
            )
        telemetry.counter_inc("runner.server.spawns")
        return server

    @property
    def server(self) -> SimulationServer:
        return self._server

    @property
    def alive(self) -> bool:
        return self._server.alive

    @property
    def pid(self) -> int:
        return self._server.pid

    def restart(self) -> None:
        """Kill the process and spawn a fresh one on the same handle."""
        self._server.kill()
        self._server = self._spawn()
        self.restarts += 1
        telemetry.counter_inc("runner.server.restarts")

    def close(self) -> None:
        self._server.close()

    def kill(self) -> None:
        self._server.kill()


def compile_model(
    prog: FlatProgram,
    options: Optional[SimulationOptions] = None,
    *,
    cache: "Union[ArtifactCache, None, bool]" = None,
    workdir: Optional[Path] = None,
    artifact: str = "binary",
) -> CompiledModel:
    """Instrument + generate + compile the reusable simulation binary.

    ``options`` supplies the structural configuration (coverage,
    diagnostics, collect/diagnose lists, halt_on, monitor_limit,
    checksum); its ``steps``/``time_budget`` merely become the defaults
    for cases that don't override them.  Caching works as in
    :func:`run_accmos` — and because the source no longer depends on
    stimuli or step counts, every case of a campaign maps to the same
    cache key.

    ``artifact`` picks which form is compiled eagerly: ``"binary"``
    (executable) or ``"shared"`` (the in-process ``.so``); both share
    the cache key, and the other form materializes lazily on first use.
    """
    options = options if options is not None else SimulationOptions()
    cache = _resolve_cache(cache)
    with telemetry.span("instrument"):
        plan = build_plan(
            prog,
            coverage=options.coverage,
            diagnostics=options.diagnostics,
            collect=options.collect,
            diagnose=options.diagnose,
            custom=options.custom,
        )
    t0 = time.perf_counter()
    with telemetry.span("codegen"):
        source, layout = generate_reusable_c_program(prog, plan, options)
    generate_seconds = time.perf_counter() - t0
    compiled = compile_c_program(
        source, layout, workdir=workdir, cache=cache, artifact=artifact
    )
    telemetry.observe("accmos.generate_seconds", generate_seconds)
    telemetry.observe("accmos.compile_seconds", compiled.compile_seconds)
    return CompiledModel(
        prog=prog,
        plan=plan,
        layout=layout,
        options=options,
        compiled=compiled,
        source=source,
        generate_seconds=generate_seconds,
    )


def run_accmos(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    *,
    workdir: Optional[Path] = None,
    keep_artifacts: bool = False,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
) -> SimulationResult:
    """Generate, compile, and execute the instrumented simulation.

    When every stimulus has a ``runtime_descriptor()`` (all built-in
    generators do), the stimulus-agnostic reusable program is used: the
    compiled binary — and its artifact-cache key — is independent of the
    stimuli and the step count, so repeated calls with different seeds
    or step counts hit the cache after the first compile.  Custom
    stimuli without descriptors fall back to the legacy baked-in
    program.

    ``cache`` selects the compiled-artifact cache: an explicit
    :class:`~repro.runner.cache.ArtifactCache`, ``None`` for the
    process-wide default (``~/.cache/accmos``; disable globally with
    ``ACCMOS_NO_CACHE=1``), or ``False`` to bypass caching for this
    call.  An explicit ``workdir`` also bypasses the cache so the
    artifacts land where the caller asked.  ``timeout_seconds`` bounds
    the case's wall clock (raises ``SimulationTimeout``).
    """
    missing = [b.name for b in prog.inports if b.name not in stimuli]
    if missing:
        raise SimulationError(f"no stimulus for inport(s): {missing}")

    cache = _resolve_cache(cache)

    if descriptors_for(prog, stimuli) is None:
        return _run_accmos_baked(
            prog, stimuli, options,
            workdir=workdir, keep_artifacts=keep_artifacts,
            cache=cache, timeout_seconds=timeout_seconds,
        )

    with telemetry.span(
        "accmos.run", model=prog.model.name, steps=options.steps
    ) as run_span:
        model = compile_model(
            prog, options, cache=cache if cache is not None else False,
            workdir=workdir,
        )
        result = model.run(
            stimuli, options, timeout_seconds=timeout_seconds
        )
        run_span.set(cache_hit=model.cache_hit, steps_run=result.steps_run)
    telemetry.observe(
        "accmos.execute_seconds", result.extra["execute_seconds"]
    )
    if keep_artifacts:
        result.extra["artifacts"] = AccMoSArtifacts(
            source=model.source,
            source_path=model.compiled.source if workdir else None,
            binary_path=model.compiled.binary if workdir else None,
            generate_seconds=model.generate_seconds,
            compile_seconds=model.compiled.compile_seconds,
        )
    return result


def _run_accmos_baked(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    *,
    workdir: Optional[Path],
    keep_artifacts: bool,
    cache,  # resolved handle or None
    timeout_seconds: Optional[float],
) -> SimulationResult:
    """The legacy path: stimuli and step count compiled into the source."""
    with telemetry.span(
        "accmos.run", model=prog.model.name, steps=options.steps
    ) as run_span:
        with telemetry.span("instrument"):
            plan = build_plan(
                prog,
                coverage=options.coverage,
                diagnostics=options.diagnostics,
                collect=options.collect,
                diagnose=options.diagnose,
                custom=options.custom,
            )

        t0 = time.perf_counter()
        with telemetry.span("codegen"):
            source, layout = generate_c_program(prog, plan, stimuli, options)
        generate_seconds = time.perf_counter() - t0

        compiled = compile_c_program(source, layout, workdir=workdir, cache=cache)
        t0 = time.perf_counter()
        with telemetry.span("execute"):
            stdout = compiled.execute(timeout_seconds=timeout_seconds)
        execute_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        with telemetry.span("parse"):
            result = parse_result(
                stdout, prog, plan, layout, options, engine="accmos"
            )
        run_span.set(cache_hit=compiled.cache_hit, steps_run=result.steps_run)
    telemetry.counter_inc("engine.accmos.runs")
    telemetry.counter_inc("engine.accmos.steps", result.steps_run)
    telemetry.counter_inc("diagnostics.events", len(result.diagnostics))
    telemetry.observe("accmos.generate_seconds", generate_seconds)
    telemetry.observe("accmos.compile_seconds", compiled.compile_seconds)
    telemetry.observe("accmos.execute_seconds", execute_seconds)
    if result.wall_time > 0:
        telemetry.observe(
            "engine.accmos.steps_per_sec", result.steps_run / result.wall_time
        )
    result.extra.update(
        generate_seconds=generate_seconds,
        compile_seconds=compiled.compile_seconds,
        execute_seconds=execute_seconds,
        parse_seconds=time.perf_counter() - t0,
        cache_hit=compiled.cache_hit,
        source_lines=source.count("\n") + 1,
    )
    if keep_artifacts:
        result.extra["artifacts"] = AccMoSArtifacts(
            source=source,
            source_path=compiled.source if workdir else None,
            binary_path=compiled.binary if workdir else None,
            generate_seconds=generate_seconds,
            compile_seconds=compiled.compile_seconds,
        )
    return result

"""The AccMoS engine: instrumented C code generation + gcc + execution.

This is the paper's system end to end: plan instrumentation (Algorithm 1),
synthesize the simulation code from the actor template library, import the
test cases, compile with ``-O3``, execute, and parse coverage/diagnosis/
monitor results back into the shared schema.

``wall_time`` is the binary's own measurement of its simulation loop —
the quantity the paper's Table 2 reports.  Code generation and compilation
times are in ``result.extra`` (``generate_seconds``, ``compile_seconds``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro import telemetry
from repro.codegen.compose import generate_c_program
from repro.codegen.driver import compile_c_program, parse_result
from repro.engines.base import SimulationOptions, SimulationResult
from repro.instrument import build_plan
from repro.model.errors import SimulationError
from repro.schedule.program import FlatProgram
from repro.stimuli.base import Stimulus

if TYPE_CHECKING:
    from repro.runner.cache import ArtifactCache


@dataclass
class AccMoSArtifacts:
    """Everything produced on the way to a result, for inspection."""

    source: str
    source_path: Optional[Path]
    binary_path: Optional[Path]
    generate_seconds: float
    compile_seconds: float


def run_accmos(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
    *,
    workdir: Optional[Path] = None,
    keep_artifacts: bool = False,
    cache: "Union[ArtifactCache, None, bool]" = None,
    timeout_seconds: Optional[float] = None,
) -> SimulationResult:
    """Generate, compile, and execute the instrumented simulation.

    ``cache`` selects the compiled-artifact cache: an explicit
    :class:`~repro.runner.cache.ArtifactCache`, ``None`` for the
    process-wide default (``~/.cache/accmos``; disable globally with
    ``ACCMOS_NO_CACHE=1``), or ``False`` to bypass caching for this
    call.  An explicit ``workdir`` also bypasses the cache so the
    artifacts land where the caller asked.  ``timeout_seconds`` bounds
    the binary's wall clock (raises ``SimulationTimeout``).
    """
    missing = [b.name for b in prog.inports if b.name not in stimuli]
    if missing:
        raise SimulationError(f"no stimulus for inport(s): {missing}")

    if cache is None:
        from repro.runner.cache import default_cache

        cache = default_cache()
    elif cache is False:
        cache = None

    with telemetry.span(
        "accmos.run", model=prog.model.name, steps=options.steps
    ) as run_span:
        with telemetry.span("instrument"):
            plan = build_plan(
                prog,
                coverage=options.coverage,
                diagnostics=options.diagnostics,
                collect=options.collect,
                diagnose=options.diagnose,
                custom=options.custom,
            )

        t0 = time.perf_counter()
        with telemetry.span("codegen"):
            source, layout = generate_c_program(prog, plan, stimuli, options)
        generate_seconds = time.perf_counter() - t0

        compiled = compile_c_program(source, layout, workdir=workdir, cache=cache)
        t0 = time.perf_counter()
        with telemetry.span("execute"):
            stdout = compiled.execute(timeout_seconds=timeout_seconds)
        execute_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        with telemetry.span("parse"):
            result = parse_result(
                stdout, prog, plan, layout, options, engine="accmos"
            )
        run_span.set(cache_hit=compiled.cache_hit, steps_run=result.steps_run)
    telemetry.counter_inc("engine.accmos.runs")
    telemetry.counter_inc("engine.accmos.steps", result.steps_run)
    telemetry.counter_inc("diagnostics.events", len(result.diagnostics))
    telemetry.observe("accmos.generate_seconds", generate_seconds)
    telemetry.observe("accmos.compile_seconds", compiled.compile_seconds)
    telemetry.observe("accmos.execute_seconds", execute_seconds)
    if result.wall_time > 0:
        telemetry.observe(
            "engine.accmos.steps_per_sec", result.steps_run / result.wall_time
        )
    result.extra.update(
        generate_seconds=generate_seconds,
        compile_seconds=compiled.compile_seconds,
        execute_seconds=execute_seconds,
        parse_seconds=time.perf_counter() - t0,
        cache_hit=compiled.cache_hit,
        source_lines=source.count("\n") + 1,
    )
    if keep_artifacts:
        result.extra["artifacts"] = AccMoSArtifacts(
            source=source,
            source_path=compiled.source if workdir else None,
            binary_path=compiled.binary if workdir else None,
            generate_seconds=generate_seconds,
            compile_seconds=compiled.compile_seconds,
        )
    return result

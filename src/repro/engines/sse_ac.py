"""Accelerator-mode analog (SSE_ac).

Models Simulink's Accelerator mode: the model is compiled into an
intermediate "MEX" form — stateless actors become specialized per-actor
functions (:mod:`repro.engines.mex`), stateful/boundary actors become
pre-bound closures — but execution still walks that list step by step
inside the host process, synchronizing output data with the host every
step.  Per the paper, this mode performs **no** error diagnosis and **no**
coverage collection (those option fields are ignored), which together with
the compiled dispatch is where its speed advantage over plain SSE comes
from.

Outputs and checksums still match the reference engine exactly.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from repro import telemetry
from repro.actors.registry import get_spec
from repro.dtypes import checked_cast, coerce_float
from repro.engines.base import (
    SimulationOptions,
    SimulationResult,
    checksum_step,
    signal_bits,
)
from repro.engines.sse import _bind_all, _check_stimuli
from repro.schedule.program import EvalGuard, FlatProgram
from repro.stimuli.base import Stimulus

_TIME_CHECK_INTERVAL = 512


def _compile_closures(prog: FlatProgram, semantics, states, signals, guard_active):
    """One callable per execution-order node (the 'MEX' intermediate).

    Stateless actors compile to specialized functions (see
    :mod:`repro.engines.mex`); stateful actors, Merge, and boundary actors
    keep generic semantics closures.
    """
    from repro.engines.mex import compile_mex_functions

    mex_fns = compile_mex_functions(prog)
    step_fns: list[Callable[[], None]] = []
    for node in prog.order:
        if isinstance(node, EvalGuard):
            guard = prog.guards[node.gid]
            gid, parent, sid = node.gid, guard.parent, guard.signal

            if parent is None:
                def eval_guard(gid=gid, sid=sid):
                    guard_active[gid] = signals[sid] > 0
            else:
                def eval_guard(gid=gid, sid=sid, parent=parent):
                    guard_active[gid] = guard_active[parent] and signals[sid] > 0
            step_fns.append(eval_guard)
            continue

        fa = prog.actors[node.actor_index]
        idx = fa.index
        in_sids, out_sids = fa.input_sids, fa.output_sids
        gid = fa.guard

        if fa.block_type == "Inport":
            continue  # fed directly by the engine
        if fa.block_type in ("Outport", "Terminator", "Scope", "Display"):
            continue  # nothing to compute

        if fa.block_type == "Merge":
            sem = semantics[idx]
            out_sid = out_sids[0]
            dtype = sem.ctx.out_dtypes[0]
            in_dtypes = sem.ctx.in_dtypes
            src_guards = fa.merge_src_guards

            def run_merge(
                in_sids=in_sids, out_sid=out_sid, dtype=dtype,
                in_dtypes=in_dtypes, src_guards=src_guards, gid=gid,
            ):
                if gid is not None and not guard_active[gid]:
                    return
                chosen = None
                for i, g in enumerate(src_guards):
                    if g is None or guard_active[g]:
                        chosen = i
                if chosen is None:
                    return
                value = signals[in_sids[chosen]]
                if dtype.is_float:
                    signals[out_sid] = coerce_float(float(value), dtype)
                else:
                    signals[out_sid] = checked_cast(value, in_dtypes[chosen], dtype)[0]
            step_fns.append(run_merge)
            continue

        mex_fn = mex_fns.get(idx)
        if mex_fn is not None:
            if gid is None:
                def run_actor(mex_fn=mex_fn):
                    mex_fn(signals)
            else:
                def run_actor(mex_fn=mex_fn, gid=gid):
                    if guard_active[gid]:
                        mex_fn(signals)
            step_fns.append(run_actor)
            continue

        output = semantics[idx].output
        if gid is None:
            def run_actor(output=output, idx=idx, in_sids=in_sids, out_sids=out_sids):
                result = output(states[idx], tuple(signals[s] for s in in_sids))
                for sid, value in zip(out_sids, result.outputs):
                    signals[sid] = value
        else:
            def run_actor(
                output=output, idx=idx, in_sids=in_sids, out_sids=out_sids, gid=gid
            ):
                if not guard_active[gid]:
                    return
                result = output(states[idx], tuple(signals[s] for s in in_sids))
                for sid, value in zip(out_sids, result.outputs):
                    signals[sid] = value
        step_fns.append(run_actor)

    update_fns: list[Callable[[], None]] = []
    for node in prog.order:
        if isinstance(node, EvalGuard):
            continue
        fa = prog.actors[node.actor_index]
        if not get_spec(fa.block_type).stateful:
            continue
        idx, in_sids, out_sids, gid = (
            fa.index, fa.input_sids, fa.output_sids, fa.guard
        )
        update = semantics[idx].update

        def run_update(update=update, idx=idx, in_sids=in_sids, out_sids=out_sids, gid=gid):
            if gid is not None and not guard_active[gid]:
                return
            states[idx] = update(
                states[idx],
                tuple(signals[s] for s in in_sids),
                tuple(signals[s] for s in out_sids),
            )
        update_fns.append(run_update)

    return step_fns, update_fns


def run_sse_ac(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> SimulationResult:
    """Run the Accelerator-mode analog; see module docstring."""
    with telemetry.span(
        "sse_ac.run", model=prog.model.name, steps=options.steps
    ) as run_span:
        result = _run_sse_ac(prog, stimuli, options)
        run_span.set(steps_run=result.steps_run)
    telemetry.counter_inc("engine.sse_ac.runs")
    telemetry.counter_inc("engine.sse_ac.steps", result.steps_run)
    if result.wall_time > 0:
        telemetry.observe(
            "engine.sse_ac.steps_per_sec", result.steps_run / result.wall_time
        )
    return result


def _run_sse_ac(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> SimulationResult:
    _check_stimuli(prog, stimuli)
    _, semantics, states = _bind_all(prog)
    signals = [0.0 if (s.dtype and s.dtype.is_float) else 0 for s in prog.signals]
    guard_active = [False] * len(prog.guards)

    inport_feeds = [(stimuli[b.name], b.sid, b.dtype) for b in prog.inports]
    for stim, _, _ in inport_feeds:
        stim.reset()
    outport_bindings = [(b.name, b.sid, b.dtype) for b in prog.outports]
    checksums = {name: 0 for name, _, _ in outport_bindings}
    host_view: dict[str, object] = {}

    step_fns, update_fns = _compile_closures(
        prog, semantics, states, signals, guard_active
    )

    steps_run = 0
    start = time.perf_counter()
    deadline = start + options.time_budget if options.time_budget is not None else None

    for step in range(options.steps):
        if deadline is not None and step % _TIME_CHECK_INTERVAL == 0:
            if time.perf_counter() >= deadline:
                break
        for stim, sid, dtype in inport_feeds:
            signals[sid] = stim.conform(stim.next(), dtype)
        for fn in step_fns:
            fn()
        for fn in update_fns:
            fn()
        # Per-step host synchronization: the Accelerator still transfers
        # output data back to the host every step.
        for name, sid, dtype in outport_bindings:
            value = signals[sid]
            host_view[name] = value
            if options.checksum:
                checksums[name] = checksum_step(
                    checksums[name], signal_bits(value, dtype)
                )
        steps_run = step + 1

    wall_time = time.perf_counter() - start
    return SimulationResult(
        engine="sse_ac",
        model_name=prog.model.name,
        steps_requested=options.steps,
        steps_run=steps_run,
        wall_time=wall_time,
        outputs={name: signals[sid] for name, sid, _ in outport_bindings},
        checksums=checksums if options.checksum else {},
        coverage=None,  # Accelerator mode cannot collect coverage
        diagnostics=[],  # ... nor run error diagnosis
        halted_at=None,
    )

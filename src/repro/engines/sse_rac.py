"""Rapid-Accelerator-mode analog (SSE_rac).

Models Simulink's Rapid Accelerator: the model is *entirely precompiled*
into standalone code before simulation — here, a generated Python module
(:mod:`repro.codegen.pybackend`) compiled once and executed as a single
tight function — but the run still pays periodic host data transfer: every
``SYNC_BATCH`` steps the buffered output frames are serialized back to the
host process (that serialization is where the checksum/host view comes
from).  Like the Accelerator analog, it performs no diagnosis and no
coverage collection.
"""

from __future__ import annotations

import struct
import time
from typing import Mapping

from repro import telemetry
from repro.codegen.pybackend import generate_py_step
from repro.engines.base import (
    SimulationOptions,
    SimulationResult,
    checksum_step,
    signal_bits,
)
from repro.engines.sse import _check_stimuli
from repro.schedule.program import FlatProgram
from repro.stimuli.base import Stimulus

SYNC_BATCH = 64


def run_sse_rac(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> SimulationResult:
    """Run the Rapid-Accelerator analog; see module docstring."""
    with telemetry.span(
        "sse_rac.run", model=prog.model.name, steps=options.steps
    ) as run_span:
        result = _run_sse_rac(prog, stimuli, options)
        run_span.set(steps_run=result.steps_run)
    telemetry.counter_inc("engine.sse_rac.runs")
    telemetry.counter_inc("engine.sse_rac.steps", result.steps_run)
    if result.wall_time > 0:
        telemetry.observe(
            "engine.sse_rac.steps_per_sec", result.steps_run / result.wall_time
        )
    return result


def _run_sse_rac(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> SimulationResult:
    _check_stimuli(prog, stimuli)

    t0 = time.perf_counter()
    with telemetry.span("precompile"):
        source = generate_py_step(prog, sync_batch=SYNC_BATCH)
        namespace: dict = {}
        exec(compile(source, f"<rac:{prog.model.name}>", "exec"), namespace)
        run = namespace["run"]
    precompile_seconds = time.perf_counter() - t0

    feeds = []
    for binding in prog.inports:
        stim = stimuli[binding.name]
        stim.reset()
        dtype = binding.dtype

        def feed(stim=stim, dtype=dtype):
            return stim.conform(stim.next(), dtype)

        feeds.append(feed)

    out_bindings = [(b.name, b.dtype) for b in prog.outports]
    checksums = {name: 0 for name, _ in out_bindings}
    def sync(frames: list[tuple]) -> None:
        """Host data transfer: serialize the batch, fold into checksums."""
        for frame in frames:
            for (name, dtype), value in zip(out_bindings, frame):
                # Serialization is the transfer cost Rapid Accelerator pays.
                bits = signal_bits(value, dtype)
                struct.pack("<Q", bits)
                if options.checksum:
                    checksums[name] = checksum_step(checksums[name], bits)

    start = time.perf_counter()
    deadline = start + options.time_budget if options.time_budget is not None else None
    with telemetry.span("execute"):
        steps_run, outputs = run(options.steps, feeds, sync, deadline)
    wall_time = time.perf_counter() - start

    return SimulationResult(
        engine="sse_rac",
        model_name=prog.model.name,
        steps_requested=options.steps,
        steps_run=steps_run,
        wall_time=wall_time,
        outputs=outputs,
        checksums=checksums if options.checksum else {},
        coverage=None,  # Rapid Accelerator cannot collect coverage
        diagnostics=[],  # ... nor detect wrap/downcast errors
        halted_at=None,
        extra={"precompile_seconds": precompile_seconds},
    )
